//! SHA-256 (FIPS 180-4).
//!
//! The default instantiation of the paper's `crypto_hash()` primitive
//! in this library: collision-resistant by current knowledge, which is
//! what the court-time "exhaustive key search" argument of Section 2.2
//! leans on.

use crate::backend::Sha256Backend;
use crate::digest::{BlockBuffer, Digest};

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 section 4.2.2). Shared
/// with the SHA-NI backend, which loads them four at a time.
pub(crate) const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Initial hash value: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const INIT: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Streaming SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: BlockBuffer,
}

impl Sha256 {
    /// Fresh hasher with the FIPS 180-4 initial state.
    #[must_use]
    pub fn new() -> Self {
        Sha256 { state: INIT, buffer: BlockBuffer::new() }
    }

    fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        compress_with(Sha256Backend::active(), state, block);
    }
}

/// Fold one message block into `state` on an explicit backend.
///
/// The `ShaNi` arm is gated on a fresh availability check (a cached
/// boolean), so requesting an unavailable backend degrades to the
/// software rounds rather than executing unsupported instructions —
/// the digests are bit-identical either way.
pub(crate) fn compress_with(backend: Sha256Backend, state: &mut [u32; 8], block: &[u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    if backend == Sha256Backend::ShaNi && Sha256Backend::ShaNi.is_available() {
        // SAFETY: `is_available` verified the `sha`/`ssse3`/`sse4.1`
        // CPU features at runtime.
        #[allow(unsafe_code)]
        unsafe {
            crate::sha256_shani::compress_block(state, block);
        }
        return;
    }
    let _ = backend;
    let w = expand_schedule(block);
    compress_schedule(state, &w);
}

/// One-shot SHA-256 on an explicit backend — the software path is the
/// golden reference, the SHA-NI path must match it bit for bit
/// (enforced by proptest). Falls back to software when `backend` is
/// unavailable on this CPU.
#[must_use]
pub fn sha256_with_backend(backend: Sha256Backend, data: &[u8]) -> [u8; 32] {
    let mut state = INIT;
    let mut buffer = BlockBuffer::new();
    buffer.update(data, |block| compress_with(backend, &mut state, block));
    buffer.finalize(false, |block| compress_with(backend, &mut state, block));
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// FIPS 180-4 initial hash value, exposed for the fixed-length keyed
/// fast path in [`crate::keyed`].
pub(crate) const INITIAL_STATE: [u32; 8] = INIT;

/// Four-lane SHA-256 (multibuffer): hash four independent 2-block
/// messages in one interleaved pass.
///
/// A single SHA-256 stream is *latency*-bound — every round depends on
/// the previous one, leaving most ALU throughput idle. Interleaving
/// four independent states breaks the dependency chain four ways (and
/// the `[u32; 4]` lane ops below auto-vectorize to 128-bit SIMD where
/// available). This is what makes the columnar key-column scan fast:
/// a flat slice of keys supplies four messages at a time.
///
/// `block1s` are the four (already padded-into-place) first blocks;
/// `w2` is the shared, pre-expanded schedule of the constant second
/// block. Returns each lane's leading 8 digest bytes, big-endian.
///
/// This is the software multibuffer — the golden reference the SHA-NI
/// variant is checked against. Dispatch happens in
/// [`digest4_two_blocks_u64_with`].
fn digest4_two_blocks_u64_soft(block1s: &[[u8; 64]; 4], w2: &[u32; 64]) -> [u64; 4] {
    multibuffer_two_blocks_u64(block1s, |i| [w2[i]; 4])
}

/// Multi-key variant of the software multibuffer: each lane carries its
/// own constant second block (four *different* keys hashing one value),
/// supplied pre-transposed as `w2_lanes[i][lane]`. This is what lets a
/// single pass over a key column serve four recipients at once.
fn digest4_two_blocks_u64_multikey_soft(
    block1s: &[[u8; 64]; 4],
    w2_lanes: &[[u32; 4]; 64],
) -> [u64; 4] {
    multibuffer_two_blocks_u64(block1s, |i| w2_lanes[i])
}

/// Shared core of the two soft multibuffer entry points above: block 1
/// is transposed and expanded per lane; block 2's schedule words are
/// produced by `w2_lane(i)` — a broadcast of one shared schedule for
/// the single-key case, a transposed per-lane read for the multi-key
/// case. `#[inline(always)]` so each wrapper monomorphizes to straight
/// vectorizable code with no closure call.
#[inline(always)]
fn multibuffer_two_blocks_u64(
    block1s: &[[u8; 64]; 4],
    w2_lane: impl Fn(usize) -> [u32; 4],
) -> [u64; 4] {
    type Lane = [u32; 4];

    #[inline(always)]
    fn splat(x: u32) -> Lane {
        [x; 4]
    }
    #[inline(always)]
    fn add(a: Lane, b: Lane) -> Lane {
        [
            a[0].wrapping_add(b[0]),
            a[1].wrapping_add(b[1]),
            a[2].wrapping_add(b[2]),
            a[3].wrapping_add(b[3]),
        ]
    }
    #[inline(always)]
    fn xor(a: Lane, b: Lane) -> Lane {
        [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
    }
    #[inline(always)]
    fn and(a: Lane, b: Lane) -> Lane {
        [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]]
    }
    #[inline(always)]
    fn andnot(a: Lane, b: Lane) -> Lane {
        [!a[0] & b[0], !a[1] & b[1], !a[2] & b[2], !a[3] & b[3]]
    }
    #[inline(always)]
    fn rotr(a: Lane, n: u32) -> Lane {
        [a[0].rotate_right(n), a[1].rotate_right(n), a[2].rotate_right(n), a[3].rotate_right(n)]
    }
    #[inline(always)]
    fn shr(a: Lane, n: u32) -> Lane {
        [a[0] >> n, a[1] >> n, a[2] >> n, a[3] >> n]
    }

    // Transposed schedule of the four first blocks.
    let mut w = [[0u32; 4]; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        for lane in 0..4 {
            let b = &block1s[lane];
            word[lane] = u32::from_be_bytes([b[4 * i], b[4 * i + 1], b[4 * i + 2], b[4 * i + 3]]);
        }
    }
    for i in 16..64 {
        let s0 = xor(xor(rotr(w[i - 15], 7), rotr(w[i - 15], 18)), shr(w[i - 15], 3));
        let s1 = xor(xor(rotr(w[i - 2], 17), rotr(w[i - 2], 19)), shr(w[i - 2], 10));
        w[i] = add(add(w[i - 16], s0), add(w[i - 7], s1));
    }

    let mut state: [Lane; 8] = [
        splat(INIT[0]),
        splat(INIT[1]),
        splat(INIT[2]),
        splat(INIT[3]),
        splat(INIT[4]),
        splat(INIT[5]),
        splat(INIT[6]),
        splat(INIT[7]),
    ];

    macro_rules! rounds_over {
        ($get:expr, $state:ident) => {{
            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = $state;
            macro_rules! r4 {
                ($aa:ident,$bb:ident,$cc:ident,$dd:ident,$ee:ident,$ff:ident,$gg:ident,$hh:ident,$i:expr) => {
                    let s1 = xor(xor(rotr($ee, 6), rotr($ee, 11)), rotr($ee, 25));
                    let ch = xor(and($ee, $ff), andnot($ee, $gg));
                    let wk = add($get($i), splat(K[$i]));
                    let t1 = add(add($hh, s1), add(ch, wk));
                    let s0 = xor(xor(rotr($aa, 2), rotr($aa, 13)), rotr($aa, 22));
                    let maj = xor(xor(and($aa, $bb), and($aa, $cc)), and($bb, $cc));
                    $dd = add($dd, t1);
                    $hh = add(t1, add(s0, maj));
                };
            }
            let mut i = 0;
            while i < 64 {
                r4!(a, b, c, d, e, f, g, h, i);
                r4!(h, a, b, c, d, e, f, g, i + 1);
                r4!(g, h, a, b, c, d, e, f, i + 2);
                r4!(f, g, h, a, b, c, d, e, i + 3);
                r4!(e, f, g, h, a, b, c, d, i + 4);
                r4!(d, e, f, g, h, a, b, c, i + 5);
                r4!(c, d, e, f, g, h, a, b, i + 6);
                r4!(b, c, d, e, f, g, h, a, i + 7);
                i += 8;
            }
            $state = [
                add($state[0], a),
                add($state[1], b),
                add($state[2], c),
                add($state[3], d),
                add($state[4], e),
                add($state[5], f),
                add($state[6], g),
                add($state[7], h),
            ];
        }};
    }

    rounds_over!(|i: usize| w[i], state);
    rounds_over!(|i: usize| w2_lane(i), state);

    let mut out = [0u64; 4];
    for (lane, o) in out.iter_mut().enumerate() {
        *o = (u64::from(state[0][lane]) << 32) | u64::from(state[1][lane]);
    }
    out
}

/// Four-lane two-block keyed digest on an explicit backend: the
/// software multibuffer or two interleaved SHA-NI stream pairs. Falls
/// back to software when `backend` is unavailable on this CPU; both
/// paths are bit-identical lane for lane (enforced by proptest).
pub(crate) fn digest4_two_blocks_u64_with(
    backend: Sha256Backend,
    block1s: &[[u8; 64]; 4],
    w2: &[u32; 64],
) -> [u64; 4] {
    #[cfg(target_arch = "x86_64")]
    if backend == Sha256Backend::ShaNi && Sha256Backend::ShaNi.is_available() {
        // SAFETY: `is_available` verified the `sha`/`ssse3`/`sse4.1`
        // CPU features at runtime.
        #[allow(unsafe_code)]
        unsafe {
            return crate::sha256_shani::digest4_two_blocks_u64(block1s, w2);
        }
    }
    let _ = backend;
    digest4_two_blocks_u64_soft(block1s, w2)
}

/// Multi-key four-lane two-block keyed digest on an explicit backend:
/// lane `i` compresses `block1s[i]` then lane `i`'s *own* constant
/// second block. The schedules arrive in both layouts so neither
/// backend transposes per call: `w2s[lane]` feeds the SHA-NI stream
/// pairs, `w2_lanes[i][lane]` feeds the soft multibuffer. Callers
/// ([`crate::keyed::FixedLenKeyedHasher4`]) precompute both once per
/// key quad. Falls back to software when `backend` is unavailable on
/// this CPU; both paths are bit-identical lane for lane (enforced by
/// proptest).
pub(crate) fn digest4_two_blocks_u64_multikey_with(
    backend: Sha256Backend,
    block1s: &[[u8; 64]; 4],
    w2s: &[[u32; 64]; 4],
    w2_lanes: &[[u32; 4]; 64],
) -> [u64; 4] {
    #[cfg(target_arch = "x86_64")]
    if backend == Sha256Backend::ShaNi && Sha256Backend::ShaNi.is_available() {
        // SAFETY: `is_available` verified the `sha`/`ssse3`/`sse4.1`
        // CPU features at runtime.
        #[allow(unsafe_code)]
        unsafe {
            return crate::sha256_shani::digest4_two_blocks_u64_multikey(block1s, w2s);
        }
    }
    let _ = (backend, w2s);
    digest4_two_blocks_u64_multikey_soft(block1s, w2_lanes)
}

/// Expand one message block into the 64-word schedule `W`.
///
/// Split out of the compression function so callers hashing many
/// messages that share a *constant* trailing block (the fixed-length
/// keyed construct: the second block is pure key tail + padding) can
/// expand that block's schedule once and replay only the rounds.
pub(crate) fn expand_schedule(block: &[u8; 64]) -> [u32; 64] {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
    }
    w
}

/// One SHA-256 round in the rotationless formulation: instead of
/// shifting all eight working variables each round, the variables'
/// *roles* rotate through the macro's argument order, eliminating
/// seven register moves per round. Identical arithmetic to FIPS
/// 180-4 (pinned by the test vectors below).
macro_rules! sha256_round {
    ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident,$k:expr,$w:expr) => {
        let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
        let ch = ($e & $f) ^ (!$e & $g);
        let t1 = $h.wrapping_add(s1).wrapping_add(ch).wrapping_add($k).wrapping_add($w);
        let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
        let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
        $d = $d.wrapping_add(t1);
        $h = t1.wrapping_add(s0.wrapping_add(maj));
    };
}

/// The 64 SHA-256 rounds over a pre-expanded schedule.
pub(crate) fn compress_schedule(state: &mut [u32; 8], w: &[u32; 64]) {
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    let mut i = 0;
    while i < 64 {
        sha256_round!(a, b, c, d, e, f, g, h, K[i], w[i]);
        sha256_round!(h, a, b, c, d, e, f, g, K[i + 1], w[i + 1]);
        sha256_round!(g, h, a, b, c, d, e, f, K[i + 2], w[i + 2]);
        sha256_round!(f, g, h, a, b, c, d, e, K[i + 3], w[i + 3]);
        sha256_round!(e, f, g, h, a, b, c, d, K[i + 4], w[i + 4]);
        sha256_round!(d, e, f, g, h, a, b, c, K[i + 5], w[i + 5]);
        sha256_round!(c, d, e, f, g, h, a, b, K[i + 6], w[i + 6]);
        sha256_round!(b, c, d, e, f, g, h, a, K[i + 7], w[i + 7]);
        i += 8;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha256 {
    type Output = [u8; 32];

    fn update(&mut self, data: &[u8]) {
        let state = &mut self.state;
        self.buffer.update(data, |block| Self::compress(state, block));
    }

    fn finalize(mut self) -> [u8; 32] {
        let state = &mut self.state;
        self.buffer.finalize(false, |block| Self::compress(state, block));
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn reset(&mut self) {
        self.state = INIT;
        self.buffer.reset();
    }
}

/// One-shot SHA-256 digest.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    Sha256::digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn fips_test_vectors() {
        let cases: [(&[u8], &str); 3] = [
            (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(to_hex(&sha256(input)), expected);
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 10_000];
        for _ in 0..100 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 31 % 256) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = Sha256::new();
        h.update(b"noise");
        h.reset();
        h.update(b"abc");
        assert_eq!(
            to_hex(&h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn single_bit_changes_avalanche() {
        let a = sha256(b"categorical data 0");
        let b = sha256(b"categorical data 1");
        let differing: u32 = a.iter().zip(b.iter()).map(|(x, y)| (x ^ y).count_ones()).sum();
        // Expect roughly half of the 256 bits to differ; anything above
        // 80 is a comfortable avalanche check.
        assert!(differing > 80, "only {differing} bits differ");
    }
}
