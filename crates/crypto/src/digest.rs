//! Streaming digest abstraction shared by all hash implementations.
//!
//! Every hash in this crate is a Merkle–Damgård construction over a
//! 64-byte block; [`Digest`] captures the streaming interface and
//! [`DynDigest`] provides runtime algorithm selection without trait
//! objects (a simple enum keeps the hot path monomorphic and
//! allocation-free).

/// Streaming one-way hash.
///
/// Implementations accumulate input via [`Digest::update`] and produce
/// the final digest with [`Digest::finalize`]. A hasher may be reused
/// after [`Digest::reset`].
pub trait Digest {
    /// Digest output, a fixed-size byte array.
    type Output: AsRef<[u8]>;

    /// Absorb `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consume the hasher and produce the digest.
    fn finalize(self) -> Self::Output;

    /// Restore the initial state, discarding any absorbed input.
    fn reset(&mut self);

    /// Convenience: one-shot digest of `data`.
    fn digest(data: &[u8]) -> Self::Output
    where
        Self: Default + Sized,
    {
        let mut h = Self::default();
        h.update(data);
        h.finalize()
    }
}

/// Runtime-selected digest (enum dispatch over the supported hashes).
#[derive(Debug, Clone)]
pub enum DynDigest {
    /// MD5 state.
    Md5(crate::md5::Md5),
    /// SHA-1 state.
    Sha1(crate::sha1::Sha1),
    /// SHA-256 state.
    Sha256(crate::sha256::Sha256),
}

impl DynDigest {
    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        match self {
            DynDigest::Md5(h) => h.update(data),
            DynDigest::Sha1(h) => h.update(data),
            DynDigest::Sha256(h) => h.update(data),
        }
    }

    /// Consume the hasher, returning the digest as a `Vec`.
    #[must_use]
    pub fn finalize_vec(self) -> Vec<u8> {
        match self {
            DynDigest::Md5(h) => h.finalize().to_vec(),
            DynDigest::Sha1(h) => h.finalize().to_vec(),
            DynDigest::Sha256(h) => h.finalize().to_vec(),
        }
    }

    /// Consume the hasher and return the first 8 digest bytes as a
    /// big-endian `u64`.
    ///
    /// This is the integer view of `H(...)` used throughout the
    /// watermarking algorithms (`mod e` fitness tests, pseudorandom
    /// value/position selection). Truncating a cryptographic hash
    /// preserves its pseudorandomness. Allocation-free: the digest
    /// stays in its fixed output array.
    #[must_use]
    pub fn finalize_u64(self) -> u64 {
        fn prefix(bytes: &[u8]) -> u64 {
            let mut first = [0u8; 8];
            first.copy_from_slice(&bytes[..8]);
            u64::from_be_bytes(first)
        }
        match self {
            DynDigest::Md5(h) => prefix(&h.finalize()),
            DynDigest::Sha1(h) => prefix(&h.finalize()),
            DynDigest::Sha256(h) => prefix(&h.finalize()),
        }
    }

    /// Digest length in bytes for this state's algorithm.
    #[must_use]
    pub fn output_len(&self) -> usize {
        match self {
            DynDigest::Md5(_) => 16,
            DynDigest::Sha1(_) => 20,
            DynDigest::Sha256(_) => 32,
        }
    }
}

/// Digests absorb byte streams, so they are infallible writers. This
/// lets hash inputs stream their canonical encodings straight into the
/// hash state (`write_canonical(&mut digest)`) with no intermediate
/// buffer.
impl std::io::Write for DynDigest {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Shared Merkle–Damgård buffering over 64-byte blocks.
///
/// All three hashes differ only in their compression function and the
/// endianness of the length encoding; this helper centralizes the
/// bookkeeping (partial-block buffering, bit counting, padding).
#[derive(Debug, Clone)]
pub(crate) struct BlockBuffer {
    block: [u8; 64],
    /// Bytes currently buffered in `block` (0..64).
    filled: usize,
    /// Total message length in bytes (mod 2^64).
    total_len: u64,
}

impl BlockBuffer {
    pub(crate) fn new() -> Self {
        BlockBuffer { block: [0u8; 64], filled: 0, total_len: 0 }
    }

    pub(crate) fn reset(&mut self) {
        self.filled = 0;
        self.total_len = 0;
    }

    /// Feed `data`, invoking `compress` on each complete 64-byte block.
    pub(crate) fn update(&mut self, mut data: &[u8], mut compress: impl FnMut(&[u8; 64])) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.filled > 0 {
            let take = (64 - self.filled).min(data.len());
            self.block[self.filled..self.filled + take].copy_from_slice(&data[..take]);
            self.filled += take;
            data = &data[take..];
            if self.filled == 64 {
                let block = self.block;
                compress(&block);
                self.filled = 0;
            } else {
                // Input exhausted while a partial block remains buffered.
                debug_assert!(data.is_empty());
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            compress(&block);
        }
        let rest = chunks.remainder();
        self.block[..rest.len()].copy_from_slice(rest);
        self.filled = rest.len();
    }

    /// Apply MD-strengthening padding (0x80, zeros, 8-byte bit length)
    /// and compress the final block(s). `little_endian_len` selects the
    /// MD5 length convention; SHA uses big-endian.
    pub(crate) fn finalize(
        &mut self,
        little_endian_len: bool,
        mut compress: impl FnMut(&[u8; 64]),
    ) {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut block = self.block;
        block[self.filled] = 0x80;
        for byte in &mut block[self.filled + 1..] {
            *byte = 0;
        }
        if self.filled + 1 > 56 {
            compress(&block);
            block = [0u8; 64];
        }
        let len_bytes =
            if little_endian_len { bit_len.to_le_bytes() } else { bit_len.to_be_bytes() };
        block[56..64].copy_from_slice(&len_bytes);
        compress(&block);
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A compression function that just records how many blocks it saw
    /// and the final byte of each block, enough to verify buffering.
    fn counting<'a>(count: &'a mut usize) -> impl FnMut(&[u8; 64]) + 'a {
        move |_| *count += 1
    }

    #[test]
    fn buffers_partial_blocks() {
        let mut buf = BlockBuffer::new();
        let mut blocks = 0;
        buf.update(&[0u8; 63], counting(&mut blocks));
        assert_eq!(blocks, 0);
        buf.update(&[0u8; 1], counting(&mut blocks));
        assert_eq!(blocks, 1);
        assert_eq!(buf.filled, 0);
    }

    #[test]
    fn handles_multi_block_input() {
        let mut buf = BlockBuffer::new();
        let mut blocks = 0;
        buf.update(&[7u8; 200], counting(&mut blocks));
        assert_eq!(blocks, 3);
        assert_eq!(buf.filled, 200 - 192);
    }

    #[test]
    fn finalize_spills_when_no_room_for_length() {
        // 57 buffered bytes leaves no room for the 8-byte length after
        // the 0x80 marker, so padding takes two blocks.
        let mut buf = BlockBuffer::new();
        let mut blocks = 0;
        buf.update(&[1u8; 57], counting(&mut blocks));
        assert_eq!(blocks, 0);
        buf.finalize(false, counting(&mut blocks));
        assert_eq!(blocks, 2);
    }

    #[test]
    fn finalize_single_block_when_room() {
        let mut buf = BlockBuffer::new();
        let mut blocks = 0;
        buf.update(&[1u8; 10], counting(&mut blocks));
        buf.finalize(false, counting(&mut blocks));
        assert_eq!(blocks, 1);
    }

    #[test]
    fn length_encoding_is_in_bits() {
        let mut buf = BlockBuffer::new();
        buf.update(&[0u8; 3], |_| {});
        let mut seen = Vec::new();
        buf.finalize(false, |b| seen.push(*b));
        assert_eq!(seen.len(), 1);
        // 3 bytes = 24 bits, big-endian in the trailing 8 bytes.
        assert_eq!(&seen[0][56..], &24u64.to_be_bytes());
        // 0x80 marker directly after the message.
        assert_eq!(seen[0][3], 0x80);
    }

    #[test]
    fn little_endian_length_for_md5() {
        let mut buf = BlockBuffer::new();
        buf.update(&[0u8; 5], |_| {});
        let mut seen = Vec::new();
        buf.finalize(true, |b| seen.push(*b));
        assert_eq!(&seen[0][56..], &40u64.to_le_bytes());
    }

    #[test]
    fn reset_clears_counters() {
        let mut buf = BlockBuffer::new();
        buf.update(&[0u8; 70], |_| {});
        buf.reset();
        assert_eq!(buf.filled, 0);
        assert_eq!(buf.total_len, 0);
    }

    #[test]
    fn dyn_digest_finalize_u64_is_the_big_endian_prefix() {
        for algo in crate::HashAlgorithm::ALL {
            let mut a = algo.hasher();
            a.update(b"prefix-check");
            let full = {
                let mut b = algo.hasher();
                b.update(b"prefix-check");
                b.finalize_vec()
            };
            let mut first = [0u8; 8];
            first.copy_from_slice(&full[..8]);
            assert_eq!(a.finalize_u64(), u64::from_be_bytes(first), "{algo}");
        }
    }

    #[test]
    fn dyn_digest_reports_output_len() {
        for algo in crate::HashAlgorithm::ALL {
            assert_eq!(algo.hasher().output_len(), algo.output_len());
        }
    }

    #[test]
    fn dyn_digest_multi_chunk_matches_one_shot() {
        for algo in crate::HashAlgorithm::ALL {
            let data: Vec<u8> = (0u16..500).map(|i| (i % 256) as u8).collect();
            let mut h = algo.hasher();
            for chunk in data.chunks(9) {
                h.update(chunk);
            }
            assert_eq!(h.finalize_vec(), algo.digest(&data), "{algo}");
        }
    }
}
