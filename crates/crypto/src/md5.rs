//! MD5 message digest (RFC 1321).
//!
//! MD5 is one of the two hash candidates the paper names for its keyed
//! construct. It is cryptographically broken for collision resistance
//! today; `catmark` defaults to SHA-256 but keeps MD5 for fidelity with
//! the paper's 2004 setting and for cheap non-adversarial hashing in
//! tests.
//!
//! The sine-derived constant table `T[i] = floor(2^32 * |sin(i+1)|)` is
//! computed once at first use straight from the RFC's definition, which
//! eliminates any risk of transcription errors in the 64 constants.

use std::sync::OnceLock;

use crate::digest::{BlockBuffer, Digest};

/// Per-round left-rotate amounts (RFC 1321 section 3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

const INIT: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

fn sine_table() -> &'static [u32; 64] {
    static TABLE: OnceLock<[u32; 64]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 64];
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = (((i as f64 + 1.0).sin().abs()) * 4_294_967_296.0) as u32;
        }
        t
    })
}

/// Streaming MD5 hasher.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: BlockBuffer,
}

impl Md5 {
    /// Fresh hasher with the RFC 1321 initial state.
    #[must_use]
    pub fn new() -> Self {
        Md5 { state: INIT, buffer: BlockBuffer::new() }
    }

    fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
        let t = sine_table();
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = *state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f).wrapping_add(t[i]).wrapping_add(m[g]).rotate_left(S[i]),
            );
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Md5 {
    type Output = [u8; 16];

    fn update(&mut self, data: &[u8]) {
        let state = &mut self.state;
        self.buffer.update(data, |block| Self::compress(state, block));
    }

    fn finalize(mut self) -> [u8; 16] {
        let state = &mut self.state;
        self.buffer.finalize(true, |block| Self::compress(state, block));
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn reset(&mut self) {
        self.state = INIT;
        self.buffer.reset();
    }
}

/// One-shot MD5 digest.
#[must_use]
pub fn md5(data: &[u8]) -> [u8; 16] {
    Md5::digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    /// The complete RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_test_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(to_hex(&md5(input)), expected);
        }
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Md5::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), md5(data));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = Md5::new();
        h.update(b"garbage");
        h.reset();
        h.update(b"abc");
        assert_eq!(to_hex(&h.finalize()), "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn boundary_lengths_are_consistent() {
        // Exercise padding around the 55/56/63/64/65-byte boundaries by
        // comparing streaming against one-shot hashing.
        for len in [55usize, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut h = Md5::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), md5(&data), "len={len}");
        }
    }

    #[test]
    fn sine_table_spot_checks() {
        // RFC 1321 lists T[1] = 0xd76aa478 and T[64] = 0xeb86d391.
        let t = sine_table();
        assert_eq!(t[0], 0xd76a_a478);
        assert_eq!(t[63], 0xeb86_d391);
        assert_eq!(t[31], 0x8d2a_4c8a);
    }
}
