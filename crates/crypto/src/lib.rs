//! Cryptographic substrate for `catmark`.
//!
//! The watermarking scheme of *Proving Ownership over Categorical Data*
//! (Sion, ICDE 2004) leans on a single cryptographic primitive: a secure
//! one-way hash. The paper names MD5 and SHA as candidate instantiations
//! and builds its keyed construct as
//!
//! ```text
//! H(V, k) = crypto_hash(k ; V ; k)        (";" is concatenation)
//! ```
//!
//! This crate provides from-scratch, test-vector-validated
//! implementations of [`md5`], [`sha1`] and [`sha256`] (RFC 1321 and
//! FIPS 180-4), a streaming [`digest::Digest`] abstraction, the keyed
//! construct [`keyed::KeyedHash`], and small utilities ([`hex`]).
//!
//! None of the algorithms here are novel; they are fixed public
//! standards re-implemented because the build environment provides no
//! hash crates. Correctness is pinned by the official test vectors in
//! each module plus cross-property tests.
//!
//! # Example
//!
//! ```
//! use catmark_crypto::{keyed::KeyedHash, HashAlgorithm};
//!
//! let h = KeyedHash::new(HashAlgorithm::Sha256, b"secret-key-1");
//! let fit = h.hash_u64(&[b"tuple-primary-key"]) % 60 == 0;
//! let _ = fit;
//! ```

// `unsafe` is denied crate-wide; the single exception is the SHA-NI
// intrinsics module below, which opts back in explicitly and carries a
// safety comment on every unsafe block. (`deny` rather than `forbid`
// because `forbid` cannot be overridden at module scope.)
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod digest;
pub mod hex;
pub mod hmac;
pub mod keyed;
pub mod md5;
pub mod sha1;
pub mod sha256;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[deny(unsafe_op_in_unsafe_fn)] // every unsafe op gets an explicit, commented block
pub(crate) mod sha256_shani;

pub use backend::Sha256Backend;
pub use digest::{Digest, DynDigest};
pub use keyed::{
    CanonicalInput, FixedLenKeyedHasher, FixedLenKeyedHasher4, KeyedHash, KeyedPrf, SecretKey,
};

/// Selects one of the supported one-way hash functions.
///
/// The paper treats the hash as a pluggable primitive ("Examples of
/// potential candidates for `crypto_hash()` are the MD5 or SHA hash");
/// all of `catmark` is generic over this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashAlgorithm {
    /// MD5 (RFC 1321), 128-bit output. Broken for collision resistance,
    /// kept for fidelity with the paper's 2004 setting.
    Md5,
    /// SHA-1 (FIPS 180-4), 160-bit output.
    Sha1,
    /// SHA-256 (FIPS 180-4), 256-bit output. The modern default.
    #[default]
    Sha256,
}

impl HashAlgorithm {
    /// Digest length in bytes.
    #[must_use]
    pub const fn output_len(self) -> usize {
        match self {
            HashAlgorithm::Md5 => 16,
            HashAlgorithm::Sha1 => 20,
            HashAlgorithm::Sha256 => 32,
        }
    }

    /// Instantiate a streaming hasher for this algorithm.
    #[must_use]
    pub fn hasher(self) -> DynDigest {
        match self {
            HashAlgorithm::Md5 => DynDigest::Md5(md5::Md5::new()),
            HashAlgorithm::Sha1 => DynDigest::Sha1(sha1::Sha1::new()),
            HashAlgorithm::Sha256 => DynDigest::Sha256(sha256::Sha256::new()),
        }
    }

    /// One-shot hash of `data`.
    #[must_use]
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        let mut h = self.hasher();
        h.update(data);
        h.finalize_vec()
    }

    /// All supported algorithms, for exhaustive tests and benches.
    pub const ALL: [HashAlgorithm; 3] =
        [HashAlgorithm::Md5, HashAlgorithm::Sha1, HashAlgorithm::Sha256];
}

impl std::fmt::Display for HashAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            HashAlgorithm::Md5 => "md5",
            HashAlgorithm::Sha1 => "sha1",
            HashAlgorithm::Sha256 => "sha256",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for HashAlgorithm {
    type Err = UnknownAlgorithm;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "md5" => Ok(HashAlgorithm::Md5),
            "sha1" | "sha-1" => Ok(HashAlgorithm::Sha1),
            "sha256" | "sha-256" => Ok(HashAlgorithm::Sha256),
            _ => Err(UnknownAlgorithm(s.to_owned())),
        }
    }
}

/// Error returned when parsing an unrecognized algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm(pub String);

impl std::fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown hash algorithm: {:?}", self.0)
    }
}

impl std::error::Error for UnknownAlgorithm {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn output_lengths_match_hashers() {
        for algo in HashAlgorithm::ALL {
            assert_eq!(algo.digest(b"x").len(), algo.output_len(), "{algo}");
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for algo in HashAlgorithm::ALL {
            let name = algo.to_string();
            assert_eq!(HashAlgorithm::from_str(&name).unwrap(), algo);
        }
    }

    #[test]
    fn from_str_accepts_dashed_variants() {
        assert_eq!(HashAlgorithm::from_str("SHA-256").unwrap(), HashAlgorithm::Sha256);
        assert_eq!(HashAlgorithm::from_str("Sha-1").unwrap(), HashAlgorithm::Sha1);
    }

    #[test]
    fn from_str_rejects_unknown() {
        let err = HashAlgorithm::from_str("blake3").unwrap_err();
        assert!(err.to_string().contains("blake3"));
    }

    #[test]
    fn default_is_sha256() {
        assert_eq!(HashAlgorithm::default(), HashAlgorithm::Sha256);
    }

    #[test]
    fn digests_differ_across_algorithms() {
        let d: Vec<_> = HashAlgorithm::ALL.iter().map(|a| a.digest(b"abc")).collect();
        assert_ne!(d[0], d[1]);
        assert_ne!(d[1], d[2]);
        assert_ne!(d[0], d[2]);
    }
}
