//! Segmented, spill-to-disk relation storage for out-of-core
//! pipelines.
//!
//! A [`SegmentedRelation`] is a relation split into fixed-size row
//! **segments**. Each segment is a complete columnar [`Relation`]
//! chunk with *segment-local* dictionaries (compacted at seal time to
//! the entries its rows actually reference), so a segment is fully
//! self-describing and can be serialized, dropped from memory, and
//! read back in isolation. Cold segments spill to a
//! [`SegmentStore`] (a file for real
//! out-of-core runs, an in-memory arena for hermetic tests) in the
//! range-addressable format of [`crate::spill`], and a small pager
//! keeps the **resident working set under a configurable byte
//! budget**, evicting least-recently-used segments (re-serializing
//! them first when dirty).
//!
//! # Shared dictionary and merge maps
//!
//! Per text attribute the relation also maintains one small
//! relation-level [`Dictionary`] that every segment's local entries
//! are interned into, plus a per-segment **merge map** `local code →
//! shared code`. Global operators that need one code space across
//! segments — duplicate elimination, group-bys — translate through
//! the merge map (a `u32` indexed load per row) instead of
//! materializing strings, and the shared dictionary stays resident
//! even when every segment is spilled.
//!
//! # Segment-at-a-time operators
//!
//! The streaming operators ([`SegmentedRelation::select`],
//! [`SegmentedRelation::hash_join`], [`SegmentedRelation::distinct`],
//! [`SegmentedRelation::group_count`],
//! [`SegmentedRelation::group_count_distinct`]) visit one segment at
//! a time — compile/evaluate/gather per segment, carry only small
//! aggregate state across segments — and produce output logically
//! identical to their whole-relation counterparts in [`crate::ops`]
//! and [`crate::join`]. The out-of-core embed/decode drivers in
//! `catmark-core` use the same [`SegmentedRelation::with_segment`] /
//! [`SegmentedRelation::with_segment_mut`] primitives.

use std::collections::{HashMap, HashSet};

use crate::join::GroupCount;
use crate::spill::{encode_segment, read_segment, MemStore, SegmentStore, SpillHandle};
use crate::{
    ColumnView, CompiledPredicate, Dictionary, Predicate, Relation, RelationError, Schema,
    SelectionVector, Value,
};

/// Default rows per segment when the builder does not override it.
const DEFAULT_SEGMENT_ROWS: usize = 8_192;

/// Builder for a [`SegmentedRelation`]: segment granularity, resident
/// budget, and the backing [`SegmentStore`].
pub struct SegmentedRelationBuilder {
    schema: Schema,
    segment_rows: usize,
    budget: Option<usize>,
    store: Box<dyn SegmentStore>,
}

impl std::fmt::Debug for SegmentedRelationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedRelationBuilder")
            .field("segment_rows", &self.segment_rows)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl SegmentedRelationBuilder {
    /// Rows per sealed segment (default 8192).
    ///
    /// # Panics
    ///
    /// Panics when `rows == 0`.
    #[must_use]
    pub fn segment_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "segments must hold at least one row");
        self.segment_rows = rows;
        self
    }

    /// Byte budget for the **pageable** working set: the decoded
    /// segments currently resident. The pager evicts
    /// least-recently-used sealed segments to stay under it; the
    /// segment currently being read or written and the open tail are
    /// pinned, so the budget is honored whenever it can hold one
    /// segment. The always-resident state — shared dictionaries
    /// (O(distinct categorical values)) and per-segment bookkeeping
    /// (O(segments)) — is *not* pageable and is reported separately
    /// by [`SegmentedRelation::resident_overhead_bytes`]; it vanishes
    /// relative to the data as relations grow, exactly like a
    /// database's catalog memory next to its buffer pool.
    #[must_use]
    pub fn budget_bytes(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Replace the default in-memory store with `store` (e.g. a
    /// [`crate::spill::FileStore`] for data larger than RAM).
    #[must_use]
    pub fn store(mut self, store: Box<dyn SegmentStore>) -> Self {
        self.store = store;
        self
    }

    /// Finish building an empty segmented relation.
    #[must_use]
    pub fn build(self) -> SegmentedRelation {
        let arity = self.schema.arity();
        SegmentedRelation {
            schema: self.schema,
            segment_rows: self.segment_rows,
            budget: self.budget,
            store: self.store,
            slots: Vec::new(),
            shared: vec![None; arity],
            len: 0,
            peak_pageable: 0,
            peak_resident: 0,
            peak_segment: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Reopen a segmented relation from already-spilled segments — the
    /// versioned-store path (see [`crate::versioned`]): every slot
    /// starts cold (non-resident, clean, sealed) behind its existing
    /// [`SpillHandle`], and the relation-level shared dictionaries are
    /// restored verbatim so shared codes stay stable across reopens.
    /// Merge maps rebuild lazily as segments page in.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when `shared` does not match
    /// the schema arity.
    pub fn open_spilled(
        self,
        segments: &[(SpillHandle, usize)],
        shared: Vec<Option<Dictionary>>,
    ) -> Result<SegmentedRelation, RelationError> {
        if shared.len() != self.schema.arity() {
            return Err(RelationError::InvalidSchema(
                "shared dictionary state does not match the schema arity".into(),
            ));
        }
        let arity = self.schema.arity();
        let mut seg = self.build();
        seg.shared = shared;
        for &(handle, rows) in segments {
            seg.slots.push(Slot {
                rows,
                resident: None,
                handle: Some(handle),
                bytes: 0,
                dirty: false,
                sealed: true,
                content_fp: None,
                last_touch: 0,
                merged: vec![0; arity],
                merge: vec![Vec::new(); arity],
            });
            seg.len += rows;
        }
        Ok(seg)
    }

    /// Partition `rel` into sealed segments (spilling each beyond the
    /// budget as it seals).
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when `rel`'s schema differs
    /// from the one the builder was created with, or
    /// [`RelationError::Spill`] when the store cannot persist a
    /// segment.
    pub fn from_relation(self, rel: &Relation) -> Result<SegmentedRelation, RelationError> {
        if &self.schema != rel.schema() {
            return Err(RelationError::InvalidSchema(
                "builder schema differs from the relation being segmented".into(),
            ));
        }
        let mut seg = self.build();
        let mut start = 0;
        while start < rel.len() {
            let end = (start + seg.segment_rows).min(rel.len());
            let rows: Vec<usize> = (start..end).collect();
            seg.push_segment(rel.gather(&rows))?;
            start = end;
        }
        Ok(seg)
    }
}

/// One segment's bookkeeping: row count, residency, spill handle,
/// dirtiness, and the per-attribute merge maps into the shared
/// dictionaries.
#[derive(Debug)]
struct Slot {
    rows: usize,
    resident: Option<Relation>,
    handle: Option<SpillHandle>,
    /// Resident-byte estimate of the decoded segment (recorded when
    /// last resident) — what eviction planning budgets with.
    bytes: usize,
    dirty: bool,
    sealed: bool,
    /// Content fingerprint of the blob last written to the store —
    /// lets eviction skip re-serializing a "dirty" segment whose
    /// mutable pass turned out to be a no-op.
    content_fp: Option<u128>,
    last_touch: u64,
    /// Per attribute: local dictionary entries already merged into
    /// the shared dictionary (text attributes only; 0 for integers).
    merged: Vec<usize>,
    /// Per attribute: local code → shared code (empty for integers).
    merge: Vec<Vec<u32>>,
}

/// Hit/miss/eviction counters for a bounded cache — the pager here,
/// and the plan caches in `catmark-core` (which reuse this type so
/// every cache in the stack reports observability the same way).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied without touching the backing store.
    pub hits: u64,
    /// Lookups that had to rebuild or page in the entry.
    pub misses: u64,
    /// Entries dropped to make room under the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fold `other`'s counters into these (for service-wide totals).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A relation stored as fixed-size columnar segments behind a
/// budgeted pager — see the [module docs](self).
pub struct SegmentedRelation {
    schema: Schema,
    segment_rows: usize,
    budget: Option<usize>,
    store: Box<dyn SegmentStore>,
    slots: Vec<Slot>,
    /// Per attribute: the relation-level dictionary text segments
    /// merge into (`None` for integer attributes).
    shared: Vec<Option<Dictionary>>,
    len: usize,
    peak_pageable: usize,
    peak_resident: usize,
    peak_segment: usize,
    clock: u64,
    stats: CacheStats,
}

impl std::fmt::Debug for SegmentedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedRelation")
            .field("len", &self.len)
            .field("segments", &self.slots.len())
            .field("segment_rows", &self.segment_rows)
            .field("budget", &self.budget)
            .field("resident_bytes", &self.resident_bytes())
            .finish_non_exhaustive()
    }
}

impl SegmentedRelation {
    /// Start building a segmented relation over `schema`.
    #[must_use]
    pub fn builder(schema: Schema) -> SegmentedRelationBuilder {
        SegmentedRelationBuilder {
            schema,
            segment_rows: DEFAULT_SEGMENT_ROWS,
            budget: None,
            store: Box::new(MemStore::new()),
        }
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of tuples across all segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (sealed plus the open tail, if any).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.slots.len()
    }

    /// Rows per sealed segment.
    #[must_use]
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// The configured resident budget, if any.
    #[must_use]
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// First global row index of segment `seg`.
    #[must_use]
    pub fn segment_base(&self, seg: usize) -> usize {
        self.slots[..seg].iter().map(|s| s.rows).sum()
    }

    /// Rows in segment `seg`.
    #[must_use]
    pub fn segment_len(&self, seg: usize) -> usize {
        self.slots[seg].rows
    }

    /// Append a tuple to the open tail segment (key duplicates across
    /// segments are tolerated, as with
    /// [`Relation::push_unchecked_key`]; a segmented relation keeps no
    /// global key index). Seals the tail when it reaches
    /// [`SegmentedRelation::segment_rows`].
    ///
    /// # Errors
    ///
    /// Schema mismatches, or [`RelationError::Spill`] when sealing
    /// fails to persist.
    pub fn push(&mut self, values: Vec<Value>) -> Result<(), RelationError> {
        let tail = match self.slots.last() {
            Some(slot) if !slot.sealed => self.slots.len() - 1,
            _ => {
                let rel = Relation::with_capacity(self.schema.clone(), self.segment_rows);
                self.new_slot(rel, false)?;
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[tail];
        let rel = slot.resident.as_mut().expect("the open tail is always resident");
        rel.push_unchecked_key(values)?;
        slot.rows += 1;
        // Walking every column and dictionary entry per pushed tuple
        // would make ingest accounting O(rows × columns); the open
        // tail is pinned (never evicted), so its byte figure only
        // feeds peak sampling — refresh it periodically and exactly
        // at seal time.
        if slot.rows.is_multiple_of(256) {
            slot.bytes = rel.resident_bytes();
        }
        self.len += 1;
        self.refresh_merge(tail);
        if self.slots[tail].rows >= self.segment_rows {
            self.seal_slot(tail)?;
        }
        self.note_usage();
        Ok(())
    }

    /// Seal the open tail segment, even when partial or empty (an
    /// explicit empty trailing segment is valid and exercised by the
    /// boundary tests). A no-op when the tail is already sealed; when
    /// no tail exists an empty segment is created and sealed.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when the store cannot persist it.
    pub fn seal_tail(&mut self) -> Result<(), RelationError> {
        match self.slots.last() {
            Some(slot) if !slot.sealed => self.seal_slot(self.slots.len() - 1),
            _ => {
                let rel = Relation::new(self.schema.clone());
                self.new_slot(rel, true)
            }
        }
    }

    /// Run `f` over segment `seg` as a read-only [`Relation`], paging
    /// it in (and others out) as needed.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when paging fails.
    pub fn with_segment<R>(
        &mut self,
        seg: usize,
        f: impl FnOnce(&Relation) -> R,
    ) -> Result<R, RelationError> {
        self.make_resident(seg)?;
        let out = f(self.slots[seg].resident.as_ref().expect("just made resident"));
        Ok(out)
    }

    /// Run `f` over segment `seg` as a mutable [`Relation`] (the
    /// out-of-core embed path), marking it dirty — it re-serializes
    /// on its next eviction — and refreshing its merge maps for any
    /// newly interned dictionary entries. Sealed segments are
    /// re-compacted afterwards: bulk writers (the embedder interns
    /// the whole domain up front) can leave local dictionaries full
    /// of unreferenced entries, which would otherwise defeat the
    /// resident budget segment by segment.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when paging fails.
    pub fn with_segment_mut<R>(
        &mut self,
        seg: usize,
        f: impl FnOnce(&mut Relation) -> R,
    ) -> Result<R, RelationError> {
        self.make_resident(seg)?;
        let slot = &mut self.slots[seg];
        let rel = slot.resident.as_mut().expect("just made resident");
        let out = f(rel);
        slot.dirty = true;
        if slot.sealed {
            compact_dictionaries(rel);
            // Compaction re-codes rows; merge maps must be rebuilt.
            for (merged, merge) in slot.merged.iter_mut().zip(&mut slot.merge) {
                *merged = 0;
                merge.clear();
            }
        }
        slot.bytes = rel.resident_bytes();
        self.refresh_merge(seg);
        self.enforce_budget(Some(seg))?;
        self.note_usage();
        Ok(out)
    }

    /// Stream every segment in row order through `f` (called with the
    /// segment's first global row index and its relation view).
    ///
    /// # Errors
    ///
    /// Paging errors, or whatever `f` returns.
    pub fn for_each_segment(
        &mut self,
        mut f: impl FnMut(usize, &Relation) -> Result<(), RelationError>,
    ) -> Result<(), RelationError> {
        let mut base = 0;
        for seg in 0..self.slots.len() {
            let rows = self.slots[seg].rows;
            self.with_segment(seg, |rel| f(base, rel))??;
            base += rows;
        }
        Ok(())
    }

    /// Materialize the whole relation in memory (verification and
    /// small-data interop; the output is *not* budget-bounded).
    ///
    /// # Errors
    ///
    /// Paging errors.
    pub fn to_relation(&mut self) -> Result<Relation, RelationError> {
        let mut out = Relation::with_capacity(self.schema.clone(), self.len);
        for seg in 0..self.slots.len() {
            self.make_resident(seg)?;
            let rel = self.slots[seg].resident.as_ref().expect("resident");
            out.append(rel)?;
        }
        Ok(out)
    }

    /// Seal the tail and spill every dirty segment, leaving residency
    /// untouched (cheap crash-consistency point for the store).
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] on store failures.
    pub fn flush(&mut self) -> Result<(), RelationError> {
        if self.slots.last().is_some_and(|s| !s.sealed) {
            self.seal_slot(self.slots.len() - 1)?;
        }
        for seg in 0..self.slots.len() {
            if self.slots[seg].dirty && self.slots[seg].resident.is_some() {
                self.write_back(seg)?;
            }
        }
        Ok(())
    }

    /// The shared relation-level dictionary of text attribute
    /// `attr_idx` (`None` for integer attributes).
    #[must_use]
    pub fn shared_dict(&self, attr_idx: usize) -> Option<&Dictionary> {
        self.shared[attr_idx].as_ref()
    }

    /// Segment `seg`'s merge map for text attribute `attr_idx`:
    /// position `c` holds the shared code of local code `c`.
    #[must_use]
    pub fn merge_map(&self, seg: usize, attr_idx: usize) -> Option<&[u32]> {
        let map = &self.slots[seg].merge[attr_idx];
        (!map.is_empty() || self.shared[attr_idx].is_some()).then_some(map.as_slice())
    }

    /// Current total resident footprint: the pageable decoded
    /// segments plus the always-resident overhead.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.pageable_bytes() + self.resident_overhead_bytes()
    }

    /// Bytes of decoded segments currently resident — the working
    /// set the budget bounds.
    #[must_use]
    pub fn pageable_bytes(&self) -> usize {
        self.slots.iter().filter(|s| s.resident.is_some()).map(|s| s.bytes).sum()
    }

    /// The always-resident, non-pageable state: shared dictionaries,
    /// merge maps, and slot metadata. O(distinct categorical values +
    /// segments), independent of how many rows each segment holds.
    #[must_use]
    pub fn resident_overhead_bytes(&self) -> usize {
        let shared: usize =
            self.shared.iter().flatten().map(Dictionary::resident_bytes).sum::<usize>();
        let merge: usize = self
            .slots
            .iter()
            .map(|s| s.merge.iter().map(|m| m.capacity() * 4).sum::<usize>())
            .sum();
        shared + merge + self.slots.capacity() * std::mem::size_of::<Slot>()
    }

    /// High-water mark of [`SegmentedRelation::pageable_bytes`]
    /// observed at paging and mutation boundaries — the enforced
    /// ceiling the out-of-core bench asserts against the configured
    /// budget.
    #[must_use]
    pub fn peak_pageable_bytes(&self) -> usize {
        self.peak_pageable
    }

    /// High-water mark of [`SegmentedRelation::resident_bytes`]
    /// (pageable working set plus overhead) at the same boundaries.
    #[must_use]
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }

    /// Largest single decoded segment observed, in bytes. The pager's
    /// exact contract is `peak_pageable_bytes() <=
    /// max(budget, peak_segment_bytes())`: eviction empties everything
    /// evictable, but the one segment being operated on is pinned, so
    /// a segment bigger than the whole budget is the only way past
    /// the ceiling.
    #[must_use]
    pub fn peak_segment_bytes(&self) -> usize {
        self.peak_segment
    }

    /// Total bytes appended to the backing store.
    #[must_use]
    pub fn spilled_bytes(&self) -> u64 {
        self.store.spilled_bytes()
    }

    /// Pager cache counters: residency hits, page-ins (misses), and
    /// evictions since construction.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// The spill handle of segment `seg`'s last written-back blob
    /// (`None` while the segment has only ever been resident). After
    /// [`SegmentedRelation::flush`] every segment has one — the hook
    /// the versioned commit log uses to map segments to content
    /// hashes.
    #[must_use]
    pub fn segment_handle(&self, seg: usize) -> Option<SpillHandle> {
        self.slots[seg].handle.filter(|_| !self.slots[seg].dirty)
    }

    // ------------------------------------------------------------------
    // Streaming operators (segment-at-a-time, logically identical to
    // their whole-relation counterparts).
    // ------------------------------------------------------------------

    /// Segment-streaming [`crate::ops::select`]: compile the predicate
    /// per segment (truth tables index segment-local dictionaries),
    /// evaluate vectorized into one reused [`SelectionVector`], gather
    /// survivors, and append.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`] for unknown attributes (reported
    /// even when no segment exists), or paging errors.
    pub fn select(&mut self, predicate: &Predicate) -> Result<Relation, RelationError> {
        if self.slots.is_empty() {
            let empty = Relation::new(self.schema.clone());
            CompiledPredicate::compile(predicate, &empty)?;
            return Ok(empty);
        }
        let mut out = Relation::new(self.schema.clone());
        let mut sel = SelectionVector::new();
        for seg in 0..self.slots.len() {
            let part = self.with_segment(seg, |rel| -> Result<Relation, RelationError> {
                let compiled = CompiledPredicate::compile(predicate, rel)?;
                compiled
                    .select_into(rel, &mut sel)
                    .expect("freshly compiled predicate matches its segment");
                Ok(rel.gather_u32(sel.rows()))
            })??;
            out.append(&part)?;
        }
        Ok(out)
    }

    /// Segment-streaming [`crate::join::hash_join`] with this relation
    /// as the probe side: the (in-memory) `right` build side is probed
    /// one left segment at a time, so only one segment of the probe
    /// side is ever resident.
    ///
    /// # Errors
    ///
    /// As [`crate::join::hash_join`], plus paging errors.
    pub fn hash_join(
        &mut self,
        right: &Relation,
        left_attr: &str,
        right_attr: &str,
    ) -> Result<Relation, RelationError> {
        let empty = Relation::new(self.schema.clone());
        let mut out = crate::join::hash_join(&empty, right, left_attr, right_attr)?;
        for seg in 0..self.slots.len() {
            let part = self.with_segment(seg, |rel| {
                crate::join::hash_join(rel, right, left_attr, right_attr)
            })??;
            out.append(&part)?;
        }
        Ok(out)
    }

    /// Segment-streaming [`crate::join::distinct`]: rows are compared
    /// in the **shared** code space (integer bits, or the merge-mapped
    /// shared dictionary code), so the seen-set carried across
    /// segments is a set of small integer keys, never strings.
    ///
    /// # Errors
    ///
    /// Paging errors.
    pub fn distinct(&mut self) -> Result<Relation, RelationError> {
        let arity = self.schema.arity();
        let mut seen: HashSet<Box<[u64]>> = HashSet::new();
        let mut out = Relation::new(self.schema.clone());
        let mut scratch: Vec<u64> = vec![0; arity];
        for seg in 0..self.slots.len() {
            self.make_resident(seg)?;
            let slot = &self.slots[seg];
            let rel = slot.resident.as_ref().expect("resident");
            let mut keep: Vec<u32> = Vec::new();
            for row in 0..rel.len() {
                for (attr, slotv) in scratch.iter_mut().enumerate() {
                    *slotv = match rel.column(attr) {
                        ColumnView::Int(xs) => xs[row] as u64,
                        ColumnView::Text { codes, .. } => {
                            u64::from(slot.merge[attr][codes[row] as usize])
                        }
                    };
                }
                if !seen.contains(scratch.as_slice()) {
                    seen.insert(scratch.clone().into_boxed_slice());
                    keep.push(row as u32);
                }
            }
            let part = rel.gather_u32(&keep);
            out.append(&part)?;
        }
        Ok(out)
    }

    /// Segment-streaming [`crate::join::group_count`]: counts
    /// accumulate per shared code (text) or raw value (integer) across
    /// segments; `Value`s materialize once per distinct group at the
    /// end.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`], or paging errors.
    pub fn group_count(&mut self, attr: &str) -> Result<Vec<GroupCount>, RelationError> {
        let idx = self.schema.index_of(attr)?;
        let mut int_counts: HashMap<i64, u64> = HashMap::new();
        let mut text_counts: Vec<u64> = Vec::new();
        for seg in 0..self.slots.len() {
            self.make_resident(seg)?;
            let slot = &self.slots[seg];
            let rel = slot.resident.as_ref().expect("resident");
            match rel.column(idx) {
                ColumnView::Int(xs) => {
                    for &x in xs {
                        *int_counts.entry(x).or_insert(0) += 1;
                    }
                }
                ColumnView::Text { codes, .. } => {
                    let merge = &slot.merge[idx];
                    for &c in codes {
                        let shared = merge[c as usize] as usize;
                        if shared >= text_counts.len() {
                            text_counts.resize(shared + 1, 0);
                        }
                        text_counts[shared] += 1;
                    }
                }
            }
        }
        let mut groups: Vec<GroupCount> = int_counts
            .into_iter()
            .map(|(v, count)| GroupCount { value: Value::Int(v), count })
            .collect();
        if let Some(dict) = self.shared[idx].as_ref() {
            groups.extend(text_counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(
                |(code, &count)| GroupCount {
                    value: Value::Text(dict.get(code as u32).to_owned()),
                    count,
                },
            ));
        }
        groups.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
        Ok(groups)
    }

    /// Segment-streaming [`crate::join::group_count_distinct`]: both
    /// columns reduce to `u64` keys in the shared code space, and only
    /// the per-group key sets cross segment boundaries.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`], or paging errors.
    pub fn group_count_distinct(
        &mut self,
        group_attr: &str,
        distinct_attr: &str,
    ) -> Result<Vec<GroupCount>, RelationError> {
        let g_idx = self.schema.index_of(group_attr)?;
        let d_idx = self.schema.index_of(distinct_attr)?;
        let mut sets: HashMap<u64, HashSet<u64>> = HashMap::new();
        for seg in 0..self.slots.len() {
            self.make_resident(seg)?;
            let slot = &self.slots[seg];
            let rel = slot.resident.as_ref().expect("resident");
            let key_of = |attr: usize, row: usize| match rel.column(attr) {
                ColumnView::Int(xs) => xs[row] as u64,
                ColumnView::Text { codes, .. } => u64::from(slot.merge[attr][codes[row] as usize]),
            };
            for row in 0..rel.len() {
                sets.entry(key_of(g_idx, row)).or_default().insert(key_of(d_idx, row));
            }
        }
        let value_of = |key: u64| match self.shared[g_idx].as_ref() {
            None => Value::Int(key as i64),
            Some(dict) => {
                Value::Text(dict.get(u32::try_from(key).expect("shared code")).to_owned())
            }
        };
        let mut groups: Vec<GroupCount> = sets
            .into_iter()
            .map(|(key, set)| GroupCount { value: value_of(key), count: set.len() as u64 })
            .collect();
        groups.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
        Ok(groups)
    }

    // ------------------------------------------------------------------
    // Pager internals.
    // ------------------------------------------------------------------

    /// Register `rel` as a fresh slot (the open tail, or sealed
    /// immediately when `seal`).
    fn push_segment(&mut self, rel: Relation) -> Result<(), RelationError> {
        self.len += rel.len();
        self.new_slot(rel, true)
    }

    fn new_slot(&mut self, rel: Relation, seal: bool) -> Result<(), RelationError> {
        let arity = self.schema.arity();
        let slot = Slot {
            rows: rel.len(),
            bytes: rel.resident_bytes(),
            resident: Some(rel),
            handle: None,
            dirty: true,
            sealed: false,
            content_fp: None,
            last_touch: self.tick(),
            merged: vec![0; arity],
            merge: vec![Vec::new(); arity],
        };
        self.slots.push(slot);
        let seg = self.slots.len() - 1;
        self.refresh_merge(seg);
        if seal {
            self.seal_slot(seg)?;
        } else {
            self.enforce_budget(Some(seg))?;
            self.note_usage();
        }
        Ok(())
    }

    /// Seal segment `seg`: compact its text dictionaries to the
    /// entries its rows reference, rebuild its merge maps, serialize
    /// it to the store, and re-enforce the budget.
    fn seal_slot(&mut self, seg: usize) -> Result<(), RelationError> {
        {
            let slot = &mut self.slots[seg];
            let rel = slot.resident.as_mut().expect("sealing requires residency");
            compact_dictionaries(rel);
            slot.bytes = rel.resident_bytes();
            slot.sealed = true;
            // Compaction re-codes rows; merge maps must be rebuilt.
            for (merged, merge) in slot.merged.iter_mut().zip(&mut slot.merge) {
                *merged = 0;
                merge.clear();
            }
        }
        self.refresh_merge(seg);
        self.write_back(seg)?;
        self.enforce_budget(Some(seg))?;
        self.note_usage();
        Ok(())
    }

    /// Serialize segment `seg` (resident) and append it to the store
    /// — unless its content matches the blob already spilled (a
    /// mutable pass that altered nothing), in which case the existing
    /// handle stays valid and the append-only log does not grow.
    fn write_back(&mut self, seg: usize) -> Result<(), RelationError> {
        let (fp, unchanged) = {
            let slot = &self.slots[seg];
            let rel = slot.resident.as_ref().expect("write-back requires residency");
            let fp = segment_content_fp(rel);
            (fp, slot.handle.is_some() && slot.content_fp == Some(fp))
        };
        if unchanged {
            self.slots[seg].dirty = false;
            return Ok(());
        }
        let blob = encode_segment(self.slots[seg].resident.as_ref().expect("resident"));
        let handle = self.store.append(&blob)?;
        let slot = &mut self.slots[seg];
        slot.handle = Some(handle);
        slot.content_fp = Some(fp);
        slot.dirty = false;
        Ok(())
    }

    /// Page segment `seg` in, evicting others to honor the budget.
    fn make_resident(&mut self, seg: usize) -> Result<(), RelationError> {
        let touch = self.tick();
        if self.slots[seg].resident.is_some() {
            self.slots[seg].last_touch = touch;
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        let incoming = self.slots[seg].bytes;
        self.evict_to_fit(incoming, seg)?;
        let handle = self.slots[seg].handle.expect("a non-resident segment is always spilled");
        let rel = read_segment(self.store.as_ref(), handle, &self.schema)?;
        let slot = &mut self.slots[seg];
        slot.bytes = rel.resident_bytes();
        slot.resident = Some(rel);
        slot.last_touch = touch;
        // Reopened slots (see `open_spilled`) page in with empty merge
        // maps; extending them here is a no-op on the normal path
        // (`merged` already covers the local dictionary).
        self.refresh_merge(seg);
        self.enforce_budget(Some(seg))?;
        self.note_usage();
        Ok(())
    }

    /// Evict LRU sealed segments until `incoming` more bytes fit.
    fn evict_to_fit(&mut self, incoming: usize, protect: usize) -> Result<(), RelationError> {
        let Some(budget) = self.budget else { return Ok(()) };
        let target = budget.saturating_sub(incoming);
        while self.pageable_bytes() > target {
            if !self.evict_one(protect)? {
                break;
            }
        }
        Ok(())
    }

    /// Evict resident segments (LRU first) while over budget.
    fn enforce_budget(&mut self, protect: Option<usize>) -> Result<(), RelationError> {
        let Some(budget) = self.budget else { return Ok(()) };
        while self.pageable_bytes() > budget {
            if !self.evict_one(protect.unwrap_or(usize::MAX))? {
                break;
            }
        }
        Ok(())
    }

    /// Evict the least-recently-used evictable segment. Returns false
    /// when nothing can be evicted (only the protected segment or the
    /// open tail remain).
    fn evict_one(&mut self, protect: usize) -> Result<bool, RelationError> {
        let victim = self
            .slots
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != protect && s.sealed && s.resident.is_some())
            .min_by_key(|(_, s)| s.last_touch)
            .map(|(i, _)| i);
        let Some(victim) = victim else { return Ok(false) };
        if self.slots[victim].dirty {
            self.write_back(victim)?;
        }
        self.slots[victim].resident = None;
        self.stats.evictions += 1;
        Ok(true)
    }

    /// Extend segment `seg`'s merge maps over local dictionary
    /// entries interned since the last refresh.
    fn refresh_merge(&mut self, seg: usize) {
        let slot = &mut self.slots[seg];
        let Some(rel) = slot.resident.as_ref() else { return };
        for attr in 0..self.schema.arity() {
            let ColumnView::Text { dict, .. } = rel.column(attr) else { continue };
            let shared = self.shared[attr].get_or_insert_with(Dictionary::new);
            let from = slot.merged[attr];
            if from >= dict.len() {
                continue;
            }
            slot.merge[attr].extend((from..dict.len()).map(|c| shared.intern(dict.get(c as u32))));
            slot.merged[attr] = dict.len();
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Sample the resident footprints into the high-water marks.
    fn note_usage(&mut self) {
        self.peak_pageable = self.peak_pageable.max(self.pageable_bytes());
        self.peak_resident = self.peak_resident.max(self.resident_bytes());
        let largest =
            self.slots.iter().filter(|s| s.resident.is_some()).map(|s| s.bytes).max().unwrap_or(0);
        self.peak_segment = self.peak_segment.max(largest);
    }
}

/// Rebuild every text column's dictionary to hold exactly the entries
/// its rows reference, in first-occurrence order — what makes a
/// sealed segment's dictionary *segment-local* even when the segment
/// was gathered out of a relation with a big shared dictionary.
fn compact_dictionaries(rel: &mut Relation) {
    let arity = rel.schema().arity();
    for attr in 0..arity {
        let ColumnView::Text { codes, dict } = rel.column(attr) else { continue };
        // Skip when already compact: every entry referenced at least
        // once and codes dense over the dictionary.
        let mut referenced = vec![false; dict.len()];
        for &c in codes {
            referenced[c as usize] = true;
        }
        if referenced.iter().all(|&r| r) {
            continue;
        }
        let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
        let mut compact = Dictionary::new();
        let new_codes: Vec<u32> = codes
            .iter()
            .map(|&c| {
                if remap[c as usize] == u32::MAX {
                    remap[c as usize] = compact.intern(dict.get(c));
                }
                remap[c as usize]
            })
            .collect();
        rel.replace_text_column(attr, new_codes, compact);
    }
}

/// 128-bit (non-cryptographic) fingerprint of a segment's stored
/// content — raw integers, codes, and dictionary entries. Segments
/// are compacted before every write-back, so equal logical content
/// implies equal storage layout and the fingerprint is
/// layout-stable. It gates the skip of a spill append, where a false
/// "unchanged" would mean stale bytes on reload — hence 128 bits of
/// margin rather than the 64 a pure cache key would need.
fn segment_content_fp(rel: &Relation) -> u128 {
    fn mix(h: u64, v: u64, k: u64) -> u64 {
        (h ^ v).wrapping_mul(k).rotate_left(23)
    }
    // Two independent 64-bit folds (distinct odd multipliers and
    // seeds) form a 128-bit verdict: a false "unchanged" here would
    // serve stale bytes after reload, so the collision margin is
    // sized for data safety, not cache efficiency.
    let mut a = 0xCBF2_9CE4_8422_2325u64 ^ rel.len() as u64;
    let mut b = 0x9AE1_6A3B_2F90_404Fu64 ^ (rel.len() as u64).rotate_left(32);
    let mut write = |v: u64| {
        a = mix(a, v, 0x9E37_79B9_7F4A_7C15);
        b = mix(b, v, 0xC2B2_AE3D_27D4_EB4F);
    };
    for attr in 0..rel.schema().arity() {
        match rel.column(attr) {
            ColumnView::Int(xs) => {
                write(0x01);
                for &x in xs {
                    write(x as u64);
                }
            }
            ColumnView::Text { codes, dict } => {
                write(0x02);
                for entry in dict.entries() {
                    write(entry.len() as u64);
                    for &byte in entry.as_bytes() {
                        write(u64::from(byte));
                    }
                }
                for &c in codes {
                    write(u64::from(c));
                }
            }
        }
    }
    (u128::from(a) << 64) | u128::from(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::FileStore;
    use crate::AttrType;

    fn schema() -> Schema {
        Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .categorical_attr("c", AttrType::Text)
            .build()
            .unwrap()
    }

    fn sample(n: i64) -> Relation {
        let mut rel = Relation::new(schema());
        let cities = ["boston", "austin", "chicago", "dallas", "el paso"];
        for i in 0..n {
            rel.push(vec![
                Value::Int(i),
                Value::Int(i % 7),
                Value::Text(cities[(i % 5) as usize].into()),
            ])
            .unwrap();
        }
        rel
    }

    fn segmented(rel: &Relation, rows: usize) -> SegmentedRelation {
        SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(rows)
            .from_relation(rel)
            .unwrap()
    }

    #[test]
    fn from_relation_round_trips() {
        let rel = sample(100);
        for rows in [1, 7, 33, 100, 128] {
            let mut seg = segmented(&rel, rows);
            assert_eq!(seg.len(), 100);
            assert_eq!(seg.segment_count(), 100usize.div_ceil(rows));
            let back = seg.to_relation().unwrap();
            assert!(rel.iter().zip(back.iter()).all(|(a, b)| a == b));
        }
    }

    #[test]
    fn push_seals_at_the_boundary_and_round_trips() {
        let rel = sample(25);
        let mut seg = SegmentedRelation::builder(rel.schema().clone()).segment_rows(10).build();
        for t in rel.iter() {
            seg.push(t.values().to_vec()).unwrap();
        }
        assert_eq!(seg.segment_count(), 3, "two sealed + one open tail");
        seg.seal_tail().unwrap();
        let back = seg.to_relation().unwrap();
        assert!(rel.iter().zip(back.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn empty_trailing_segments_are_valid() {
        let rel = sample(20);
        let mut seg = SegmentedRelation::builder(rel.schema().clone()).segment_rows(10).build();
        for t in rel.iter() {
            seg.push(t.values().to_vec()).unwrap();
        }
        // 20 rows at 10/segment: the tail sealed itself; force an
        // explicit empty trailing segment on top.
        seg.seal_tail().unwrap();
        assert_eq!(seg.segment_count(), 3);
        assert_eq!(seg.segment_len(2), 0);
        assert_eq!(seg.len(), 20);
        let back = seg.to_relation().unwrap();
        assert_eq!(back.len(), 20);
        assert!(seg.select(&Predicate::True).unwrap().len() == 20);
    }

    #[test]
    fn sealed_segments_have_local_dictionaries() {
        let rel = sample(100); // 5 distinct cities, spread evenly
        let mut seg = segmented(&rel, 5);
        // Each 5-row segment sees exactly 5 distinct cities… but a
        // 2-row segment of the same data must hold only its own 2.
        let mut tiny = segmented(&sample(2), 5);
        tiny.with_segment(0, |r| {
            let (_, dict) = r.column(2).as_text().unwrap();
            assert_eq!(dict.len(), 2, "segment-local dictionary not compacted");
        })
        .unwrap();
        // Shared dictionary covers the union; merge maps translate.
        seg.with_segment(0, |_| ()).unwrap();
        assert_eq!(seg.shared_dict(2).unwrap().len(), 5);
        assert!(seg.shared_dict(0).is_none(), "integer attributes have no dictionary");
        let map = seg.merge_map(0, 2).unwrap();
        assert!(!map.is_empty());
    }

    #[test]
    fn budget_is_enforced_and_peak_tracked() {
        let rel = sample(2_000);
        let total = rel.resident_bytes();
        let budget = total / 4;
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(125) // 16 segments, each ~1/16 of the data
            .budget_bytes(budget)
            .from_relation(&rel)
            .unwrap();
        seg.for_each_segment(|_, _| Ok(())).unwrap();
        assert!(
            seg.peak_pageable_bytes() <= budget,
            "peak {} exceeds budget {budget}",
            seg.peak_pageable_bytes()
        );
        assert!(seg.pageable_bytes() <= budget);
        assert!(seg.peak_resident_bytes() >= seg.peak_pageable_bytes());
        assert!(seg.spilled_bytes() > 0, "cold segments must have spilled");
        // The data is still intact after all that paging.
        let back = seg.to_relation().unwrap();
        assert!(rel.iter().zip(back.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn dirty_segments_survive_eviction() {
        let rel = sample(300);
        let budget = rel.resident_bytes() / 4;
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(30)
            .budget_bytes(budget)
            .from_relation(&rel)
            .unwrap();
        // Rewrite one value per segment, then force everything through
        // the pager again.
        for i in 0..seg.segment_count() {
            seg.with_segment_mut(i, |r| {
                r.update_value(0, 1, Value::Int(999)).unwrap();
            })
            .unwrap();
        }
        let back = seg.to_relation().unwrap();
        for i in 0..seg.segment_count() {
            assert_eq!(
                back.value(i * 30, 1).unwrap(),
                Value::Int(999),
                "segment {i} lost its write"
            );
        }
    }

    #[test]
    fn streaming_ops_match_monolithic_ops() {
        let rel = sample(157);
        for rows in [1, 10, 64, 157, 200] {
            let mut seg = segmented(&rel, rows);
            let pred = Predicate::eq("c", "boston").or(Predicate::Gt("a".into(), Value::Int(4)));
            let mono = crate::ops::select(&rel, &pred).unwrap();
            let stream = seg.select(&pred).unwrap();
            assert!(mono.iter().zip(stream.iter()).all(|(a, b)| a == b));
            assert_eq!(mono.len(), stream.len());

            let mono =
                crate::join::distinct(&crate::ops::project(&rel, &[1, 2], 0, false).unwrap());
            let mut seg2 = segmented(&crate::ops::project(&rel, &[1, 2], 0, false).unwrap(), rows);
            let stream = seg2.distinct().unwrap();
            assert_eq!(mono.len(), stream.len());
            assert!(mono.iter().zip(stream.iter()).all(|(a, b)| a == b));

            assert_eq!(seg.group_count("c").unwrap(), crate::join::group_count(&rel, "c").unwrap());
            assert_eq!(
                seg.group_count_distinct("c", "a").unwrap(),
                crate::join::group_count_distinct(&rel, "c", "a").unwrap()
            );
        }
    }

    #[test]
    fn streaming_join_matches_monolithic_join() {
        let rel = sample(90);
        let mut right = Relation::new(
            Schema::builder()
                .key_attr("a", AttrType::Integer)
                .categorical_attr("label", AttrType::Text)
                .build()
                .unwrap(),
        );
        for i in 0..5 {
            right.push(vec![Value::Int(i), Value::Text(format!("g{i}"))]).unwrap();
        }
        let mono = crate::join::hash_join(&rel, &right, "a", "a").unwrap();
        let mut seg = segmented(&rel, 13);
        let stream = seg.hash_join(&right, "a", "a").unwrap();
        assert_eq!(mono.len(), stream.len());
        assert!(mono.iter().zip(stream.iter()).all(|(a, b)| a == b));
        assert!(seg.hash_join(&right, "nope", "a").is_err());
    }

    #[test]
    fn select_on_empty_segmented_relation_still_validates_attrs() {
        let mut seg = SegmentedRelation::builder(schema()).build();
        assert!(seg.select(&Predicate::eq("missing", 1)).is_err());
        assert_eq!(seg.select(&Predicate::True).unwrap().len(), 0);
    }

    #[test]
    fn file_store_backs_a_segmented_relation() {
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp-segment-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.spill");
        let rel = sample(200);
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(32)
            .budget_bytes(rel.resident_bytes() / 3)
            .store(Box::new(FileStore::create(&path).unwrap()))
            .from_relation(&rel)
            .unwrap();
        let back = seg.to_relation().unwrap();
        assert!(rel.iter().zip(back.iter()).all(|(a, b)| a == b));
        assert!(seg.spilled_bytes() > 0);
        let _ = std::fs::remove_file(&path);
    }
}
