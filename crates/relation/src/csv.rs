//! Minimal CSV import/export for relations.
//!
//! Supports the subset of CSV the examples and experiment harness need:
//! comma separation, double-quote quoting with `""` escapes, a header
//! row of attribute names, and LF/CRLF line endings. Implemented here
//! rather than via an external crate to stay within the approved
//! dependency set.

use std::io::{BufRead, Write};

use crate::{Relation, RelationError, Schema, Value};

/// Write `rel` as CSV with a header row.
///
/// # Errors
///
/// Propagates I/O errors as [`RelationError::Csv`].
pub fn write_csv(rel: &Relation, out: &mut impl Write) -> Result<(), RelationError> {
    let io = |e: std::io::Error| RelationError::Csv(e.to_string());
    let header: Vec<String> = rel.schema().attrs().iter().map(|a| escape(&a.name)).collect();
    writeln!(out, "{}", header.join(",")).map_err(io)?;
    for tuple in rel.iter() {
        let row: Vec<String> = tuple.values().iter().map(|v| escape(&v.to_string())).collect();
        writeln!(out, "{}", row.join(",")).map_err(io)?;
    }
    Ok(())
}

/// Read a relation from CSV produced by [`write_csv`] (or compatible),
/// validating the header against `schema` and parsing each field
/// according to its attribute type. Duplicate primary keys are
/// tolerated (suspect data need not satisfy constraints).
///
/// # Errors
///
/// [`RelationError::Csv`] on malformed input; type errors from value
/// parsing.
pub fn read_csv(schema: Schema, input: &mut impl BufRead) -> Result<Relation, RelationError> {
    let io = |e: std::io::Error| RelationError::Csv(e.to_string());
    let mut lines = input.lines();
    let header_line =
        lines.next().ok_or_else(|| RelationError::Csv("missing header row".into()))?.map_err(io)?;
    let header = parse_row(&header_line)?;
    let expected: Vec<&str> = schema.attrs().iter().map(|a| a.name.as_str()).collect();
    if header != expected {
        return Err(RelationError::Csv(format!(
            "header {header:?} does not match schema attributes {expected:?}"
        )));
    }
    let mut rel = Relation::new(schema);
    for (line_no, line) in lines.enumerate() {
        let line = line.map_err(io)?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_row(&line)?;
        if fields.len() != rel.schema().arity() {
            return Err(RelationError::Csv(format!(
                "row {}: {} fields, expected {}",
                line_no + 2,
                fields.len(),
                rel.schema().arity()
            )));
        }
        let values: Result<Vec<Value>, _> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| Value::parse(rel.schema().attr(i).ty, f))
            .collect();
        rel.push_unchecked_key(values?)?;
    }
    Ok(rel)
}

/// Infer a [`Schema`] from a CSV stream: the header row names the
/// attributes, and a column's type is sniffed from up to 100 sampled
/// rows (Integer when every sampled value parses as `i64`, Text
/// otherwise). The first column becomes the primary key; columns named
/// in `cat_attrs` are flagged categorical.
///
/// Inference consumes the stream — re-open (or re-borrow) the input
/// before handing it to [`read_csv`], or use [`read_csv_inferred`] for
/// in-memory text.
///
/// # Errors
///
/// [`RelationError::Csv`] on an empty stream or malformed header.
pub fn infer_schema(input: &mut impl BufRead, cat_attrs: &[&str]) -> Result<Schema, RelationError> {
    let io = |e: std::io::Error| RelationError::Csv(e.to_string());
    let mut lines = input.lines();
    let header =
        lines.next().ok_or_else(|| RelationError::Csv("empty input".into()))?.map_err(io)?;
    let names = parse_row(&header)?;
    if names.is_empty() || names.iter().any(String::is_empty) {
        return Err(RelationError::Csv(format!("malformed header {header:?}")));
    }
    let mut integral = vec![true; names.len()];
    for line in lines.take(100) {
        let line = line.map_err(io)?;
        if line.trim().is_empty() {
            continue;
        }
        for (i, field) in parse_row(&line)?.iter().enumerate() {
            if i < integral.len() && field.trim().parse::<i64>().is_err() {
                integral[i] = false;
            }
        }
    }
    let mut builder = Schema::builder();
    for (i, name) in names.iter().enumerate() {
        let ty = if integral[i] { crate::AttrType::Integer } else { crate::AttrType::Text };
        builder = if i == 0 {
            builder.key_attr(name, ty)
        } else if cat_attrs.contains(&name.as_str()) {
            builder.categorical_attr(name, ty)
        } else {
            builder.attr(name, ty)
        };
    }
    builder.build()
}

/// [`infer_schema`] + [`read_csv`] over in-memory text — the one-call
/// import for payloads that arrive as strings (the service protocol's
/// inline CSV).
///
/// # Errors
///
/// As [`infer_schema`] and [`read_csv`].
pub fn read_csv_inferred(text: &str, cat_attrs: &[&str]) -> Result<Relation, RelationError> {
    let schema = infer_schema(&mut text.as_bytes(), cat_attrs)?;
    read_csv(schema, &mut text.as_bytes())
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Split one CSV record into unescaped fields.
fn parse_row(line: &str) -> Result<Vec<String>, RelationError> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    current.push('"');
                }
                '"' => in_quotes = false,
                other => current.push(other),
            }
        } else {
            match c {
                '"' if current.is_empty() => in_quotes = true,
                '"' => return Err(RelationError::Csv(format!("stray quote in {line:?}"))),
                ',' => fields.push(std::mem::take(&mut current)),
                other => current.push(other),
            }
        }
    }
    if in_quotes {
        return Err(RelationError::Csv(format!("unterminated quote in {line:?}")));
    }
    fields.push(current);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;
    use std::io::BufReader;

    fn schema() -> Schema {
        Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("city", AttrType::Text)
            .build()
            .unwrap()
    }

    fn sample() -> Relation {
        let mut rel = Relation::new(schema());
        rel.push(vec![Value::Int(1), Value::Text("chicago".into())]).unwrap();
        rel.push(vec![Value::Int(2), Value::Text("san, jose".into())]).unwrap();
        rel.push(vec![Value::Int(3), Value::Text("o\"hare".into())]).unwrap();
        rel
    }

    #[test]
    fn round_trip_with_quoting() {
        let rel = sample();
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let parsed = read_csv(schema(), &mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed.len(), rel.len());
        for (a, b) in rel.iter().zip(parsed.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let data = b"x,y\n1,2\n";
        let err = read_csv(schema(), &mut BufReader::new(data.as_slice()));
        assert!(matches!(err, Err(RelationError::Csv(_))));
    }

    #[test]
    fn rejects_missing_header() {
        let data = b"";
        assert!(read_csv(schema(), &mut BufReader::new(data.as_slice())).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let data = b"k,city\n1\n";
        assert!(read_csv(schema(), &mut BufReader::new(data.as_slice())).is_err());
    }

    #[test]
    fn rejects_bad_types() {
        let data = b"k,city\nnot-a-number,chicago\n";
        assert!(read_csv(schema(), &mut BufReader::new(data.as_slice())).is_err());
    }

    #[test]
    fn skips_blank_lines_and_handles_crlf() {
        let data = b"k,city\r\n1,chicago\r\n\r\n2,boston\r\n";
        let rel = read_csv(schema(), &mut BufReader::new(data.as_slice())).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn tolerates_duplicate_keys() {
        let data = b"k,city\n1,chicago\n1,boston\n";
        let rel = read_csv(schema(), &mut BufReader::new(data.as_slice())).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.distinct_keys(), 1);
    }

    #[test]
    fn infer_schema_sniffs_types_and_roles() {
        let csv = "id,city,amount\n1,austin,10\n2,boston,20\n";
        let schema = infer_schema(&mut csv.as_bytes(), &["city"]).unwrap();
        assert_eq!(schema.key_attr().name, "id");
        assert_eq!(schema.attr(0).ty, AttrType::Integer);
        assert_eq!(schema.attr(1).ty, AttrType::Text);
        assert!(schema.attr(1).categorical);
        assert_eq!(schema.attr(2).ty, AttrType::Integer);
        assert!(!schema.attr(2).categorical);
        assert!(infer_schema(&mut "".as_bytes(), &["x"]).is_err());
        assert!(infer_schema(&mut "a,,c\n".as_bytes(), &["x"]).is_err());
    }

    #[test]
    fn read_csv_inferred_round_trips() {
        let rel = sample();
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = read_csv_inferred(&text, &["city"]).unwrap();
        assert_eq!(parsed.len(), rel.len());
        assert!(parsed.schema().attr(1).categorical);
        for (a, b) in rel.iter().zip(parsed.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parse_row_unescapes() {
        assert_eq!(parse_row("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(parse_row("\"a,b\",c").unwrap(), vec!["a,b", "c"]);
        assert_eq!(parse_row("\"a\"\"b\"").unwrap(), vec!["a\"b"]);
        assert_eq!(parse_row("").unwrap(), vec![""]);
        assert!(parse_row("\"open").is_err());
        assert!(parse_row("ab\"cd").is_err());
    }
}
