//! Columnar, dictionary-encoded attribute storage.
//!
//! The watermarking hot paths are per-tuple scans over one or two
//! attributes — exactly the access pattern a row store is worst at.
//! Each attribute is therefore stored as a typed [`Column`]: integer
//! attributes as a flat `Vec<i64>`, text attributes as `Vec<u32>`
//! codes into a per-column interned [`Dictionary`]. Scans become flat
//! slice walks, clones become a handful of `memcpy`s, and keyed
//! hashing of a text column can be memoized per *distinct* value.
//!
//! # Hashing invariant
//!
//! Codes are storage, not semantics: the canonical byte encoding fed
//! to `H(T_j(K), k)` is always derived from the *logical* value (the
//! dictionary entry for text, the `i64` for integers) exactly as
//! [`crate::Value::canonical_bytes`] defines it. Two relations with
//! equal logical content hash identically regardless of how their
//! dictionaries happen to be laid out.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{AttrType, Value};

/// Interned set of distinct strings backing one text column.
///
/// Codes are dense (`0..len`), assigned in first-interned order, and
/// never invalidated: entries are append-only, so a code handed out
/// once stays valid for the column's lifetime. A dictionary may hold
/// entries no longer referenced by any row (after in-place updates);
/// logical operations always consult the codes, never the dictionary
/// alone.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    /// Entries in code order; the index below shares these
    /// allocations (`Arc<str>`), so each distinct string is stored
    /// once.
    entries: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The string behind `code`.
    ///
    /// # Panics
    ///
    /// Panics when `code` was never issued by this dictionary.
    #[must_use]
    pub fn get(&self, code: u32) -> &str {
        &self.entries[code as usize]
    }

    /// The code of `s`, if already interned.
    #[must_use]
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Intern `s`, returning its (possibly fresh) code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = u32::try_from(self.entries.len()).expect("dictionaries hold < 2^32 entries");
        let entry: Arc<str> = Arc::from(s);
        self.entries.push(Arc::clone(&entry));
        self.index.insert(entry, code);
        code
    }

    /// All entries in code order.
    #[must_use]
    pub fn entries(&self) -> &[Arc<str>] {
        &self.entries
    }

    /// Approximate heap footprint: string bytes plus each `Arc`
    /// allocation's refcount header (entries and index share the
    /// allocation, so it is counted once), the entries vector's
    /// fat-pointer slots, and the index's `(Arc, code)` entries with
    /// ~1 byte of hash metadata per slot.
    pub(crate) fn resident_bytes(&self) -> usize {
        const ARC_HEADER: usize = 2 * std::mem::size_of::<usize>();
        let strings: usize = self.entries.iter().map(|s| s.len() + ARC_HEADER).sum();
        let index_entry = std::mem::size_of::<Arc<str>>() + std::mem::size_of::<u32>() + 1;
        strings
            + self.entries.capacity() * std::mem::size_of::<Arc<str>>()
            + self.index.capacity() * index_entry
    }
}

/// One attribute's storage: a typed vector of values.
#[derive(Debug, Clone)]
pub enum Column {
    /// Integer attribute: flat values.
    Int(Vec<i64>),
    /// Text attribute: per-row dictionary codes plus the dictionary.
    Text {
        /// Dictionary code of each row's value.
        codes: Vec<u32>,
        /// The interned distinct values.
        dict: Dictionary,
    },
}

impl Column {
    /// Empty column for an attribute of type `ty`.
    #[must_use]
    pub fn new(ty: AttrType) -> Column {
        Column::with_capacity(ty, 0)
    }

    /// Empty column with pre-allocated row capacity.
    #[must_use]
    pub fn with_capacity(ty: AttrType, capacity: usize) -> Column {
        match ty {
            AttrType::Integer => Column::Int(Vec::with_capacity(capacity)),
            AttrType::Text => {
                Column::Text { codes: Vec::with_capacity(capacity), dict: Dictionary::new() }
            }
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::Int(xs) => xs.len(),
            Column::Text { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's attribute type.
    #[must_use]
    pub fn ty(&self) -> AttrType {
        match self {
            Column::Int(_) => AttrType::Integer,
            Column::Text { .. } => AttrType::Text,
        }
    }

    /// Borrowed typed view.
    #[must_use]
    pub fn view(&self) -> ColumnView<'_> {
        match self {
            Column::Int(xs) => ColumnView::Int(xs),
            Column::Text { codes, dict } => ColumnView::Text { codes, dict },
        }
    }

    /// Append one value. The caller (the relation) has already
    /// type-checked against the schema.
    pub(crate) fn push_value(&mut self, value: &Value) {
        match (self, value) {
            (Column::Int(xs), Value::Int(v)) => xs.push(*v),
            (Column::Text { codes, dict }, Value::Text(s)) => {
                let code = dict.intern(s);
                codes.push(code);
            }
            _ => unreachable!("schema check admits only matching types"),
        }
    }

    /// Materialize the value at `row`.
    pub(crate) fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(xs) => Value::Int(xs[row]),
            Column::Text { codes, dict } => Value::Text(dict.get(codes[row]).to_owned()),
        }
    }

    /// Replace the value at `row`, returning the old value. Types were
    /// checked by the caller.
    pub(crate) fn set_value(&mut self, row: usize, value: Value) -> Value {
        match (self, value) {
            (Column::Int(xs), Value::Int(v)) => Value::Int(std::mem::replace(&mut xs[row], v)),
            (Column::Text { codes, dict }, Value::Text(s)) => {
                let code = dict.intern(&s);
                let old = std::mem::replace(&mut codes[row], code);
                Value::Text(dict.get(old).to_owned())
            }
            _ => unreachable!("schema check admits only matching types"),
        }
    }

    /// Remove the row at `row`, shifting later rows down.
    pub(crate) fn remove(&mut self, row: usize) {
        match self {
            Column::Int(xs) => {
                xs.remove(row);
            }
            Column::Text { codes, .. } => {
                codes.remove(row);
            }
        }
    }

    /// New column holding `rows` (by index, in order). Shares the
    /// dictionary contents (cloned wholesale — codes stay valid).
    #[must_use]
    pub(crate) fn gather(&self, rows: &[usize]) -> Column {
        match self {
            Column::Int(xs) => Column::Int(rows.iter().map(|&r| xs[r]).collect()),
            Column::Text { codes, dict } => {
                Column::Text { codes: rows.iter().map(|&r| codes[r]).collect(), dict: dict.clone() }
            }
        }
    }

    /// [`Column::gather`] over `u32` row ids — the selection-vector
    /// form the query engine produces.
    #[must_use]
    pub(crate) fn gather_u32(&self, rows: &[u32]) -> Column {
        self.view().gather_u32(rows)
    }

    /// Keep only rows whose `keep` flag is set.
    pub(crate) fn retain_rows(&mut self, keep: &[bool]) {
        match self {
            Column::Int(xs) => {
                let mut i = 0;
                xs.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            }
            Column::Text { codes, .. } => {
                let mut i = 0;
                codes.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            }
        }
    }

    /// Append all of `other`'s rows (same attribute type), remapping
    /// text codes through this column's dictionary.
    pub(crate) fn append(&mut self, other: &Column) {
        match (self, other) {
            (Column::Int(xs), Column::Int(ys)) => xs.extend_from_slice(ys),
            (Column::Text { codes, dict }, Column::Text { codes: ocodes, dict: odict }) => {
                let remap: Vec<u32> = odict.entries().iter().map(|s| dict.intern(s)).collect();
                codes.extend(ocodes.iter().map(|&c| remap[c as usize]));
            }
            _ => unreachable!("schemas were checked equal before appending"),
        }
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub(crate) fn resident_bytes(&self) -> usize {
        match self {
            Column::Int(xs) => xs.capacity() * std::mem::size_of::<i64>(),
            Column::Text { codes, dict } => {
                codes.capacity() * std::mem::size_of::<u32>() + dict.resident_bytes()
            }
        }
    }
}

/// Borrowed, typed view of one column — the zero-copy replacement for
/// the historical `Relation::column(&self) -> Vec<&Value>`.
#[derive(Debug, Clone, Copy)]
pub enum ColumnView<'a> {
    /// Integer attribute: the raw values.
    Int(&'a [i64]),
    /// Text attribute: per-row codes plus the dictionary resolving
    /// them.
    Text {
        /// Dictionary code of each row's value.
        codes: &'a [u32],
        /// The interned distinct values.
        dict: &'a Dictionary,
    },
}

impl<'a> ColumnView<'a> {
    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ColumnView::Int(xs) => xs.len(),
            ColumnView::Text { codes, .. } => codes.len(),
        }
    }

    /// Whether the view has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the value at `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    #[must_use]
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnView::Int(xs) => Value::Int(xs[row]),
            ColumnView::Text { codes, dict } => Value::Text(dict.get(codes[row]).to_owned()),
        }
    }

    /// Materializing iterator over the rows in order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + 'a {
        let view = *self;
        (0..view.len()).map(move |row| view.value(row))
    }

    /// The raw integer slice, when this is an integer column.
    #[must_use]
    pub fn as_int(&self) -> Option<&'a [i64]> {
        match self {
            ColumnView::Int(xs) => Some(xs),
            ColumnView::Text { .. } => None,
        }
    }

    /// The codes and dictionary, when this is a text column.
    #[must_use]
    pub fn as_text(&self) -> Option<(&'a [u32], &'a Dictionary)> {
        match self {
            ColumnView::Int(_) => None,
            ColumnView::Text { codes, dict } => Some((codes, dict)),
        }
    }

    /// Deep-copy into an owned [`Column`] — the bulk column-carry
    /// primitive behind projections and single-column rewrites.
    #[must_use]
    pub fn to_column(&self) -> Column {
        match self {
            ColumnView::Int(xs) => Column::Int(xs.to_vec()),
            ColumnView::Text { codes, dict } => {
                Column::Text { codes: codes.to_vec(), dict: (*dict).clone() }
            }
        }
    }

    /// Gather `rows` (by id, in order) into an owned [`Column`]. Text
    /// columns carry their dictionary over wholesale — codes stay
    /// valid, nothing is re-interned — which is what lets the
    /// code-space join assemble its output by column copies.
    #[must_use]
    pub fn gather_u32(&self, rows: &[u32]) -> Column {
        match self {
            ColumnView::Int(xs) => Column::Int(rows.iter().map(|&r| xs[r as usize]).collect()),
            ColumnView::Text { codes, dict } => Column::Text {
                codes: rows.iter().map(|&r| codes[r as usize]).collect(),
                dict: (*dict).clone(),
            },
        }
    }
}

/// Logical equality: same type, same row values (text compared by
/// string, independent of dictionary layout).
impl PartialEq for ColumnView<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ColumnView::Int(a), ColumnView::Int(b)) => a == b,
            (
                ColumnView::Text { codes: ac, dict: ad },
                ColumnView::Text { codes: bc, dict: bd },
            ) => {
                ac.len() == bc.len()
                    && ac.iter().zip(bc.iter()).all(|(&x, &y)| ad.get(x) == bd.get(y))
            }
            _ => false,
        }
    }
}

/// Mutable typed access to a non-key column, for operators that
/// rewrite values in bulk (embedding, alteration attacks).
#[derive(Debug)]
pub enum ColumnMut<'a> {
    /// Integer attribute: the raw values, writable in place.
    Int(&'a mut [i64]),
    /// Text attribute: writable codes plus the (growable) dictionary.
    Text(TextColumnMut<'a>),
}

/// Mutable view of a text column: set per-row codes, intern new
/// values.
#[derive(Debug)]
pub struct TextColumnMut<'a> {
    pub(crate) codes: &'a mut [u32],
    pub(crate) dict: &'a mut Dictionary,
}

impl TextColumnMut<'_> {
    /// The dictionary resolving this column's codes.
    #[must_use]
    pub fn dict(&self) -> &Dictionary {
        self.dict
    }

    /// The per-row codes.
    #[must_use]
    pub fn codes(&self) -> &[u32] {
        self.codes
    }

    /// The code at `row`.
    #[must_use]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// Intern `s` into the column's dictionary.
    pub fn intern(&mut self, s: &str) -> u32 {
        self.dict.intern(s)
    }

    /// Point `row` at `code`.
    ///
    /// # Panics
    ///
    /// Panics when `code` was never issued by this column's dictionary.
    pub fn set(&mut self, row: usize, code: u32) {
        assert!((code as usize) < self.dict.len(), "code {code} not in dictionary");
        self.codes[row] = code;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interns_once() {
        let mut d = Dictionary::new();
        let a = d.intern("boston");
        let b = d.intern("austin");
        assert_eq!(d.intern("boston"), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(a), "boston");
        assert_eq!(d.code_of("austin"), Some(b));
        assert_eq!(d.code_of("paris"), None);
    }

    #[test]
    fn column_push_value_roundtrips() {
        let mut c = Column::new(AttrType::Text);
        for s in ["x", "y", "x"] {
            c.push_value(&Value::Text(s.into()));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Text("x".into()));
        assert_eq!(c.value(2), Value::Text("x".into()));
        let (codes, _) = c.view().as_text().unwrap();
        assert_eq!(codes[0], codes[2]);
        assert_ne!(codes[0], codes[1]);
    }

    #[test]
    fn gather_and_retain() {
        let mut c = Column::new(AttrType::Integer);
        for i in 0..5 {
            c.push_value(&Value::Int(i));
        }
        let g = c.gather(&[4, 0, 2]);
        assert_eq!(g.view().as_int().unwrap(), &[4, 0, 2]);
        c.retain_rows(&[true, false, true, false, true]);
        assert_eq!(c.view().as_int().unwrap(), &[0, 2, 4]);
    }

    #[test]
    fn append_remaps_dictionary_codes() {
        let mut a = Column::new(AttrType::Text);
        a.push_value(&Value::Text("x".into()));
        let mut b = Column::new(AttrType::Text);
        b.push_value(&Value::Text("y".into()));
        b.push_value(&Value::Text("x".into()));
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.value(1), Value::Text("y".into()));
        assert_eq!(a.value(2), Value::Text("x".into()));
    }

    #[test]
    fn view_equality_is_logical_not_representational() {
        // Same logical content, different interning orders.
        let mut a = Column::new(AttrType::Text);
        let mut b = Column::new(AttrType::Text);
        for s in ["m", "n"] {
            a.push_value(&Value::Text(s.into()));
        }
        let mut pre = Column::new(AttrType::Text);
        pre.push_value(&Value::Text("n".into()));
        b.push_value(&Value::Text("m".into()));
        b.push_value(&Value::Text("n".into()));
        assert!(a.view() == b.view());
        assert!(a.view() != pre.view());
        let ints = Column::Int(vec![1, 2]);
        assert!(a.view() != ints.view());
    }
}
