//! Occurrence-frequency statistics over categorical attributes.
//!
//! Section 4.2 treats the attribute's "value occurrence frequency
//! distribution `[f_A(a_i)]`" as an embedding channel of its own, and
//! Section 4.5 uses frequency matching to invert bijective remapping
//! attacks. [`FrequencyHistogram`] is the shared representation: counts
//! per domain value with normalized frequencies, plus the distance and
//! entropy measures those algorithms (and the quality constraints of
//! Section 4.1) need.

use crate::{CategoricalDomain, Relation, RelationError, Value};

/// Per-value occurrence counts of one categorical attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyHistogram {
    domain: CategoricalDomain,
    counts: Vec<u64>,
    total: u64,
}

impl FrequencyHistogram {
    /// Histogram of attribute `attr_idx` of `rel` over `domain`.
    ///
    /// # Errors
    ///
    /// [`RelationError::ValueNotInDomain`] when the column contains a
    /// value outside `domain` (e.g. remapped data).
    pub fn from_relation(
        rel: &Relation,
        attr_idx: usize,
        domain: &CategoricalDomain,
    ) -> Result<Self, RelationError> {
        let mut counts = vec![0u64; domain.len()];
        match rel.column(attr_idx) {
            crate::ColumnView::Int(xs) => {
                // Count per distinct integer first: one domain lookup
                // per distinct value instead of one per row.
                let mut per_value: std::collections::HashMap<i64, u64> =
                    std::collections::HashMap::new();
                for &x in xs {
                    *per_value.entry(x).or_insert(0) += 1;
                }
                for (x, n) in per_value {
                    counts[domain.index_of(&Value::Int(x))?] += n;
                }
            }
            crate::ColumnView::Text { codes, dict } => {
                // Count per dictionary code, then fold through the
                // per-distinct translation table: one string lookup
                // per distinct value instead of one per row.
                let mut per_code = vec![0u64; dict.len()];
                for &c in codes {
                    per_code[c as usize] += 1;
                }
                let table = domain.dict_codes(dict);
                for (c, &n) in per_code.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let Some(t) = table[c] else {
                        return Err(RelationError::ValueNotInDomain(Value::Text(
                            dict.get(c as u32).to_owned(),
                        )));
                    };
                    counts[t as usize] += n;
                }
            }
        }
        let total = counts.iter().sum();
        Ok(FrequencyHistogram { domain: domain.clone(), counts, total })
    }

    /// Histogram from raw counts (for synthetic distributions).
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when `counts` does not match
    /// the domain size.
    pub fn from_counts(
        domain: &CategoricalDomain,
        counts: Vec<u64>,
    ) -> Result<Self, RelationError> {
        if counts.len() != domain.len() {
            return Err(RelationError::InvalidSchema(format!(
                "{} counts for a domain of {} values",
                counts.len(),
                domain.len()
            )));
        }
        let total = counts.iter().sum();
        Ok(FrequencyHistogram { domain: domain.clone(), counts, total })
    }

    /// The underlying domain.
    #[must_use]
    pub fn domain(&self) -> &CategoricalDomain {
        &self.domain
    }

    /// Occurrence count of domain index `t`.
    #[must_use]
    pub fn count(&self, t: usize) -> u64 {
        self.counts[t]
    }

    /// All counts in domain order.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized frequency `f_A(a_t)` of domain index `t`.
    #[must_use]
    pub fn frequency(&self, t: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[t] as f64 / self.total as f64
        }
    }

    /// All normalized frequencies in domain order.
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|t| self.frequency(t)).collect()
    }

    /// Normalized frequency of a value.
    ///
    /// # Errors
    ///
    /// [`RelationError::ValueNotInDomain`] for foreign values.
    pub fn frequency_of(&self, value: &Value) -> Result<f64, RelationError> {
        Ok(self.frequency(self.domain.index_of(value)?))
    }

    /// L1 (total-variation ×2) distance between two histograms over the
    /// same domain size. Used by quality constraints to bound frequency
    /// drift introduced by watermarking.
    ///
    /// # Panics
    ///
    /// Panics when domain sizes differ (comparing histograms of
    /// different attributes is a programming error).
    #[must_use]
    pub fn l1_distance(&self, other: &FrequencyHistogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len(), "histograms must share a domain size");
        (0..self.counts.len()).map(|t| (self.frequency(t) - other.frequency(t)).abs()).sum()
    }

    /// Shannon entropy of the distribution in bits.
    ///
    /// The paper's bandwidth discussion: direct-domain embedding yields
    /// only `log2(nA)` bits, and uniform distributions defeat
    /// frequency-based channels; entropy quantifies both.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        (0..self.counts.len())
            .map(|t| self.frequency(t))
            .filter(|&f| f > 0.0)
            .map(|f| -f * f.log2())
            .sum()
    }

    /// Domain indices sorted by descending frequency, ties broken by
    /// index. The remap-recovery algorithm of Section 4.5 matches
    /// suspect and reference histograms through this ranking.
    #[must_use]
    pub fn rank_by_frequency(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.counts.len()).collect();
        order.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema};

    fn fixture() -> (Relation, CategoricalDomain) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Text)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        let values = ["x", "x", "x", "y", "y", "z"];
        for (i, v) in values.iter().enumerate() {
            rel.push(vec![Value::Int(i as i64), Value::Text((*v).into())]).unwrap();
        }
        let domain = CategoricalDomain::from_column(&rel, 1).unwrap();
        (rel, domain)
    }

    #[test]
    fn counts_and_frequencies() {
        let (rel, domain) = fixture();
        let h = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        assert_eq!(h.total(), 6);
        assert_eq!(h.frequency_of(&Value::Text("x".into())).unwrap(), 0.5);
        assert_eq!(h.frequency_of(&Value::Text("y".into())).unwrap(), 1.0 / 3.0);
        assert_eq!(h.frequency_of(&Value::Text("z".into())).unwrap(), 1.0 / 6.0);
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn foreign_value_in_column_errors() {
        let (rel, _) = fixture();
        let small =
            CategoricalDomain::new(vec![Value::Text("x".into()), Value::Text("y".into())]).unwrap();
        assert!(FrequencyHistogram::from_relation(&rel, 1, &small).is_err());
    }

    #[test]
    fn from_counts_validates_arity() {
        let (_, domain) = fixture();
        assert!(FrequencyHistogram::from_counts(&domain, vec![1, 2]).is_err());
        let h = FrequencyHistogram::from_counts(&domain, vec![1, 2, 3]).unwrap();
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn l1_distance_is_zero_on_self_and_symmetric() {
        let (rel, domain) = fixture();
        let h = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        assert_eq!(h.l1_distance(&h), 0.0);
        let g = FrequencyHistogram::from_counts(&domain, vec![6, 0, 0]).unwrap();
        assert!((h.l1_distance(&g) - g.l1_distance(&h)).abs() < 1e-12);
        // TV distance between (1/2,1/3,1/6) and (1,0,0) is 1/2+1/3+1/6 = 1.
        assert!((h.l1_distance(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_extremes() {
        let (_, domain) = fixture();
        let uniform = FrequencyHistogram::from_counts(&domain, vec![2, 2, 2]).unwrap();
        assert!((uniform.entropy_bits() - 3f64.log2()).abs() < 1e-12);
        let degenerate = FrequencyHistogram::from_counts(&domain, vec![6, 0, 0]).unwrap();
        assert_eq!(degenerate.entropy_bits(), 0.0);
    }

    #[test]
    fn empty_histogram_has_zero_frequencies() {
        let (_, domain) = fixture();
        let h = FrequencyHistogram::from_counts(&domain, vec![0, 0, 0]).unwrap();
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.entropy_bits(), 0.0);
    }

    #[test]
    fn rank_by_frequency_orders_descending() {
        let (rel, domain) = fixture();
        let h = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        // x (idx 0) is most frequent, then y (1), then z (2).
        assert_eq!(h.rank_by_frequency(), vec![0, 1, 2]);
        let g = FrequencyHistogram::from_counts(&domain, vec![1, 5, 5]).unwrap();
        // Tie between idx 1 and 2 broken by index.
        assert_eq!(g.rank_by_frequency(), vec![1, 2, 0]);
    }
}
