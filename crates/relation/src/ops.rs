//! Relational operators: selection, projection, sampling, sorting,
//! shuffling and union.
//!
//! These are the building blocks for both legitimate data use and the
//! adversary model of Section 2.3 — horizontal partitioning (A1) is a
//! row sample, vertical partitioning (A5) is a projection, re-sorting
//! (A4) is a sort or shuffle, subset addition (A2) is a union.
//!
//! All stochastic operators take an explicit seed and use a local
//! SplitMix64 generator, keeping every experiment reproducible without
//! pulling an RNG dependency into the substrate.

use crate::{Predicate, Relation, RelationError};

/// Minimal deterministic PRNG (SplitMix64, public-domain algorithm).
///
/// Statistical quality is more than sufficient for sampling and
/// shuffling; it is *not* a cryptographic generator and is never used
/// for key material.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is negligible for the bounds used here (≤ 2^32).
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Keep each row independently with probability `keep_fraction`
/// (Bernoulli sampling) — the "randomly select and use a subset" of
/// attack A1 and of the paper's own experimental setup.
///
/// # Panics
///
/// Panics when `keep_fraction` is outside `[0, 1]`.
#[must_use]
pub fn sample_bernoulli(rel: &Relation, keep_fraction: f64, seed: u64) -> Relation {
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep_fraction must be within [0,1], got {keep_fraction}"
    );
    let mut rng = SplitMix64::new(seed);
    let rows: Vec<usize> = (0..rel.len()).filter(|_| rng.unit() < keep_fraction).collect();
    rel.gather(&rows)
}

/// Keep exactly `count` rows chosen uniformly without replacement
/// (reservoir-free: permute indices and truncate).
#[must_use]
pub fn sample_exact(rel: &Relation, count: usize, seed: u64) -> Relation {
    let count = count.min(rel.len());
    let mut indices: Vec<usize> = (0..rel.len()).collect();
    let mut rng = SplitMix64::new(seed);
    // Partial Fisher–Yates: the first `count` positions are a uniform
    // sample after `count` swap steps.
    for i in 0..count {
        let j = i + rng.below((rel.len() - i) as u64) as usize;
        indices.swap(i, j);
    }
    indices.truncate(count);
    indices.sort_unstable(); // preserve original row order
    rel.gather(&indices)
}

/// Rows satisfying `predicate`, evaluated through the column-native
/// query engine: the predicate is compiled once (names → column
/// indices, text literals → dictionary codes), evaluated vectorized
/// over the column slices, and the surviving rows are gathered by
/// flat column copies — no per-row tuple is ever materialized.
///
/// # Errors
///
/// [`RelationError::UnknownAttr`] when the predicate references an
/// attribute `rel` does not have (reported at compile time, so an
/// unknown attribute errors even on an empty relation).
pub fn select(rel: &Relation, predicate: &Predicate) -> Result<Relation, RelationError> {
    let compiled = crate::CompiledPredicate::compile(predicate, rel)?;
    let rows = compiled.select(rel).expect("freshly compiled predicate matches its relation");
    Ok(rel.gather_u32(&rows))
}

/// Vertical partition: project onto `indices`, with `indices[new_key]`
/// acting as the projected relation's primary key.
///
/// Columns are carried over wholesale (no per-row work). When the new
/// key is not unique in the projection, duplicate-keyed rows are
/// retained (`first occurrence` indexing) unless
/// `drop_duplicate_keys` is set, which models the paper's observation
/// that a partition whose remaining attribute "can act as a primary
/// key … results in no duplicates-related data loss" — and conversely
/// that other partitions do lose duplicate rows.
///
/// # Errors
///
/// Invalid projections (empty, repeated or out-of-range indices).
pub fn project(
    rel: &Relation,
    indices: &[usize],
    new_key: usize,
    drop_duplicate_keys: bool,
) -> Result<Relation, RelationError> {
    let schema = rel.schema().project(indices, new_key)?;
    let columns: Vec<crate::Column> = indices.iter().map(|&i| rel.column(i).to_column()).collect();
    let projected = Relation::from_columns(schema, columns)?;
    if !drop_duplicate_keys {
        return Ok(projected);
    }
    // Keep each key's first occurrence only (what repeated `push()`
    // historically produced).
    let rows: Vec<usize> = (0..projected.len())
        .filter(|&row| {
            let key = projected.value(row, projected.schema().key_index()).expect("row in range");
            projected.find_by_key(&key) == Some(row)
        })
        .collect();
    Ok(projected.gather(&rows))
}

/// Sort rows by attribute `attr_idx` (ascending when `ascending`),
/// stably, via an index sort over the column.
#[must_use]
pub fn sort_by_attr(rel: &Relation, attr_idx: usize, ascending: bool) -> Relation {
    let mut order: Vec<usize> = (0..rel.len()).collect();
    match rel.column(attr_idx) {
        crate::ColumnView::Int(xs) => order.sort_by(|&a, &b| {
            let ord = xs[a].cmp(&xs[b]);
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        }),
        crate::ColumnView::Text { codes, dict } => order.sort_by(|&a, &b| {
            let ord = dict.get(codes[a]).cmp(dict.get(codes[b]));
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        }),
    }
    rel.gather(&order)
}

/// Uniformly permute rows (attack A4's re-shuffling).
#[must_use]
pub fn shuffle(rel: &Relation, seed: u64) -> Relation {
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<usize> = (0..rel.len()).collect();
    // Fisher–Yates (the same swap sequence the row store applied to
    // its tuple vector, so per-seed outputs are unchanged).
    for i in (1..order.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        order.swap(i, j);
    }
    rel.gather(&order)
}

/// Concatenate `b`'s rows after `a`'s (attack A2's subset addition).
/// Key duplicates across the two inputs are tolerated.
///
/// # Errors
///
/// [`RelationError::InvalidSchema`] when schemas differ.
pub fn union(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    if a.schema() != b.schema() {
        return Err(RelationError::InvalidSchema("union requires identical schemas".into()));
    }
    let mut out = a.clone();
    out.append(b)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema, Value};

    fn sample_relation(n: i64) -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::with_capacity(schema, n as usize);
        for i in 0..n {
            rel.push(vec![Value::Int(i), Value::Int(i % 7)]).unwrap();
        }
        rel
    }

    #[test]
    fn bernoulli_sample_hits_expected_fraction() {
        let rel = sample_relation(10_000);
        let kept = sample_bernoulli(&rel, 0.3, 42);
        let frac = kept.len() as f64 / rel.len() as f64;
        assert!((0.27..0.33).contains(&frac), "frac={frac}");
    }

    #[test]
    fn bernoulli_edge_fractions() {
        let rel = sample_relation(100);
        assert_eq!(sample_bernoulli(&rel, 0.0, 1).len(), 0);
        assert_eq!(sample_bernoulli(&rel, 1.0, 1).len(), 100);
    }

    #[test]
    fn bernoulli_is_seed_deterministic() {
        let rel = sample_relation(500);
        let a = sample_bernoulli(&rel, 0.5, 7);
        let b = sample_bernoulli(&rel, 0.5, 7);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn exact_sample_has_exact_size_and_no_duplicates() {
        let rel = sample_relation(100);
        let kept = sample_exact(&rel, 37, 3);
        assert_eq!(kept.len(), 37);
        assert_eq!(kept.distinct_keys(), 37);
    }

    #[test]
    fn exact_sample_caps_at_relation_size() {
        let rel = sample_relation(10);
        assert_eq!(sample_exact(&rel, 99, 3).len(), 10);
    }

    #[test]
    fn shuffle_permutes_but_preserves_multiset() {
        let rel = sample_relation(200);
        let shuffled = shuffle(&rel, 11);
        assert_eq!(shuffled.len(), rel.len());
        let mut orig: Vec<i64> = rel.column_iter(0).map(|v| v.as_int().unwrap()).collect();
        let mut perm: Vec<i64> = shuffled.column_iter(0).map(|v| v.as_int().unwrap()).collect();
        assert_ne!(orig, perm, "shuffle should change order");
        orig.sort_unstable();
        perm.sort_unstable();
        assert_eq!(orig, perm);
    }

    #[test]
    fn shuffle_rebuilds_index() {
        let rel = sample_relation(50);
        let shuffled = shuffle(&rel, 5);
        for key in 0..50 {
            let row = shuffled.find_by_key(&Value::Int(key)).unwrap();
            assert_eq!(shuffled.tuple(row).unwrap().get(0), &Value::Int(key));
        }
    }

    #[test]
    fn sort_orders_rows() {
        let rel = shuffle(&sample_relation(50), 9);
        let sorted = sort_by_attr(&rel, 0, true);
        let keys: Vec<i64> = sorted.column_iter(0).map(|v| v.as_int().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let desc = sort_by_attr(&rel, 0, false);
        let keys: Vec<i64> = desc.column_iter(0).map(|v| v.as_int().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn project_drops_and_rekeys() {
        let rel = sample_relation(20);
        // Project onto (a) alone, keyed by a; with dedup only 7 rows
        // survive (a has 7 distinct values).
        let p = project(&rel, &[1], 0, true).unwrap();
        assert_eq!(p.len(), 7);
        let p = project(&rel, &[1], 0, false).unwrap();
        assert_eq!(p.len(), 20);
        assert_eq!(p.distinct_keys(), 7);
    }

    #[test]
    fn union_concatenates() {
        let a = sample_relation(10);
        let b = sample_relation(5);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 15);
        // Keys 0..5 duplicated; first occurrence (from `a`) wins.
        assert_eq!(u.distinct_keys(), 10);
    }

    #[test]
    fn union_requires_same_schema() {
        let a = sample_relation(3);
        let other = Schema::builder()
            .key_attr("x", AttrType::Text)
            .categorical_attr("y", AttrType::Text)
            .build()
            .unwrap();
        let b = Relation::new(other);
        assert!(union(&a, &b).is_err());
    }

    #[test]
    fn select_filters_rows() {
        let rel = sample_relation(30);
        let pred = Predicate::eq("a", Value::Int(3));
        let out = select(&rel, &pred).unwrap();
        assert!(!out.is_empty());
        assert!(out.column_iter(1).all(|v| v == Value::Int(3)));
    }

    #[test]
    fn splitmix_unit_is_in_range_and_varied() {
        let mut rng = SplitMix64::new(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.unit()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }
}
