//! Column-native query engine: compiled predicates and vectorized
//! selection.
//!
//! Section 4.1 puts query evaluation *inside* the embedding loop:
//! every candidate mark is re-checked against the declared quality
//! properties, so predicate and aggregate evaluation is a hot path,
//! not an offline convenience. The interpreted [`Predicate`] walks a
//! materialized row [`crate::Tuple`] per row — one heap `Value` per
//! attribute per row — which is exactly the access pattern the
//! columnar storage engine exists to avoid.
//!
//! [`CompiledPredicate`] is the column-native form. Compilation runs
//! once per (predicate, relation) pair and does all the name and
//! string work up front:
//!
//! * attribute names resolve to column indices exactly once;
//! * comparisons against an integer column become typed `i64`
//!   compares over the flat value slice;
//! * every leaf over a text column — equality, ordering, IN-lists —
//!   collapses into a per-dictionary-code truth table, so evaluation
//!   is a single indexed load per row regardless of string length;
//! * `IN`-lists over integers are sorted and deduplicated for binary
//!   search (the interpreted path's linear scan degrades on large
//!   lists);
//! * type-mismatched leaves (an integer literal against a text
//!   column) constant-fold to `true`/`false` under the total
//!   [`Value`] order.
//!
//! Evaluation is vectorized: leaves fill a word-packed [`RowMask`]
//! 64 rows at a time, boolean connectives combine masks wordwise, and
//! the surviving row ids land in a reusable [`SelectionVector`] that
//! [`Relation::gather_u32`] turns into an output relation by flat
//! column copies. No tuple is ever materialized.
//!
//! # Segment-at-a-time evaluation
//!
//! Because a compiled predicate is bound to one dictionary layout,
//! the out-of-core path compiles per segment: each segment of a
//! [`crate::SegmentedRelation`] is a complete relation chunk with
//! segment-local dictionaries, so
//! [`crate::SegmentedRelation::select`] compiles against the segment
//! (truth tables are O(local dictionary), built once per segment, not
//! per row), evaluates its [`RowMask`] vectorized, and reuses one
//! [`SelectionVector`] across all segments. Output gathered per
//! segment concatenates to exactly what a whole-relation evaluation
//! selects — pinned by the segment-boundary property tests.
//!
//! # Binding contract
//!
//! A compiled predicate is bound to the relation it was compiled
//! against: text truth tables are indexed by that relation's
//! dictionary codes. Evaluation re-checks the binding (column types,
//! plus a content fingerprint of every referenced dictionary —
//! O(dictionary entries), not O(rows)) and errors when the relation
//! has drifted — a relation mutated after compilation (new values
//! interned) or a different relation altogether must be re-compiled.
//!
//! ```
//! use catmark_relation::{AttrType, CompiledPredicate, Predicate, Relation, Schema, Value};
//!
//! let schema = Schema::builder()
//!     .key_attr("k", AttrType::Integer)
//!     .categorical_attr("city", AttrType::Text)
//!     .build()
//!     .unwrap();
//! let mut rel = Relation::new(schema);
//! for (k, city) in [(1, "boston"), (2, "austin"), (3, "boston")] {
//!     rel.push(vec![Value::Int(k), Value::Text(city.into())]).unwrap();
//! }
//! let pred = Predicate::eq("city", "boston").and(Predicate::Gt("k".into(), Value::Int(1)));
//! let compiled = CompiledPredicate::compile(&pred, &rel).unwrap();
//! assert_eq!(compiled.select(&rel).unwrap(), vec![2]);
//! ```

use std::collections::HashSet;

use crate::{ColumnView, Predicate, Relation, RelationError, Value};

/// Reusable buffer of selected row ids (ascending), the query
/// engine's working set between a predicate evaluation and the
/// [`Relation::gather_u32`] that materializes the output. Reusing one
/// vector across evaluations keeps steady-state selection
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SelectionVector {
    rows: Vec<u32>,
}

impl SelectionVector {
    /// Empty selection.
    #[must_use]
    pub fn new() -> Self {
        SelectionVector::default()
    }

    /// Selected row ids in ascending order.
    #[must_use]
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of selected rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no row is selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drop all selected rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

/// Word-packed per-row boolean mask — the intermediate representation
/// predicates evaluate into. Bit `r` of word `r / 64` is row `r`'s
/// verdict; connectives combine masks 64 rows per instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    words: Vec<u64>,
    len: usize,
}

impl RowMask {
    /// Mask of `len` rows, every row set to `value`.
    #[must_use]
    pub fn filled(len: usize, value: bool) -> Self {
        let fill = if value { u64::MAX } else { 0 };
        let mut mask = RowMask { words: vec![fill; len.div_ceil(64)], len };
        if value {
            mask.trim_tail();
        }
        mask
    }

    /// Number of rows covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `row`'s bit.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    #[must_use]
    pub fn get(&self, row: usize) -> bool {
        assert!(row < self.len, "row {row} out of mask range {}", self.len);
        self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Number of set rows.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Wordwise conjunction with `other` (equal lengths).
    pub fn and(&mut self, other: &RowMask) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Wordwise disjunction with `other` (equal lengths).
    pub fn or(&mut self, other: &RowMask) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Wordwise negation (tail bits beyond `len` stay clear).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim_tail();
    }

    /// Append the set rows (ascending) to `out`.
    pub fn push_rows_into(&self, out: &mut SelectionVector) {
        for (i, &word) in self.words.iter().enumerate() {
            let mut w = word;
            let base = (i * 64) as u32;
            while w != 0 {
                out.rows.push(base + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }

    /// Clear any bits beyond `len` in the last word.
    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Comparison operator of a compiled integer leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn eval<T: Ord>(self, lhs: &T, rhs: &T) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The verdict when the left side is an integer column value and
    /// the right side a text literal: under the total [`Value`] order
    /// every integer sorts before every text, so the leaf is constant.
    fn int_vs_text(self) -> bool {
        match self {
            CmpOp::Eq | CmpOp::Gt | CmpOp::Ge => false,
            CmpOp::Ne | CmpOp::Lt | CmpOp::Le => true,
        }
    }

    /// The mirror case: a text column value against an integer
    /// literal.
    fn text_vs_int(self) -> bool {
        match self {
            CmpOp::Eq | CmpOp::Lt | CmpOp::Le => false,
            CmpOp::Ne | CmpOp::Gt | CmpOp::Ge => true,
        }
    }
}

/// One node of the compiled predicate tree.
#[derive(Debug, Clone)]
enum Node {
    /// Constant verdict (folded type mismatches, `Predicate::True`,
    /// empty IN-lists).
    Const(bool),
    /// Typed compare over an integer column's flat slice.
    IntCmp { col: usize, op: CmpOp, rhs: i64 },
    /// Sorted-set membership over an integer column (binary search).
    IntIn { col: usize, set: Vec<i64> },
    /// Per-dictionary-code truth table over a text column: position
    /// `c` answers for every row whose code is `c`.
    CodeTable { col: usize, table: Box<[bool]> },
    /// Conjunction.
    And(Box<Node>, Box<Node>),
    /// Disjunction.
    Or(Box<Node>, Box<Node>),
    /// Negation.
    Not(Box<Node>),
}

/// A [`Predicate`] compiled against one relation's schema and
/// dictionary layout — see the [module docs](self) for the
/// compilation model and binding contract.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    node: Node,
    /// Arity of the schema compiled against, for a cheap re-binding
    /// sanity check.
    arity: usize,
    /// Per referenced text column: the fingerprint of the dictionary
    /// its truth tables were compiled over.
    text_bindings: Vec<(usize, u64)>,
}

impl CompiledPredicate {
    /// Compile `pred` against `rel`: resolve attribute names, intern
    /// text literals into dictionary-code truth tables, fold type
    /// mismatches.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`] when the predicate references an
    /// attribute `rel` does not have.
    pub fn compile(pred: &Predicate, rel: &Relation) -> Result<Self, RelationError> {
        let node = compile_node(pred, rel)?;
        let mut text_bindings = Vec::new();
        collect_text_bindings(&node, rel, &mut text_bindings);
        Ok(CompiledPredicate { node, arity: rel.schema().arity(), text_bindings })
    }

    /// Evaluate over every row of `rel` into a fresh [`RowMask`].
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when `rel` does not match the
    /// relation this predicate was compiled against (different arity,
    /// column types, or a dictionary that grew since compilation).
    pub fn eval_mask(&self, rel: &Relation) -> Result<RowMask, RelationError> {
        self.check_binding(rel)?;
        Ok(eval_node(&self.node, rel))
    }

    /// Evaluate and append the satisfying row ids to `out` (which is
    /// cleared first). The buffer is reusable across evaluations.
    ///
    /// # Errors
    ///
    /// As [`CompiledPredicate::eval_mask`].
    pub fn select_into(
        &self,
        rel: &Relation,
        out: &mut SelectionVector,
    ) -> Result<(), RelationError> {
        out.clear();
        let mask = self.eval_mask(rel)?;
        out.rows.reserve(mask.count_ones());
        mask.push_rows_into(out);
        Ok(())
    }

    /// Evaluate into a fresh row-id vector.
    ///
    /// # Errors
    ///
    /// As [`CompiledPredicate::eval_mask`].
    pub fn select(&self, rel: &Relation) -> Result<Vec<u32>, RelationError> {
        let mut out = SelectionVector::new();
        self.select_into(rel, &mut out)?;
        Ok(out.rows)
    }

    /// Verify `rel` still matches the compiled binding: every leaf's
    /// column must exist with the compiled type, and every referenced
    /// text column's dictionary must hold the exact entries (checked
    /// by content fingerprint) the truth tables were compiled over.
    /// O(leaves + referenced dictionary entries), not O(rows).
    fn check_binding(&self, rel: &Relation) -> Result<(), RelationError> {
        if rel.schema().arity() != self.arity {
            return Err(RelationError::InvalidSchema(format!(
                "predicate compiled against arity {}, relation has {}",
                self.arity,
                rel.schema().arity()
            )));
        }
        check_node_binding(&self.node, rel)?;
        for &(col, fingerprint) in &self.text_bindings {
            match rel.column(col) {
                ColumnView::Text { dict, .. } if dict_fingerprint(dict) == fingerprint => {}
                _ => {
                    return Err(RelationError::InvalidSchema(format!(
                        "column {col}'s dictionary differs from the one this predicate was \
                         compiled against; re-compile"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// FNV-1a over a dictionary's entries (length-prefixed) — the content
/// fingerprint that pins a compiled truth table to the exact
/// dictionary layout it indexes.
fn dict_fingerprint(dict: &crate::Dictionary) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
    };
    for entry in dict.entries() {
        write(&(entry.len() as u64).to_le_bytes());
        write(entry.as_bytes());
    }
    h
}

/// Record, per text column the compiled tree references, the
/// fingerprint of the dictionary its truth tables index.
fn collect_text_bindings(node: &Node, rel: &Relation, out: &mut Vec<(usize, u64)>) {
    match node {
        Node::CodeTable { col, .. } => {
            if !out.iter().any(|&(c, _)| c == *col) {
                if let ColumnView::Text { dict, .. } = rel.column(*col) {
                    out.push((*col, dict_fingerprint(dict)));
                }
            }
        }
        Node::And(a, b) | Node::Or(a, b) => {
            collect_text_bindings(a, rel, out);
            collect_text_bindings(b, rel, out);
        }
        Node::Not(p) => collect_text_bindings(p, rel, out),
        Node::Const(_) | Node::IntCmp { .. } | Node::IntIn { .. } => {}
    }
}

fn check_node_binding(node: &Node, rel: &Relation) -> Result<(), RelationError> {
    let type_drift = |col: usize| {
        RelationError::InvalidSchema(format!(
            "predicate compiled against a different relation: column {col} changed type"
        ))
    };
    match node {
        Node::Const(_) => Ok(()),
        Node::IntCmp { col, .. } | Node::IntIn { col, .. } => match rel.column(*col) {
            ColumnView::Int(_) => Ok(()),
            ColumnView::Text { .. } => Err(type_drift(*col)),
        },
        Node::CodeTable { col, table } => match rel.column(*col) {
            ColumnView::Text { dict, .. } if dict.len() == table.len() => Ok(()),
            ColumnView::Text { .. } => Err(RelationError::InvalidSchema(format!(
                "column {col}'s dictionary changed since predicate compilation; re-compile"
            ))),
            ColumnView::Int(_) => Err(type_drift(*col)),
        },
        Node::And(a, b) | Node::Or(a, b) => {
            check_node_binding(a, rel)?;
            check_node_binding(b, rel)
        }
        Node::Not(p) => check_node_binding(p, rel),
    }
}

fn compile_node(pred: &Predicate, rel: &Relation) -> Result<Node, RelationError> {
    Ok(match pred {
        Predicate::Eq(attr, v) => compile_cmp(rel, attr, CmpOp::Eq, v)?,
        Predicate::Ne(attr, v) => compile_cmp(rel, attr, CmpOp::Ne, v)?,
        Predicate::Lt(attr, v) => compile_cmp(rel, attr, CmpOp::Lt, v)?,
        Predicate::Le(attr, v) => compile_cmp(rel, attr, CmpOp::Le, v)?,
        Predicate::Gt(attr, v) => compile_cmp(rel, attr, CmpOp::Gt, v)?,
        Predicate::Ge(attr, v) => compile_cmp(rel, attr, CmpOp::Ge, v)?,
        Predicate::In(attr, vs) => compile_in(rel, attr, vs)?,
        // Connectives fold through constant operands (type-mismatched
        // leaves, empty IN-lists), so statically-decided subtrees
        // never pay a vectorized scan.
        Predicate::And(a, b) => match (compile_node(a, rel)?, compile_node(b, rel)?) {
            (Node::Const(false), _) | (_, Node::Const(false)) => Node::Const(false),
            (Node::Const(true), n) | (n, Node::Const(true)) => n,
            (a, b) => Node::And(Box::new(a), Box::new(b)),
        },
        Predicate::Or(a, b) => match (compile_node(a, rel)?, compile_node(b, rel)?) {
            (Node::Const(true), _) | (_, Node::Const(true)) => Node::Const(true),
            (Node::Const(false), n) | (n, Node::Const(false)) => n,
            (a, b) => Node::Or(Box::new(a), Box::new(b)),
        },
        Predicate::Not(p) => match compile_node(p, rel)? {
            Node::Const(b) => Node::Const(!b),
            n => Node::Not(Box::new(n)),
        },
        Predicate::True => Node::Const(true),
    })
}

fn compile_cmp(rel: &Relation, attr: &str, op: CmpOp, rhs: &Value) -> Result<Node, RelationError> {
    let col = rel.schema().index_of(attr)?;
    Ok(match (rel.column(col), rhs) {
        (ColumnView::Int(_), Value::Int(v)) => Node::IntCmp { col, op, rhs: *v },
        (ColumnView::Int(_), Value::Text(_)) => Node::Const(op.int_vs_text()),
        (ColumnView::Text { .. }, Value::Int(_)) => Node::Const(op.text_vs_int()),
        (ColumnView::Text { dict, .. }, Value::Text(s)) => {
            let table: Box<[bool]> =
                (0..dict.len()).map(|c| op.eval(&dict.get(c as u32), &s.as_str())).collect();
            Node::CodeTable { col, table }
        }
    })
}

fn compile_in(rel: &Relation, attr: &str, vs: &[Value]) -> Result<Node, RelationError> {
    let col = rel.schema().index_of(attr)?;
    Ok(match rel.column(col) {
        ColumnView::Int(_) => {
            // Only integer literals can match an integer column.
            let mut set: Vec<i64> = vs.iter().filter_map(Value::as_int).collect();
            set.sort_unstable();
            set.dedup();
            if set.is_empty() {
                Node::Const(false)
            } else {
                Node::IntIn { col, set }
            }
        }
        ColumnView::Text { dict, .. } => {
            let wanted: HashSet<&str> = vs.iter().filter_map(Value::as_text).collect();
            if wanted.is_empty() {
                Node::Const(false)
            } else {
                let table: Box<[bool]> =
                    (0..dict.len()).map(|c| wanted.contains(dict.get(c as u32))).collect();
                Node::CodeTable { col, table }
            }
        }
    })
}

fn eval_node(node: &Node, rel: &Relation) -> RowMask {
    let len = rel.len();
    match node {
        Node::Const(b) => RowMask::filled(len, *b),
        Node::IntCmp { col, op, rhs } => {
            let xs = rel.column(*col).as_int().expect("binding checked");
            let op = *op;
            let rhs = *rhs;
            mask_from(len, xs, |x| op.eval(&x, &rhs))
        }
        Node::IntIn { col, set } => {
            let xs = rel.column(*col).as_int().expect("binding checked");
            mask_from(len, xs, |x| set.binary_search(&x).is_ok())
        }
        Node::CodeTable { col, table } => {
            let (codes, _) = rel.column(*col).as_text().expect("binding checked");
            mask_from(len, codes, |c| table[c as usize])
        }
        Node::And(a, b) => {
            let mut m = eval_node(a, rel);
            m.and(&eval_node(b, rel));
            m
        }
        Node::Or(a, b) => {
            let mut m = eval_node(a, rel);
            m.or(&eval_node(b, rel));
            m
        }
        Node::Not(p) => {
            let mut m = eval_node(p, rel);
            m.negate();
            m
        }
    }
}

/// One column's rows as dense `u32` codes plus the code → value
/// table — the bridge that lets consumers (group-bys, classifier
/// training, rule counting) run their counting loops over small
/// integers and materialize a [`Value`] once per *distinct* value.
///
/// Text columns reuse their dictionary codes directly (the table may
/// carry entries no row references, with zero occurrences); integer
/// columns get first-occurrence dense ids.
#[must_use]
pub fn dense_codes(rel: &Relation, attr_idx: usize) -> (Vec<u32>, Vec<Value>) {
    match rel.column(attr_idx) {
        ColumnView::Int(xs) => {
            let mut ids: std::collections::HashMap<i64, u32> = std::collections::HashMap::new();
            let mut values = Vec::new();
            let codes = xs
                .iter()
                .map(|&x| {
                    *ids.entry(x).or_insert_with(|| {
                        values.push(Value::Int(x));
                        (values.len() - 1) as u32
                    })
                })
                .collect();
            (codes, values)
        }
        ColumnView::Text { codes, dict } => {
            let values =
                (0..dict.len()).map(|c| Value::Text(dict.get(c as u32).to_owned())).collect();
            (codes.to_vec(), values)
        }
    }
}

/// Fill a mask from a flat column slice, 64 rows per word.
fn mask_from<T: Copy>(len: usize, xs: &[T], f: impl Fn(T) -> bool) -> RowMask {
    let mut words = Vec::with_capacity(len.div_ceil(64));
    for chunk in xs.chunks(64) {
        let mut w = 0u64;
        for (j, &x) in chunk.iter().enumerate() {
            w |= u64::from(f(x)) << j;
        }
        words.push(w);
    }
    RowMask { words, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema};

    fn fixture() -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("city", AttrType::Text)
            .categorical_attr("n", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        let cities = ["boston", "austin", "boston", "chicago", "austin", "boston"];
        for (i, city) in cities.iter().enumerate() {
            rel.push(vec![
                Value::Int(i as i64),
                Value::Text((*city).into()),
                Value::Int((i as i64) % 3),
            ])
            .unwrap();
        }
        rel
    }

    /// Row ids the interpreted predicate selects — the reference the
    /// compiled engine must agree with.
    fn interpreted(rel: &Relation, pred: &Predicate) -> Vec<u32> {
        (0..rel.len())
            .filter(|&row| pred.eval(rel.schema(), &rel.tuple(row).unwrap()).unwrap())
            .map(|row| row as u32)
            .collect()
    }

    fn assert_agrees(rel: &Relation, pred: &Predicate) {
        let compiled = CompiledPredicate::compile(pred, rel).unwrap();
        assert_eq!(compiled.select(rel).unwrap(), interpreted(rel, pred), "pred: {pred:?}");
    }

    #[test]
    fn int_comparisons_agree_with_interpreter() {
        let rel = fixture();
        for op in [
            Predicate::Eq("n".into(), Value::Int(1)),
            Predicate::Ne("n".into(), Value::Int(1)),
            Predicate::Lt("k".into(), Value::Int(3)),
            Predicate::Le("k".into(), Value::Int(3)),
            Predicate::Gt("k".into(), Value::Int(3)),
            Predicate::Ge("k".into(), Value::Int(3)),
        ] {
            assert_agrees(&rel, &op);
        }
    }

    #[test]
    fn text_leaves_collapse_to_code_tables() {
        let rel = fixture();
        for op in [
            Predicate::Eq("city".into(), Value::Text("boston".into())),
            Predicate::Ne("city".into(), Value::Text("boston".into())),
            Predicate::Lt("city".into(), Value::Text("boston".into())),
            Predicate::Ge("city".into(), Value::Text("boston".into())),
            Predicate::is_in("city", [Value::Text("austin".into()), Value::Text("chicago".into())]),
        ] {
            assert_agrees(&rel, &op);
        }
    }

    #[test]
    fn type_mismatches_constant_fold_like_the_value_order() {
        let rel = fixture();
        // Int column vs text literal, text column vs int literal —
        // every operator, both directions.
        for op in ["Eq", "Ne", "Lt", "Le", "Gt", "Ge"] {
            let mk = |attr: &str, v: Value| match op {
                "Eq" => Predicate::Eq(attr.into(), v),
                "Ne" => Predicate::Ne(attr.into(), v),
                "Lt" => Predicate::Lt(attr.into(), v),
                "Le" => Predicate::Le(attr.into(), v),
                "Gt" => Predicate::Gt(attr.into(), v),
                _ => Predicate::Ge(attr.into(), v),
            };
            assert_agrees(&rel, &mk("k", Value::Text("zzz".into())));
            assert_agrees(&rel, &mk("city", Value::Int(5)));
        }
    }

    #[test]
    fn mixed_in_lists_keep_only_matching_types() {
        let rel = fixture();
        let p = Predicate::is_in("n", [Value::Int(0), Value::Text("boston".into())]);
        assert_agrees(&rel, &p);
        let p = Predicate::is_in("city", [Value::Int(0), Value::Text("boston".into())]);
        assert_agrees(&rel, &p);
        // All-foreign-type lists fold to constant false.
        let p = Predicate::is_in("n", [Value::Text("x".into())]);
        assert_agrees(&rel, &p);
    }

    #[test]
    fn connectives_combine_masks() {
        let rel = fixture();
        let p = Predicate::eq("city", "boston")
            .and(Predicate::Gt("k".into(), Value::Int(0)))
            .or(Predicate::eq("n", 2))
            .negate();
        assert_agrees(&rel, &p);
        assert_agrees(&rel, &Predicate::True);
    }

    #[test]
    fn selection_vector_is_reusable() {
        let rel = fixture();
        let all = CompiledPredicate::compile(&Predicate::True, &rel).unwrap();
        let none = CompiledPredicate::compile(&Predicate::eq("k", 99), &rel).unwrap();
        let mut sel = SelectionVector::new();
        all.select_into(&rel, &mut sel).unwrap();
        assert_eq!(sel.len(), rel.len());
        none.select_into(&rel, &mut sel).unwrap();
        assert!(sel.is_empty(), "select_into clears previous contents");
    }

    #[test]
    fn unknown_attribute_errors_at_compile_time() {
        let rel = fixture();
        let err = CompiledPredicate::compile(&Predicate::eq("missing", 1), &rel);
        assert!(matches!(err, Err(RelationError::UnknownAttr(_))));
    }

    #[test]
    fn binding_drift_is_detected() {
        let rel = fixture();
        let p = CompiledPredicate::compile(&Predicate::eq("city", "boston"), &rel).unwrap();
        // Same relation: fine.
        assert!(p.eval_mask(&rel).is_ok());
        // Dictionary grew: refused.
        let mut grown = rel.clone();
        grown.update_value(0, 1, Value::Text("nyc".into())).unwrap();
        assert!(matches!(p.eval_mask(&grown), Err(RelationError::InvalidSchema(_))));
        // Same schema and dictionary *size* but different interning
        // order: the content fingerprint refuses it.
        let mut reordered = Relation::new(rel.schema().clone());
        for (k, city) in [(1, "austin"), (2, "boston"), (3, "chicago")] {
            reordered.push(vec![Value::Int(k), Value::Text(city.into()), Value::Int(0)]).unwrap();
        }
        assert!(matches!(p.eval_mask(&reordered), Err(RelationError::InvalidSchema(_))));
        // Different arity: refused.
        let other =
            Relation::new(Schema::builder().key_attr("k", AttrType::Integer).build().unwrap());
        assert!(p.eval_mask(&other).is_err());
    }

    #[test]
    fn row_mask_bit_operations() {
        let mut m = RowMask::filled(70, false);
        assert_eq!(m.len(), 70);
        assert_eq!(m.count_ones(), 0);
        m.negate();
        assert_eq!(m.count_ones(), 70, "negation must not set tail bits");
        assert!(m.get(69));
        let full = RowMask::filled(70, true);
        assert_eq!(m, full);
        let mut sel = SelectionVector::new();
        m.push_rows_into(&mut sel);
        assert_eq!(sel.rows().first(), Some(&0));
        assert_eq!(sel.rows().last(), Some(&69));
    }

    #[test]
    fn large_int_in_list_uses_sorted_lookup() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..1000i64 {
            rel.push(vec![Value::Int(i), Value::Int(i % 97)]).unwrap();
        }
        // A big unsorted IN-list with duplicates.
        let vs: Vec<Value> = (0..500).rev().map(|i| Value::Int(i % 50)).collect();
        let p = Predicate::In("a".into(), vs);
        let compiled = CompiledPredicate::compile(&p, &rel).unwrap();
        let got = compiled.select(&rel).unwrap();
        let want: Vec<u32> = (0..1000u32).filter(|&i| i64::from(i) % 97 < 50).collect();
        assert_eq!(got, want);
    }
}
