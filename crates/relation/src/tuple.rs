//! Tuples: ordered value lists conforming to a [`crate::Schema`].

use crate::Value;

/// One relation row.
///
/// A `Tuple` is schema-agnostic storage; validation against a schema
/// happens at insertion ([`crate::Relation::push`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Tuple from values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Value at attribute position `idx`.
    ///
    /// Panics when out of bounds; positions should come from
    /// [`crate::Schema::index_of`].
    #[must_use]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Replace the value at position `idx`, returning the old value.
    pub fn set(&mut self, idx: usize, value: Value) -> Value {
        std::mem::replace(&mut self.values[idx], value)
    }

    /// Number of values.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values in order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Project onto the given attribute positions.
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple { values: indices.iter().map(|&i| self.values[i].clone()).collect() }
    }

    /// Consume into the underlying values.
    #[must_use]
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut t = Tuple::new(vec![Value::Int(1), Value::Text("a".into())]);
        let old = t.set(1, Value::Text("b".into()));
        assert_eq!(old, Value::Text("a".into()));
        assert_eq!(t.get(1), &Value::Text("b".into()));
    }

    #[test]
    fn project_reorders_and_selects() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(t.project(&[2, 0]).values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn display_is_parenthesized() {
        let t = Tuple::new(vec![Value::Int(1), Value::Text("x".into())]);
        assert_eq!(t.to_string(), "(1, x)");
    }

    #[test]
    fn arity_reports_len() {
        assert_eq!(Tuple::new(vec![]).arity(), 0);
        assert_eq!(Tuple::new(vec![Value::Int(0)]).arity(), 1);
    }
}
