//! Content-addressed blob storage and versioned segment manifests.
//!
//! This module turns the dumb append-only [`SegmentStore`] arena into
//! a *pile*: every sealed segment blob is keyed by its SHA-256
//! content hash, and a commit log of **manifests** (the `CMKVER1`
//! wire format) records each relation version as an ordered list of
//! blob hashes plus the relation-level shared-dictionary state. Two
//! consequences fall out:
//!
//! * **Structural sharing.** An updated relation shares every
//!   unchanged segment blob with its ancestors — committing a version
//!   that touched one segment out of sixteen appends one blob, and
//!   the other fifteen manifest entries point at bytes already in the
//!   pile. Eviction write-backs of clean segments dedup the same way,
//!   so a [`crate::spill::FileStore`] behind a [`ContentStore`] stops
//!   rewriting clean segments entirely.
//! * **Time travel.** Any recorded version reopens as a
//!   [`SegmentedRelation`] ([`VersionLog::open_version`]) against the
//!   same pile — the hook the service layer uses to run watermark
//!   detection against historical versions for leak attribution.
//!
//! The incremental re-mark drivers in `catmark-core` diff two
//! manifests' hash lists to find the *dirty* segments — the only ones
//! that need re-planning and re-embedding under churn.
//!
//! # Pile record format
//!
//! The inner store holds self-describing records so an on-disk pile
//! can be reopened and re-indexed by a linear scan
//! ([`ContentStore::open_file`]):
//!
//! ```text
//! [0..8)    magic  b"CMKBLB1\0"
//! [8..40)   SHA-256 of the payload
//! [40..48)  payload length u64 LE
//! [48..)    payload (a CMKSEG1 segment blob)
//! ```
//!
//! [`SpillHandle`]s returned by the store address the *payload*, so
//! the pager's ranged reads work unchanged.
//!
//! # Manifest record format (`CMKVER1`)
//!
//! A [`VersionLog`] serializes as concatenated records:
//!
//! ```text
//! [0..8)    magic  b"CMKVER1\0"
//! [8..16)   version id u64 LE
//! [16..24)  parent id u64 LE (u64::MAX = none)
//! [24..32)  segment_rows u64 LE
//! [32..36)  arity u32 LE
//! [36..40)  segment count u32 LE
//! ...       per attribute: tag u8 (0 = no dictionary, 1 = shared
//!           dictionary: entry count u32, entries as (len u32, utf-8))
//! ...       per segment: blob hash (32 bytes), rows u64 LE
//! ```

use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::{Arc, Mutex};

use catmark_crypto::HashAlgorithm;

use crate::segment::SegmentedRelation;
use crate::spill::{MemStore, SegmentStore, SpillHandle};
use crate::{Dictionary, FileStore, RelationError, Schema};

/// SHA-256 content hash of one segment blob.
pub type BlobHash = [u8; 32];

/// Magic bytes opening every pile record.
const BLOB_MAGIC: &[u8; 8] = b"CMKBLB1\0";
/// Bytes of pile record framing before the payload.
const BLOB_HEADER: u64 = 48;
/// Magic bytes opening every manifest record.
const VER_MAGIC: &[u8; 8] = b"CMKVER1\0";
/// Parent-id sentinel for a rootless manifest.
const NO_PARENT: u64 = u64::MAX;

fn spill_err(msg: impl Into<String>) -> RelationError {
    RelationError::Spill(msg.into())
}

/// Render a blob hash as lowercase hex (manifest listings, service
/// payloads).
#[must_use]
pub fn hash_hex(hash: &BlobHash) -> String {
    use std::fmt::Write as _;
    let mut text = String::with_capacity(64);
    for b in hash {
        write!(text, "{b:02x}").expect("writing to a String never fails");
    }
    text
}

fn sha256(bytes: &[u8]) -> BlobHash {
    HashAlgorithm::Sha256.digest(bytes).try_into().expect("sha-256 digests are 32 bytes")
}

#[derive(Debug)]
struct ContentStoreInner {
    store: Box<dyn SegmentStore>,
    /// Content hash → payload handle of the first (only) copy.
    index: HashMap<BlobHash, SpillHandle>,
    /// Payload offset → content hash (the reverse map commits use).
    by_offset: HashMap<u64, BlobHash>,
    /// Payload handles in append order (what gc walks).
    order: Vec<SpillHandle>,
    dedup_hits: u64,
}

/// A content-addressed, append-only wrapper over any [`SegmentStore`]:
/// appends are keyed by SHA-256, so a blob whose bytes are already in
/// the pile returns the existing handle instead of growing the log.
///
/// The store is a cheaply cloneable handle (shared state behind an
/// `Arc`), so one clone can back a [`SegmentedRelation`]'s pager while
/// another resolves hashes for the commit log.
#[derive(Debug, Clone)]
pub struct ContentStore {
    inner: Arc<Mutex<ContentStoreInner>>,
}

impl ContentStore {
    /// Wrap a fresh (empty) backing store.
    #[must_use]
    pub fn new(store: Box<dyn SegmentStore>) -> Self {
        ContentStore {
            inner: Arc::new(Mutex::new(ContentStoreInner {
                store,
                index: HashMap::new(),
                by_offset: HashMap::new(),
                order: Vec::new(),
                dedup_hits: 0,
            })),
        }
    }

    /// An in-memory pile (hermetic tests, the service's default).
    #[must_use]
    pub fn in_memory() -> Self {
        ContentStore::new(Box::new(MemStore::new()))
    }

    /// Create (truncating) an on-disk pile at `path`.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when the file cannot be created.
    pub fn create_file(path: impl AsRef<std::path::Path>) -> Result<Self, RelationError> {
        Ok(ContentStore::new(Box::new(FileStore::create(path)?)))
    }

    /// Reopen an existing on-disk pile, rebuilding the hash index by
    /// scanning its record framing.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] on I/O failure or corrupt framing.
    pub fn open_file(path: impl AsRef<std::path::Path>) -> Result<Self, RelationError> {
        let file = FileStore::open(path)?;
        let end = file.spilled_bytes();
        let store = ContentStore::new(Box::new(file));
        {
            let mut inner = store.inner.lock().expect("content store lock is never poisoned");
            let mut pos = 0u64;
            while pos < end {
                if pos + BLOB_HEADER > end {
                    return Err(spill_err("truncated pile record header"));
                }
                let probe = SpillHandle { offset: pos, len: BLOB_HEADER };
                let header = inner.store.read(probe, 0..BLOB_HEADER)?;
                if &header[0..8] != BLOB_MAGIC {
                    return Err(spill_err(format!("bad pile record magic at offset {pos}")));
                }
                let hash: BlobHash = header[8..40].try_into().expect("32 bytes");
                let len = u64::from_le_bytes(header[40..48].try_into().expect("8 bytes"));
                if pos + BLOB_HEADER + len > end {
                    return Err(spill_err(format!("truncated pile payload at offset {pos}")));
                }
                let handle = SpillHandle { offset: pos + BLOB_HEADER, len };
                inner.index.entry(hash).or_insert(handle);
                inner.by_offset.insert(handle.offset, hash);
                inner.order.push(handle);
                pos += BLOB_HEADER + len;
            }
        }
        Ok(store)
    }

    /// The payload handle of the blob with content `hash`, if stored.
    #[must_use]
    pub fn handle_of(&self, hash: &BlobHash) -> Option<SpillHandle> {
        self.inner.lock().expect("content store lock is never poisoned").index.get(hash).copied()
    }

    /// The content hash of the blob behind `handle`, if the handle was
    /// issued by this store.
    #[must_use]
    pub fn hash_at(&self, handle: SpillHandle) -> Option<BlobHash> {
        self.inner
            .lock()
            .expect("content store lock is never poisoned")
            .by_offset
            .get(&handle.offset)
            .copied()
    }

    /// Number of distinct blobs in the pile.
    #[must_use]
    pub fn unique_blobs(&self) -> u64 {
        self.inner.lock().expect("content store lock is never poisoned").index.len() as u64
    }

    /// Appends satisfied by an existing blob (no bytes written) — the
    /// "clean segments are never rewritten" counter.
    #[must_use]
    pub fn dedup_hits(&self) -> u64 {
        self.inner.lock().expect("content store lock is never poisoned").dedup_hits
    }

    /// Copy every blob referenced by `live` manifests into `dest` (in
    /// pile order), dropping the rest — garbage collection by rewrite,
    /// the only safe shape for an append-only log. Handles change;
    /// manifests stay valid because they reference *hashes*.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when a live hash is missing from this
    /// pile or the copy fails.
    pub fn gc_into<'a>(
        &self,
        live: impl IntoIterator<Item = &'a VersionManifest>,
        dest: &ContentStore,
    ) -> Result<GcStats, RelationError> {
        let mut wanted: HashSet<BlobHash> = HashSet::new();
        for manifest in live {
            for seg in &manifest.segments {
                wanted.insert(seg.hash);
            }
        }
        let (order, total_blobs) = {
            let inner = self.inner.lock().expect("content store lock is never poisoned");
            (inner.order.clone(), inner.index.len() as u64)
        };
        let mut stats = GcStats::default();
        let mut copied: HashSet<BlobHash> = HashSet::new();
        for handle in order {
            let Some(hash) = self.hash_at(handle) else { continue };
            if !wanted.contains(&hash) || !copied.insert(hash) {
                continue;
            }
            let bytes = self.read(handle, 0..handle.len)?;
            dest.clone().append(&bytes)?;
            stats.live_blobs += 1;
            stats.live_bytes += handle.len;
        }
        for hash in &wanted {
            if !copied.contains(hash) {
                return Err(spill_err(format!("live blob {} missing from pile", hash_hex(hash))));
            }
        }
        stats.dropped_blobs = total_blobs - stats.live_blobs;
        Ok(stats)
    }
}

impl SegmentStore for ContentStore {
    fn append(&mut self, bytes: &[u8]) -> Result<SpillHandle, RelationError> {
        let hash = sha256(bytes);
        let mut inner = self.inner.lock().expect("content store lock is never poisoned");
        if let Some(&handle) = inner.index.get(&hash) {
            inner.dedup_hits += 1;
            return Ok(handle);
        }
        let mut framed = Vec::with_capacity(bytes.len() + BLOB_HEADER as usize);
        framed.extend_from_slice(BLOB_MAGIC);
        framed.extend_from_slice(&hash);
        framed.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        framed.extend_from_slice(bytes);
        let record = inner.store.append(&framed)?;
        let handle = SpillHandle { offset: record.offset + BLOB_HEADER, len: bytes.len() as u64 };
        inner.index.insert(hash, handle);
        inner.by_offset.insert(handle.offset, hash);
        inner.order.push(handle);
        Ok(handle)
    }

    fn read(&self, handle: SpillHandle, range: Range<u64>) -> Result<Vec<u8>, RelationError> {
        self.inner.lock().expect("content store lock is never poisoned").store.read(handle, range)
    }

    fn spilled_bytes(&self) -> u64 {
        self.inner.lock().expect("content store lock is never poisoned").store.spilled_bytes()
    }
}

/// What [`ContentStore::gc_into`] kept and dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Distinct live blobs copied into the destination pile.
    pub live_blobs: u64,
    /// Payload bytes those blobs occupy.
    pub live_bytes: u64,
    /// Distinct blobs left behind (unreferenced by any live manifest).
    pub dropped_blobs: u64,
}

/// One segment's entry in a [`VersionManifest`]: the blob's content
/// hash and its row count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// SHA-256 of the segment's CMKSEG1 blob.
    pub hash: BlobHash,
    /// Rows the segment holds.
    pub rows: u64,
}

/// One committed relation version: an ordered list of segment blob
/// hashes plus the shared-dictionary state the pager needs to reopen
/// the relation with stable shared codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionManifest {
    /// This version's id (position in the commit log).
    pub id: u64,
    /// The version this one was derived from, if any.
    pub parent: Option<u64>,
    /// Rows per sealed segment at commit time.
    pub segment_rows: u64,
    /// The segments, in row order.
    pub segments: Vec<SegmentRef>,
    /// Per attribute: the relation-level shared dictionary entries in
    /// interning order (`None` for integer attributes).
    pub shared: Vec<Option<Vec<String>>>,
}

impl VersionManifest {
    /// Total rows across the manifest's segments.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.segments.iter().map(|s| s.rows).sum()
    }

    /// Indices of segments whose blob hash differs from `ancestor`'s
    /// entry at the same position (or that have no counterpart) — the
    /// segments an incremental re-mark must touch. `None` when the
    /// diff is not segment-aligned (different segment geometry), in
    /// which case callers must fall back to a full pass.
    #[must_use]
    pub fn dirty_against(&self, ancestor: &VersionManifest) -> Option<Vec<usize>> {
        if self.segment_rows != ancestor.segment_rows
            || self.segments.len() != ancestor.segments.len()
        {
            return None;
        }
        if self.segments.iter().zip(&ancestor.segments).any(|(cur, old)| cur.rows != old.rows) {
            return None;
        }
        Some(
            self.segments
                .iter()
                .zip(&ancestor.segments)
                .enumerate()
                .filter(|(_, (cur, old))| cur.hash != old.hash)
                .map(|(i, _)| i)
                .collect(),
        )
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(VER_MAGIC);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.parent.unwrap_or(NO_PARENT).to_le_bytes());
        out.extend_from_slice(&self.segment_rows.to_le_bytes());
        out.extend_from_slice(&(self.shared.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for dict in &self.shared {
            match dict {
                None => out.push(0),
                Some(entries) => {
                    out.push(1);
                    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                    for entry in entries {
                        out.extend_from_slice(&(entry.len() as u32).to_le_bytes());
                        out.extend_from_slice(entry.as_bytes());
                    }
                }
            }
        }
        for seg in &self.segments {
            out.extend_from_slice(&seg.hash);
            out.extend_from_slice(&seg.rows.to_le_bytes());
        }
    }
}

/// Little-endian cursor over a byte slice (decode side).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RelationError> {
        let end = self.pos.checked_add(n).ok_or_else(|| spill_err("length overflow"))?;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| spill_err("truncated manifest record"))?;
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, RelationError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, RelationError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// The append-only commit log of [`VersionManifest`]s for one
/// relation. Version ids are assigned sequentially at commit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionLog {
    manifests: Vec<VersionManifest>,
}

impl VersionLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        VersionLog::default()
    }

    /// All committed manifests, oldest first.
    #[must_use]
    pub fn manifests(&self) -> &[VersionManifest] {
        &self.manifests
    }

    /// The manifest of version `id`.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&VersionManifest> {
        self.manifests.get(id as usize)
    }

    /// The most recently committed manifest.
    #[must_use]
    pub fn latest(&self) -> Option<&VersionManifest> {
        self.manifests.last()
    }

    /// Commit the current state of `seg` as a new version: flush it
    /// (sealing the tail and writing back dirty segments — deduped by
    /// the content store), then record the ordered blob hashes and
    /// shared-dictionary state. The parent is the previous head.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when flushing fails or `seg`'s pager
    /// is not backed by `store` (its handles don't resolve to hashes).
    pub fn commit(
        &mut self,
        seg: &mut SegmentedRelation,
        store: &ContentStore,
    ) -> Result<u64, RelationError> {
        seg.flush()?;
        let mut segments = Vec::with_capacity(seg.segment_count());
        for i in 0..seg.segment_count() {
            let handle = seg
                .segment_handle(i)
                .ok_or_else(|| spill_err(format!("segment {i} has no written-back blob")))?;
            let hash = store.hash_at(handle).ok_or_else(|| {
                spill_err(format!("segment {i} was not spilled through the content store"))
            })?;
            segments.push(SegmentRef { hash, rows: seg.segment_len(i) as u64 });
        }
        let shared = (0..seg.schema().arity())
            .map(|attr| {
                seg.shared_dict(attr).map(|d| d.entries().iter().map(|e| e.to_string()).collect())
            })
            .collect();
        let id = self.manifests.len() as u64;
        let parent = self.manifests.last().map(|m| m.id);
        self.manifests.push(VersionManifest {
            id,
            parent,
            segment_rows: seg.segment_rows() as u64,
            segments,
            shared,
        });
        Ok(id)
    }

    /// Reopen version `id` as a [`SegmentedRelation`] over `store`,
    /// with every segment cold and an optional pager budget.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when the version is unknown or one of
    /// its blobs is missing from the pile;
    /// [`RelationError::InvalidSchema`] when `schema` does not match
    /// the manifest's arity.
    pub fn open_version(
        &self,
        id: u64,
        schema: &Schema,
        store: &ContentStore,
        budget: Option<usize>,
    ) -> Result<SegmentedRelation, RelationError> {
        let manifest = self.get(id).ok_or_else(|| spill_err(format!("unknown version {id}")))?;
        if manifest.shared.len() != schema.arity() {
            return Err(RelationError::InvalidSchema(
                "manifest arity does not match the schema".into(),
            ));
        }
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for (i, seg) in manifest.segments.iter().enumerate() {
            let handle = store.handle_of(&seg.hash).ok_or_else(|| {
                spill_err(format!(
                    "version {id} segment {i} blob {} missing from pile",
                    hash_hex(&seg.hash)
                ))
            })?;
            segments.push((handle, seg.rows as usize));
        }
        let shared = manifest
            .shared
            .iter()
            .map(|dict| {
                dict.as_ref().map(|entries| {
                    let mut d = Dictionary::new();
                    for entry in entries {
                        d.intern(entry);
                    }
                    d
                })
            })
            .collect();
        let mut builder = SegmentedRelation::builder(schema.clone())
            .segment_rows(manifest.segment_rows.max(1) as usize)
            .store(Box::new(store.clone()));
        if let Some(bytes) = budget {
            builder = builder.budget_bytes(bytes);
        }
        builder.open_spilled(&segments, shared)
    }

    /// Serialize the whole log as concatenated `CMKVER1` records.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for manifest in &self.manifests {
            manifest.encode_into(&mut out);
        }
        out
    }

    /// Decode a log serialized by [`VersionLog::encode`].
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] on corrupt or truncated records.
    pub fn decode(bytes: &[u8]) -> Result<Self, RelationError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let mut manifests = Vec::new();
        while cur.pos < bytes.len() {
            if cur.take(8)? != VER_MAGIC {
                return Err(spill_err("bad manifest record magic"));
            }
            let id = cur.u64()?;
            let parent = match cur.u64()? {
                NO_PARENT => None,
                p => Some(p),
            };
            let segment_rows = cur.u64()?;
            let arity = cur.u32()? as usize;
            let nsegs = cur.u32()? as usize;
            let mut shared = Vec::with_capacity(arity);
            for _ in 0..arity {
                match cur.take(1)?[0] {
                    0 => shared.push(None),
                    1 => {
                        let count = cur.u32()? as usize;
                        let mut entries = Vec::with_capacity(count);
                        for _ in 0..count {
                            let len = cur.u32()? as usize;
                            let s = std::str::from_utf8(cur.take(len)?)
                                .map_err(|_| spill_err("dictionary entry is not utf-8"))?;
                            entries.push(s.to_string());
                        }
                        shared.push(Some(entries));
                    }
                    tag => return Err(spill_err(format!("bad shared-dictionary tag {tag:#x}"))),
                }
            }
            let mut segments = Vec::with_capacity(nsegs);
            for _ in 0..nsegs {
                let hash: BlobHash = cur.take(32)?.try_into().expect("32 bytes");
                let rows = cur.u64()?;
                segments.push(SegmentRef { hash, rows });
            }
            if id as usize != manifests.len() {
                return Err(spill_err("manifest ids must be dense and in order"));
            }
            manifests.push(VersionManifest { id, parent, segment_rows, segments, shared });
        }
        Ok(VersionLog { manifests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Relation, Value};

    fn schema() -> Schema {
        Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .categorical_attr("c", AttrType::Text)
            .build()
            .unwrap()
    }

    fn sample(n: i64) -> Relation {
        let mut rel = Relation::new(schema());
        let cities = ["boston", "austin", "chicago", "dallas", "el paso"];
        for i in 0..n {
            rel.push(vec![
                Value::Int(i),
                Value::Int(i % 7),
                Value::Text(cities[(i % 5) as usize].into()),
            ])
            .unwrap();
        }
        rel
    }

    fn versioned(rel: &Relation, rows: usize) -> (SegmentedRelation, ContentStore) {
        let store = ContentStore::in_memory();
        let seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(rows)
            .store(Box::new(store.clone()))
            .from_relation(rel)
            .unwrap();
        (seg, store)
    }

    #[test]
    fn identical_blobs_are_stored_once() {
        let mut store = ContentStore::in_memory();
        let a = store.append(b"same bytes").unwrap();
        let b = store.append(b"same bytes").unwrap();
        let c = store.append(b"other bytes").unwrap();
        assert_eq!(a, b, "dedup must return the original handle");
        assert_ne!(a, c);
        assert_eq!(store.unique_blobs(), 2);
        assert_eq!(store.dedup_hits(), 1);
        assert_eq!(store.read(a, 0..10).unwrap(), b"same bytes");
        assert_eq!(store.hash_at(a), Some(sha256(b"same bytes")));
        assert_eq!(store.handle_of(&sha256(b"other bytes")), Some(c));
    }

    #[test]
    fn commit_then_reopen_round_trips() {
        let rel = sample(100);
        let (mut seg, store) = versioned(&rel, 30);
        let mut log = VersionLog::new();
        let v0 = log.commit(&mut seg, &store).unwrap();
        assert_eq!(v0, 0);
        assert_eq!(log.latest().unwrap().rows(), 100);
        let mut back = log.open_version(v0, rel.schema(), &store, None).unwrap();
        let round = back.to_relation().unwrap();
        assert!(rel.iter().zip(round.iter()).all(|(a, b)| a == b));
        // Streaming ops on the reopened relation still see shared codes.
        assert_eq!(back.group_count("c").unwrap(), crate::join::group_count(&rel, "c").unwrap());
    }

    #[test]
    fn updated_versions_share_clean_blobs_with_ancestors() {
        let rel = sample(120);
        let (mut seg, store) = versioned(&rel, 30); // 4 segments
        let mut log = VersionLog::new();
        let v0 = log.commit(&mut seg, &store).unwrap();
        let blobs_after_v0 = store.unique_blobs();
        seg.with_segment_mut(2, |r| r.update_value(5, 1, Value::Int(999)).unwrap()).unwrap();
        let v1 = log.commit(&mut seg, &store).unwrap();
        let (m0, m1) = (log.get(v0).unwrap().clone(), log.get(v1).unwrap().clone());
        assert_eq!(m1.parent, Some(v0));
        for i in [0usize, 1, 3] {
            assert_eq!(m0.segments[i].hash, m1.segments[i].hash, "clean segment {i} rewritten");
        }
        assert_ne!(m0.segments[2].hash, m1.segments[2].hash);
        assert_eq!(store.unique_blobs(), blobs_after_v0 + 1, "only the dirty blob is new");
        assert_eq!(m1.dirty_against(&m0), Some(vec![2]));
        assert_eq!(m0.dirty_against(&m0), Some(vec![]));
        // Both versions remain reconstructible.
        let old = log.open_version(v0, rel.schema(), &store, None).unwrap().to_relation().unwrap();
        assert!(rel.iter().zip(old.iter()).all(|(a, b)| a == b));
        let new = log.open_version(v1, rel.schema(), &store, None).unwrap().to_relation().unwrap();
        assert_eq!(new.value(65, 1).unwrap(), Value::Int(999));
    }

    #[test]
    fn log_encode_decode_round_trips() {
        let rel = sample(45);
        let (mut seg, store) = versioned(&rel, 20);
        let mut log = VersionLog::new();
        log.commit(&mut seg, &store).unwrap();
        seg.with_segment_mut(0, |r| r.update_value(0, 2, Value::Text("nowhere".into())).unwrap())
            .unwrap();
        log.commit(&mut seg, &store).unwrap();
        let decoded = VersionLog::decode(&log.encode()).unwrap();
        assert_eq!(decoded, log);
        assert!(VersionLog::decode(b"CMKVERX_garbage.....................").is_err());
        assert_eq!(VersionLog::decode(b"").unwrap(), VersionLog::new());
    }

    #[test]
    fn file_pile_reopens_with_its_index() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-versioned-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pile.cmk");
        let rel = sample(60);
        let hashes: Vec<BlobHash> = {
            let store = ContentStore::create_file(&path).unwrap();
            let mut seg = SegmentedRelation::builder(rel.schema().clone())
                .segment_rows(20)
                .store(Box::new(store.clone()))
                .from_relation(&rel)
                .unwrap();
            let mut log = VersionLog::new();
            log.commit(&mut seg, &store).unwrap();
            log.latest().unwrap().segments.iter().map(|s| s.hash).collect()
        };
        let reopened = ContentStore::open_file(&path).unwrap();
        assert_eq!(reopened.unique_blobs(), hashes.len() as u64);
        for hash in &hashes {
            let handle = reopened.handle_of(hash).expect("blob re-indexed");
            let bytes = reopened.read(handle, 0..handle.len).unwrap();
            assert_eq!(sha256(&bytes), *hash, "payload bytes intact after reopen");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gc_keeps_shared_ancestor_blobs_and_drops_orphans() {
        let rel = sample(120);
        let (mut seg, store) = versioned(&rel, 30);
        let mut log = VersionLog::new();
        let v0 = log.commit(&mut seg, &store).unwrap();
        seg.with_segment_mut(1, |r| r.update_value(3, 1, Value::Int(777)).unwrap()).unwrap();
        let v1 = log.commit(&mut seg, &store).unwrap();
        // An orphan: bytes in the pile no manifest references.
        store.clone().append(b"abandoned experiment").unwrap();
        let live_before = store.unique_blobs();
        let dest = ContentStore::in_memory();
        let stats = store.gc_into(log.manifests(), &dest).unwrap();
        assert_eq!(stats.live_blobs, 5, "4 shared ancestor blobs + 1 rewritten");
        assert_eq!(stats.dropped_blobs, live_before - 5);
        assert_eq!(dest.unique_blobs(), 5);
        // The clean ancestor blobs survive under the same hashes, so
        // *both* versions reopen from the collected pile.
        for v in [v0, v1] {
            let mut back = log.open_version(v, rel.schema(), &dest, None).unwrap();
            assert_eq!(back.to_relation().unwrap().len(), 120);
        }
        // A missing live blob is an error, not silent data loss.
        let empty = ContentStore::in_memory();
        assert!(empty.gc_into(log.manifests(), &dest).is_err());
    }
}
