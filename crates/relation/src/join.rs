//! Joins, grouping and multiset operators.
//!
//! The base [`ops`](crate::ops) module covers the operators the
//! adversary model needs (sampling, projection, sorting, union). This
//! module adds the operators *legitimate consumers* of a watermarked
//! relation run — equi-joins, group-by counting, duplicate elimination
//! and key-based difference — so that quality constraints and the
//! mining substrate can measure whether an embedding perturbs the
//! answers such consumers see.

use std::collections::{HashMap, HashSet};

use crate::{AttrDef, Column, ColumnView, Relation, RelationError, Schema, Value};

/// Inner equi-join of `left` and `right` on `left.left_attr ==
/// right.right_attr`, implemented as a build/probe hash join entirely
/// in code space: integer keys probe an `i64` map, text keys are
/// matched by translating the left dictionary's distinct entries into
/// the right column's codes **once**, after which every probe is a
/// `u32` table lookup. No per-row tuple is ever materialized — the
/// output is assembled by gathering whole columns, so text output
/// columns reuse their source relation's dictionaries instead of
/// re-interning every value.
///
/// The output schema is `left`'s attributes followed by `right`'s;
/// a right attribute whose name collides with a left attribute is
/// renamed with an `_r` suffix. The output key is `left`'s key, which
/// may legitimately repeat when the join is one-to-many, so the output
/// key index is *not* unique.
///
/// # Errors
///
/// [`RelationError::UnknownAttr`] for unknown join attributes, or
/// [`RelationError::InvalidSchema`] when suffix-renaming cannot make
/// the right attribute names unique.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_attr: &str,
    right_attr: &str,
) -> Result<Relation, RelationError> {
    let l_idx = left.schema().index_of(left_attr)?;
    let r_idx = right.schema().index_of(right_attr)?;
    let schema = joined_schema(left.schema(), right.schema())?;

    // Matched (left row, right row) pairs, in left-row-major order
    // with right matches ascending — the order the historical
    // tuple-at-a-time probe produced.
    let (l_rows, r_rows) = join_pairs(left.column(l_idx), right.column(r_idx));

    let columns: Vec<Column> = (0..left.schema().arity())
        .map(|i| left.column(i).gather_u32(&l_rows))
        .chain((0..right.schema().arity()).map(|i| right.column(i).gather_u32(&r_rows)))
        .collect();
    Relation::from_columns(schema, columns)
}

/// The code-space probe behind [`hash_join`]: all matching row pairs
/// of `l == r`.
fn join_pairs(l: ColumnView<'_>, r: ColumnView<'_>) -> (Vec<u32>, Vec<u32>) {
    let mut l_rows = Vec::new();
    let mut r_rows = Vec::new();
    let mut emit = |l_row: u32, matches: &[u32]| {
        for &r_row in matches {
            l_rows.push(l_row);
            r_rows.push(r_row);
        }
    };
    match (l, r) {
        (ColumnView::Int(lv), ColumnView::Int(rv)) => {
            // Build: right value → ascending right rows.
            let mut build: HashMap<i64, Vec<u32>> = HashMap::with_capacity(rv.len());
            for (row, &v) in rv.iter().enumerate() {
                build.entry(v).or_default().push(row as u32);
            }
            for (row, v) in lv.iter().enumerate() {
                if let Some(matches) = build.get(v) {
                    emit(row as u32, matches);
                }
            }
        }
        (ColumnView::Text { codes: lc, dict: ld }, ColumnView::Text { codes: rc, dict: rd }) => {
            // Build: right rows bucketed by their own dictionary code.
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); rd.len()];
            for (row, &c) in rc.iter().enumerate() {
                buckets[c as usize].push(row as u32);
            }
            // One string lookup per *distinct* left value, then every
            // probe is two u32 indexed loads.
            let translate: Vec<Option<u32>> =
                (0..ld.len()).map(|c| rd.code_of(ld.get(c as u32))).collect();
            for (row, &c) in lc.iter().enumerate() {
                if let Some(r_code) = translate[c as usize] {
                    emit(row as u32, &buckets[r_code as usize]);
                }
            }
        }
        // An integer value never equals a text value under the total
        // `Value` order: the join is empty.
        (ColumnView::Int(_), ColumnView::Text { .. })
        | (ColumnView::Text { .. }, ColumnView::Int(_)) => {}
    }
    (l_rows, r_rows)
}

fn joined_schema(left: &Schema, right: &Schema) -> Result<Schema, RelationError> {
    let taken: HashSet<&str> = left.attrs().iter().map(|a| a.name.as_str()).collect();
    let mut builder = Schema::builder();
    for (i, attr) in left.attrs().iter().enumerate() {
        builder = add_attr(builder, attr, &attr.name, i == left.key_index());
    }
    for attr in right.attrs() {
        let name = if taken.contains(attr.name.as_str()) {
            let renamed = format!("{}_r", attr.name);
            if taken.contains(renamed.as_str()) {
                return Err(RelationError::InvalidSchema(format!(
                    "cannot rename right attribute {:?}: {renamed:?} also exists on the left",
                    attr.name
                )));
            }
            renamed
        } else {
            attr.name.clone()
        };
        builder = add_attr(builder, attr, &name, false);
    }
    builder.build()
}

fn add_attr(
    builder: crate::SchemaBuilder,
    attr: &AttrDef,
    name: &str,
    is_key: bool,
) -> crate::SchemaBuilder {
    if is_key {
        builder.key_attr(name, attr.ty)
    } else if attr.categorical {
        builder.categorical_attr(name, attr.ty)
    } else {
        builder.attr(name, attr.ty)
    }
}

/// One group of a group-by-count: the grouping value and how many rows
/// carry it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCount {
    /// The grouping attribute's value.
    pub value: Value,
    /// Number of rows in the group.
    pub count: u64,
}

/// `SELECT attr, COUNT(*) GROUP BY attr`, descending by count with the
/// grouping value as a deterministic tie-break.
///
/// # Errors
///
/// [`RelationError::UnknownAttr`] when `attr` does not exist.
pub fn group_count(rel: &Relation, attr: &str) -> Result<Vec<GroupCount>, RelationError> {
    let idx = rel.schema().index_of(attr)?;
    // Count on the column's typed storage: integers hash `i64`s, text
    // counts per dictionary code (one String materialization per
    // *distinct* value, not per row).
    let mut groups: Vec<GroupCount> = match rel.column(idx) {
        crate::ColumnView::Int(xs) => {
            let mut counts: HashMap<i64, u64> = HashMap::new();
            for &x in xs {
                *counts.entry(x).or_insert(0) += 1;
            }
            counts
                .into_iter()
                .map(|(value, count)| GroupCount { value: Value::Int(value), count })
                .collect()
        }
        crate::ColumnView::Text { codes, dict } => {
            let mut per_code = vec![0u64; dict.len()];
            for &c in codes {
                per_code[c as usize] += 1;
            }
            per_code
                .into_iter()
                .enumerate()
                .filter(|&(_, count)| count > 0)
                .map(|(c, count)| GroupCount {
                    value: Value::Text(dict.get(c as u32).to_owned()),
                    count,
                })
                .collect()
        }
    };
    groups.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
    Ok(groups)
}

/// `SELECT group_attr, COUNT(DISTINCT distinct_attr) GROUP BY
/// group_attr`, with the same ordering as [`group_count`].
///
/// # Errors
///
/// [`RelationError::UnknownAttr`] when either attribute is unknown.
pub fn group_count_distinct(
    rel: &Relation,
    group_attr: &str,
    distinct_attr: &str,
) -> Result<Vec<GroupCount>, RelationError> {
    let g_idx = rel.schema().index_of(group_attr)?;
    let d_idx = rel.schema().index_of(distinct_attr)?;
    // Both columns as dense codes: the per-row work is then pure
    // integer set insertion; Values materialize once per distinct
    // group, not once per row.
    let (g_codes, g_values) = crate::query::dense_codes(rel, g_idx);
    let (d_codes, _) = crate::query::dense_codes(rel, d_idx);
    let mut sets: Vec<HashSet<u32>> = vec![HashSet::new(); g_values.len()];
    for (&g, &d) in g_codes.iter().zip(&d_codes) {
        sets[g as usize].insert(d);
    }
    let mut groups: Vec<GroupCount> = sets
        .into_iter()
        .zip(g_values)
        .filter(|(set, _)| !set.is_empty()) // dictionary entries no row uses
        .map(|(set, value)| GroupCount { value, count: set.len() as u64 })
        .collect();
    groups.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
    Ok(groups)
}

/// Duplicate elimination over entire tuples, keeping first occurrences
/// in row order. Rows are compared in code space — one `u64` per
/// attribute (raw integer bits, or the text column's dictionary code,
/// both injective within a single relation) — and the survivors are
/// gathered by column copies that reuse the source dictionaries.
#[must_use]
pub fn distinct(rel: &Relation) -> Relation {
    let views: Vec<ColumnView<'_>> = (0..rel.schema().arity()).map(|i| rel.column(i)).collect();
    let mut seen: HashSet<Box<[u64]>> = HashSet::with_capacity(rel.len());
    let mut keep: Vec<u32> = Vec::new();
    let mut scratch: Vec<u64> = vec![0; views.len()];
    for row in 0..rel.len() {
        for (slot, view) in scratch.iter_mut().zip(&views) {
            *slot = match view {
                ColumnView::Int(xs) => xs[row] as u64,
                ColumnView::Text { codes, .. } => u64::from(codes[row]),
            };
        }
        if !seen.contains(scratch.as_slice()) {
            seen.insert(scratch.clone().into_boxed_slice());
            keep.push(row as u32);
        }
    }
    rel.gather_u32(&keep)
}

/// Rows of `a` whose primary key does not appear in `b` — the
/// key-level multiset difference `a ∖ b`.
///
/// # Errors
///
/// [`RelationError::InvalidSchema`] when the key attributes have
/// different types (the comparison would be vacuous).
pub fn difference_by_key(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    check_key_types(a, b)?;
    let rows = rows_by_key_membership(a, b, false);
    Ok(a.gather(&rows))
}

/// Rows of `a` whose primary key *does* appear in `b` — the key-level
/// intersection.
///
/// # Errors
///
/// [`RelationError::InvalidSchema`] when the key attributes have
/// different types.
pub fn intersect_by_key(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    check_key_types(a, b)?;
    let rows = rows_by_key_membership(a, b, true);
    Ok(a.gather(&rows))
}

/// Rows of `a` whose key's membership in `b`'s key multiset equals
/// `want`. Membership is evaluated on typed storage: integers through
/// an `i64` set, text by translating `b`'s distinct keys into `a`'s
/// dictionary codes once (a `b` key foreign to `a`'s dictionary
/// matches no row).
fn rows_by_key_membership(a: &Relation, b: &Relation, want: bool) -> Vec<usize> {
    let a_key = a.schema().key_index();
    let b_key = b.schema().key_index();
    match (a.column(a_key), b.column(b_key)) {
        (crate::ColumnView::Int(av), crate::ColumnView::Int(bv)) => {
            let b_keys: HashSet<i64> = bv.iter().copied().collect();
            av.iter()
                .enumerate()
                .filter(|(_, x)| b_keys.contains(x) == want)
                .map(|(row, _)| row)
                .collect()
        }
        (
            crate::ColumnView::Text { codes: ac, dict: ad },
            crate::ColumnView::Text { codes: bc, dict: bd },
        ) => {
            let mut b_used = vec![false; bd.len()];
            for &c in bc {
                b_used[c as usize] = true;
            }
            let b_codes_in_a: HashSet<u32> = b_used
                .iter()
                .enumerate()
                .filter(|(_, &used)| used)
                .filter_map(|(c, _)| ad.code_of(bd.get(c as u32)))
                .collect();
            ac.iter()
                .enumerate()
                .filter(|(_, c)| b_codes_in_a.contains(c) == want)
                .map(|(row, _)| row)
                .collect()
        }
        // check_key_types guarantees equal key types.
        _ => unreachable!("key types were checked equal"),
    }
}

fn check_key_types(a: &Relation, b: &Relation) -> Result<(), RelationError> {
    let a_ty = a.schema().key_attr().ty;
    let b_ty = b.schema().key_attr().ty;
    if a_ty == b_ty {
        Ok(())
    } else {
        Err(RelationError::InvalidSchema(format!("key types differ: {a_ty} vs {b_ty}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema};

    fn sales(n: i64) -> Relation {
        let schema = Schema::builder()
            .key_attr("visit", AttrType::Integer)
            .categorical_attr("item", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::with_capacity(schema, n as usize);
        for i in 0..n {
            rel.push(vec![Value::Int(i), Value::Int(100 + i % 5)]).unwrap();
        }
        rel
    }

    fn catalog() -> Relation {
        let schema = Schema::builder()
            .key_attr("item", AttrType::Integer)
            .categorical_attr("dept", AttrType::Text)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for (i, dept) in [(100, "dairy"), (101, "dairy"), (102, "bakery"), (103, "deli")] {
            rel.push(vec![Value::Int(i), Value::Text(dept.to_owned())]).unwrap();
        }
        rel
    }

    #[test]
    fn join_matches_and_renames() {
        let s = sales(20);
        let c = catalog();
        let joined = hash_join(&s, &c, "item", "item").unwrap();
        // Item 104 has no catalog row: 4 of 20 sales rows drop out.
        assert_eq!(joined.len(), 16);
        let names: Vec<&str> = joined.schema().attrs().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["visit", "item", "item_r", "dept"]);
        // Join attribute values agree on every output row.
        let item = joined.schema().index_of("item").unwrap();
        let item_r = joined.schema().index_of("item_r").unwrap();
        assert!(joined.iter().all(|t| t.get(item) == t.get(item_r)));
    }

    #[test]
    fn join_key_and_categorical_flags_survive() {
        let joined = hash_join(&sales(5), &catalog(), "item", "item").unwrap();
        assert_eq!(joined.schema().key_attr().name, "visit");
        let dept = joined.schema().index_of("dept").unwrap();
        assert!(joined.schema().attr(dept).categorical);
    }

    #[test]
    fn join_is_one_to_many_safe() {
        // Two catalog rows for item 100 → sales rows for 100 fan out.
        let s = sales(5); // items 100..104, one row each
        let mut c = catalog();
        c.push_unchecked_key(vec![Value::Int(100), Value::Text("organic".into())]).unwrap();
        let joined = hash_join(&s, &c, "item", "item").unwrap();
        // 4 matched single rows + 1 extra for the duplicated item 100.
        assert_eq!(joined.len(), 5);
    }

    #[test]
    fn join_unknown_attr_errors() {
        let s = sales(3);
        let c = catalog();
        assert!(hash_join(&s, &c, "nope", "item").is_err());
        assert!(hash_join(&s, &c, "item", "nope").is_err());
    }

    #[test]
    fn join_on_empty_side_is_empty() {
        let s = sales(10);
        let empty = Relation::new(catalog().schema().clone());
        assert!(hash_join(&s, &empty, "item", "item").unwrap().is_empty());
        let empty_left = Relation::new(s.schema().clone());
        assert!(hash_join(&empty_left, &catalog(), "item", "item").unwrap().is_empty());
    }

    #[test]
    fn group_count_orders_by_count_then_value() {
        let rel = sales(17); // items 100..104: counts 4,4,3,3,3
        let groups = group_count(&rel, "item").unwrap();
        assert_eq!(groups.len(), 5);
        assert_eq!(groups[0], GroupCount { value: Value::Int(100), count: 4 });
        assert_eq!(groups[1], GroupCount { value: Value::Int(101), count: 4 });
        assert!(groups.windows(2).all(|w| w[0].count >= w[1].count));
        let total: u64 = groups.iter().map(|g| g.count).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn group_count_distinct_counts_sets_not_rows() {
        let s = sales(20);
        let c = catalog();
        let joined = hash_join(&s, &c, "item", "item").unwrap();
        let by_dept = group_count_distinct(&joined, "dept", "item").unwrap();
        let dairy = by_dept.iter().find(|g| g.value == Value::Text("dairy".into())).unwrap();
        assert_eq!(dairy.count, 2); // items 100 and 101
    }

    #[test]
    fn distinct_removes_exact_duplicates_only() {
        let mut rel = sales(4);
        rel.push_unchecked_key(vec![Value::Int(0), Value::Int(100)]).unwrap(); // dup of row 0
        rel.push_unchecked_key(vec![Value::Int(0), Value::Int(101)]).unwrap(); // same key, diff item
        let d = distinct(&rel);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn difference_and_intersection_partition_by_key() {
        let a = sales(10);
        let b = sales(4);
        let diff = difference_by_key(&a, &b).unwrap();
        let inter = intersect_by_key(&a, &b).unwrap();
        assert_eq!(diff.len(), 6);
        assert_eq!(inter.len(), 4);
        assert_eq!(diff.len() + inter.len(), a.len());
        assert!(diff.column_iter(0).all(|v| v.as_int().unwrap() >= 4));
    }

    #[test]
    fn difference_requires_compatible_key_types() {
        let a = sales(3);
        let other = Schema::builder()
            .key_attr("visit", AttrType::Text)
            .categorical_attr("item", AttrType::Integer)
            .build()
            .unwrap();
        let b = Relation::new(other);
        assert!(difference_by_key(&a, &b).is_err());
        assert!(intersect_by_key(&a, &b).is_err());
    }

    #[test]
    fn rename_collision_with_existing_suffix_errors() {
        let left = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .attr("x", AttrType::Integer)
            .attr("x_r", AttrType::Integer)
            .build()
            .unwrap();
        let right = Schema::builder().key_attr("x", AttrType::Integer).build().unwrap();
        let l = Relation::new(left);
        let r = Relation::new(right);
        assert!(matches!(hash_join(&l, &r, "k", "x"), Err(RelationError::InvalidSchema(_))));
    }
}
