//! Categorical value domains — the paper's `{a_1, …, a_nA}` sets.
//!
//! A categorical attribute `A` draws values from a finite set of `nA`
//! possibilities that "are distinct and can be sorted (e.g. by ASCII
//! value)". The embedding algorithm needs a *stable bijection* between
//! domain values and indices `t ∈ [0, nA)` — the watermark bit rides on
//! the least-significant bit of `t`. This module provides that
//! bijection, kept deterministic by sorting.
//!
//! The domain is part of the detector's key material: blind detection
//! re-derives `t` from an attribute value via [`CategoricalDomain::index_of`]
//! without consulting the original data.

use std::collections::HashMap;

use crate::{Relation, RelationError, Value};

/// A finite, sorted categorical value domain with O(1) value→index
/// lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalDomain {
    values: Vec<Value>,
    index: HashMap<Value, usize>,
}

impl CategoricalDomain {
    /// Domain over the given values; duplicates are removed and the
    /// result is sorted into the canonical order.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when fewer than two distinct
    /// values remain — a single-valued attribute carries no embedding
    /// bandwidth (the paper: a one-value attribute "would upset the fit
    /// tuple selection algorithm").
    pub fn new(mut values: Vec<Value>) -> Result<Self, RelationError> {
        values.sort();
        values.dedup();
        if values.len() < 2 {
            return Err(RelationError::InvalidSchema(format!(
                "categorical domain needs at least 2 distinct values, got {}",
                values.len()
            )));
        }
        let index = values.iter().enumerate().map(|(i, v)| (v.clone(), i)).collect();
        Ok(CategoricalDomain { values, index })
    }

    /// Domain of all distinct values observed in attribute `attr_idx`
    /// of `rel`.
    ///
    /// Convenient but *attack-sensitive*: deriving the domain from
    /// suspect data means an attacker who removed all tuples carrying
    /// some value also shrinks the domain and shifts indices. Rights
    /// holders should persist the embed-time domain (it is part of
    /// `WatermarkSpec` in `catmark-core`).
    ///
    /// # Errors
    ///
    /// Same as [`CategoricalDomain::new`].
    pub fn from_column(rel: &Relation, attr_idx: usize) -> Result<Self, RelationError> {
        match rel.column(attr_idx) {
            crate::ColumnView::Int(xs) => {
                let mut distinct: Vec<i64> = xs.to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                Self::new(distinct.into_iter().map(Value::Int).collect())
            }
            crate::ColumnView::Text { codes, dict } => {
                // Dictionaries may hold entries no row references any
                // more; collect only the codes actually in use.
                let mut used = vec![false; dict.len()];
                for &c in codes {
                    used[c as usize] = true;
                }
                Self::new(
                    used.iter()
                        .enumerate()
                        .filter(|(_, &u)| u)
                        .map(|(c, _)| Value::Text(dict.get(c as u32).to_owned()))
                        .collect(),
                )
            }
        }
    }

    /// Number of values `nA`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty (never true for a constructed
    /// domain; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Index `t` of `value`, i.e. the position with `a_t == value`.
    ///
    /// # Errors
    ///
    /// [`RelationError::ValueNotInDomain`] for foreign values (e.g.
    /// after an A6 remapping attack).
    pub fn index_of(&self, value: &Value) -> Result<usize, RelationError> {
        self.index.get(value).copied().ok_or_else(|| RelationError::ValueNotInDomain(value.clone()))
    }

    /// Index of `value` as a compact code, `None` for foreign values.
    ///
    /// The non-erroring twin of [`CategoricalDomain::index_of`] for
    /// vote-counting hot paths: foreign values are *expected* there
    /// (every fit tuple of a remapped relation produces one), and the
    /// error path would clone the value into a `RelationError` per
    /// occurrence.
    #[must_use]
    pub fn code_of(&self, value: &Value) -> Option<u32> {
        self.index.get(value).map(|&i| i as u32)
    }

    /// Domain code of a text value without materializing a [`Value`].
    #[must_use]
    pub fn code_of_text(&self, s: &str) -> Option<u32> {
        // A transient owned Value is required for the map lookup; this
        // runs once per *distinct* dictionary entry, not per row.
        self.index.get(&Value::Text(s.to_owned())).map(|&i| i as u32)
    }

    /// Per-dictionary-entry domain codes: position `c` holds the
    /// domain index of `dict` entry `c` (`None` for foreign values).
    ///
    /// This is the decode hot path's translation table — computed once
    /// per (domain, column) pair, it resolves every row of a text
    /// column by a single `u32` index instead of a string hash.
    #[must_use]
    pub fn dict_codes(&self, dict: &crate::Dictionary) -> Vec<Option<u32>> {
        dict.entries().iter().map(|s| self.code_of_text(s)).collect()
    }

    /// Interned-code view of one column: each row's value replaced by
    /// its domain code (`None` where the value is foreign).
    ///
    /// With columnar storage this is a per-distinct-value translation:
    /// text rows resolve through [`CategoricalDomain::dict_codes`],
    /// integer rows through a per-distinct memo.
    #[must_use]
    pub fn intern_column(&self, rel: &Relation, attr_idx: usize) -> Vec<Option<u32>> {
        match rel.column(attr_idx) {
            crate::ColumnView::Int(xs) => {
                let mut memo: std::collections::HashMap<i64, Option<u32>> =
                    std::collections::HashMap::new();
                xs.iter()
                    .map(|&x| *memo.entry(x).or_insert_with(|| self.code_of(&Value::Int(x))))
                    .collect()
            }
            crate::ColumnView::Text { codes, dict } => {
                let table = self.dict_codes(dict);
                codes.iter().map(|&c| table[c as usize]).collect()
            }
        }
    }

    /// Value `a_t` at index `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t >= nA`; encoder-produced indices are always in
    /// range.
    #[must_use]
    pub fn value_at(&self, t: usize) -> &Value {
        &self.values[t]
    }

    /// All values in canonical (sorted) order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of bits needed to represent an index, the paper's
    /// `b(nA)`.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        usize::BITS - (self.values.len() - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema};

    fn domain() -> CategoricalDomain {
        CategoricalDomain::new(vec![
            Value::Text("chicago".into()),
            Value::Text("san jose".into()),
            Value::Text("austin".into()),
            Value::Text("boston".into()),
        ])
        .unwrap()
    }

    #[test]
    fn sorted_and_bijective() {
        let d = domain();
        assert_eq!(d.len(), 4);
        // Sorted order: austin, boston, chicago, san jose.
        assert_eq!(d.value_at(0), &Value::Text("austin".into()));
        for t in 0..d.len() {
            assert_eq!(d.index_of(d.value_at(t)).unwrap(), t);
        }
    }

    #[test]
    fn deduplicates() {
        let d = CategoricalDomain::new(vec![Value::Int(1), Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_tiny_domains() {
        assert!(CategoricalDomain::new(vec![]).is_err());
        assert!(CategoricalDomain::new(vec![Value::Int(1)]).is_err());
        assert!(CategoricalDomain::new(vec![Value::Int(1), Value::Int(1)]).is_err());
    }

    #[test]
    fn code_of_agrees_with_index_of() {
        let d = domain();
        for t in 0..d.len() {
            assert_eq!(d.code_of(d.value_at(t)), Some(t as u32));
        }
        assert_eq!(d.code_of(&Value::Text("paris".into())), None);
    }

    #[test]
    fn intern_column_maps_rows_to_codes() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("city", AttrType::Text)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for (k, city) in [(1, "boston"), (2, "paris"), (3, "austin")] {
            rel.push(vec![Value::Int(k), Value::Text(city.into())]).unwrap();
        }
        let d = domain();
        let codes = rel.column_iter(1).map(|v| d.code_of(&v)).collect::<Vec<_>>();
        assert_eq!(d.intern_column(&rel, 1), codes);
        assert_eq!(codes, vec![Some(1), None, Some(0)]);
    }

    #[test]
    fn foreign_value_errors() {
        let d = domain();
        assert!(matches!(
            d.index_of(&Value::Text("paris".into())),
            Err(RelationError::ValueNotInDomain(_))
        ));
    }

    #[test]
    fn index_bits_matches_definition() {
        // b(nA) = bits required to represent indices 0..nA-1.
        let cases = [(2, 1), (3, 2), (4, 2), (5, 3), (16, 4), (17, 5), (16000, 14)];
        for (n, bits) in cases {
            let d = CategoricalDomain::new((0..n).map(|i| Value::Int(i as i64)).collect()).unwrap();
            assert_eq!(d.index_bits(), bits, "nA={n}");
        }
    }

    #[test]
    fn from_column_collects_distinct_values() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for (k, a) in [(1, 10), (2, 20), (3, 10), (4, 30)] {
            rel.push(vec![Value::Int(k), Value::Int(a)]).unwrap();
        }
        let d = CategoricalDomain::from_column(&rel, 1).unwrap();
        assert_eq!(d.values(), &[Value::Int(10), Value::Int(20), Value::Int(30)]);
    }

    #[test]
    fn construction_order_is_irrelevant() {
        let a = CategoricalDomain::new(vec![Value::Int(3), Value::Int(1), Value::Int(2)]).unwrap();
        let b = CategoricalDomain::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]).unwrap();
        assert_eq!(a, b);
    }
}
