//! In-memory relational substrate for `catmark`.
//!
//! The watermarking algorithms of *Proving Ownership over Categorical
//! Data* (Sion, ICDE 2004) operate on relations of shape `(K, A, B)` — a
//! primary key plus categorical attributes. The paper ran against a
//! Wal-Mart sales database behind JDBC; this crate is the stand-in
//! substrate: a small, fully-tested relational engine providing exactly
//! the operations the watermarking pipeline and the adversary model
//! need:
//!
//! * typed values and schemas with primary-key designation ([`value`],
//!   [`schema`], [`mod@tuple`]),
//! * a primary-key-indexed table with in-place attribute updates
//!   ([`relation`]),
//! * categorical value domains with stable, sortable indexing
//!   ([`domain`]) — the `{a_1 … a_nA}` sets of the paper,
//! * selection / projection / sorting / sampling operators ([`ops`]) —
//!   the raw material of attacks A1/A4/A5,
//! * joins, grouping and multiset operators ([`join`]) — the queries
//!   legitimate consumers run, used by quality constraints,
//! * occurrence-frequency statistics ([`stats`]) — the
//!   frequency-transform channel of Section 4.2,
//! * simple predicates for quality constraints ([`predicate`]) and
//!   their column-native compiled form ([`query`]) — name resolution,
//!   literal interning and type folding done once, evaluation over
//!   flat column slices into reusable selection vectors,
//! * segmented spill-to-disk storage for relations beyond RAM
//!   ([`segment`]) — fixed-size columnar segments with segment-local
//!   dictionaries and shared merge maps, streamed under a resident
//!   budget through range-addressed byte stores ([`spill`]),
//! * content-addressed versioned storage ([`versioned`]) — SHA-256
//!   keyed blob piles with `CMKVER1` manifest commit logs, so relation
//!   versions share unchanged segment blobs and any historical version
//!   reopens for detection,
//! * delta-encoded marked copies ([`delta`]) — ordered patch records
//!   (plus dictionary extensions) turning a shared base into any
//!   recipient's fingerprinted copy without materializing a clone,
//! * CSV import/export for interoperability ([`csv`]).
//!
//! # Example
//!
//! ```
//! use catmark_relation::{Relation, Schema, AttrType, Value};
//!
//! let schema = Schema::builder()
//!     .key_attr("visit_nbr", AttrType::Integer)
//!     .categorical_attr("item_nbr", AttrType::Integer)
//!     .build()
//!     .unwrap();
//! let mut rel = Relation::new(schema);
//! rel.push(vec![Value::Int(1), Value::Int(42)]).unwrap();
//! rel.push(vec![Value::Int(2), Value::Int(17)]).unwrap();
//! assert_eq!(rel.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod delta;
pub mod domain;
pub mod error;
pub mod join;
pub mod ops;
pub mod predicate;
pub mod query;
pub mod relation;
pub mod schema;
pub mod segment;
pub mod spill;
pub mod stats;
pub mod tuple;
pub mod value;
pub mod versioned;

pub use column::{Column, ColumnMut, ColumnView, Dictionary, TextColumnMut};
pub use delta::{MarkDelta, MarkDeltaBuilder};
pub use domain::CategoricalDomain;
pub use error::RelationError;
pub use predicate::Predicate;
pub use query::{CompiledPredicate, RowMask, SelectionVector};
pub use relation::Relation;
pub use schema::{AttrDef, AttrType, Schema, SchemaBuilder};
pub use segment::{CacheStats, SegmentedRelation, SegmentedRelationBuilder};
pub use spill::{FileStore, MemStore, SegmentStore, SpillHandle};
pub use stats::FrequencyHistogram;
pub use tuple::Tuple;
pub use value::{CanonicalInt, CanonicalText, Value};
pub use versioned::{
    hash_hex, BlobHash, ContentStore, GcStats, SegmentRef, VersionLog, VersionManifest,
};
