//! The primary-key-indexed table at the center of the substrate.

use std::collections::HashMap;

use crate::{RelationError, Schema, Tuple, Value};

/// An in-memory relation: a schema plus tuples, with a hash index on
/// the primary key.
///
/// The index supports the embedding algorithms' per-tuple key hashing
/// and the incremental-update path of Section 4.3 ("as updates occur to
/// the data, the resulting tuples can be evaluated on the fly for
/// fitness and watermarked accordingly").
///
/// Duplicate primary keys are rejected at insertion. Attacked data can
/// violate key constraints (e.g. after A2 subset addition with reused
/// keys); such data can be represented with [`Relation::push_unchecked_key`],
/// which keeps the first index entry and is documented to do so.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
    /// Primary key value → row position of its first occurrence.
    key_index: HashMap<Value, usize>,
}

impl Relation {
    /// Empty relation over `schema`.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Relation { schema, tuples: Vec::new(), key_index: HashMap::new() }
    }

    /// Empty relation with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        Relation {
            schema,
            tuples: Vec::with_capacity(capacity),
            key_index: HashMap::with_capacity(capacity),
        }
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples (the paper's `N`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple, validating schema conformance and key uniqueness.
    ///
    /// # Errors
    ///
    /// Arity/type mismatches and [`RelationError::DuplicateKey`].
    pub fn push(&mut self, values: Vec<Value>) -> Result<usize, RelationError> {
        self.schema.check_tuple(&values)?;
        let key = values[self.schema.key_index()].clone();
        if self.key_index.contains_key(&key) {
            return Err(RelationError::DuplicateKey(key));
        }
        let row = self.tuples.len();
        self.key_index.insert(key, row);
        self.tuples.push(Tuple::new(values));
        Ok(row)
    }

    /// Append a tuple validating types but tolerating duplicate keys.
    ///
    /// Attacked data may not satisfy the key constraint; the index
    /// keeps the *first* row for any duplicated key value.
    ///
    /// # Errors
    ///
    /// Arity/type mismatches only.
    pub fn push_unchecked_key(&mut self, values: Vec<Value>) -> Result<usize, RelationError> {
        self.schema.check_tuple(&values)?;
        let key = values[self.schema.key_index()].clone();
        let row = self.tuples.len();
        self.key_index.entry(key).or_insert(row);
        self.tuples.push(Tuple::new(values));
        Ok(row)
    }

    /// Tuple at `row`.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowOutOfBounds`].
    pub fn tuple(&self, row: usize) -> Result<&Tuple, RelationError> {
        self.tuples.get(row).ok_or(RelationError::RowOutOfBounds { row, len: self.tuples.len() })
    }

    /// Iterate over tuples in row order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Row of the tuple whose primary key equals `key` (first
    /// occurrence when duplicates were admitted).
    #[must_use]
    pub fn find_by_key(&self, key: &Value) -> Option<usize> {
        self.key_index.get(key).copied()
    }

    /// Replace the value of attribute `attr_idx` in row `row`,
    /// returning the previous value.
    ///
    /// Updating the primary-key attribute itself keeps the index
    /// consistent.
    ///
    /// # Errors
    ///
    /// Out-of-bounds row, type mismatch, or (for key updates) duplicate
    /// key.
    pub fn update_value(
        &mut self,
        row: usize,
        attr_idx: usize,
        value: Value,
    ) -> Result<Value, RelationError> {
        if row >= self.tuples.len() {
            return Err(RelationError::RowOutOfBounds { row, len: self.tuples.len() });
        }
        let attr = self.schema.attr(attr_idx);
        if !attr.ty.admits(&value) {
            return Err(RelationError::TypeMismatch {
                attr: attr.name.clone(),
                expected: attr.ty.name(),
                value,
            });
        }
        if attr_idx == self.schema.key_index() {
            let old_key = self.tuples[row].get(attr_idx).clone();
            if value != old_key {
                if self.key_index.contains_key(&value) {
                    return Err(RelationError::DuplicateKey(value));
                }
                self.key_index.remove(&old_key);
                self.key_index.insert(value.clone(), row);
            }
        }
        Ok(self.tuples[row].set(attr_idx, value))
    }

    /// All values of attribute `attr_idx`, in row order, **borrowed**.
    ///
    /// Historically this cloned every value; column extraction sits
    /// under domain construction, attack-invariance checks, and the
    /// plan layer's key-column fingerprinting, none of which need
    /// ownership. Callers that do can `.into_iter().cloned()`.
    #[must_use]
    pub fn column(&self, attr_idx: usize) -> Vec<&Value> {
        self.tuples.iter().map(|t| t.get(attr_idx)).collect()
    }

    /// Borrowing iterator over one attribute's values.
    pub fn column_iter(&self, attr_idx: usize) -> impl Iterator<Item = &Value> {
        self.tuples.iter().map(move |t| t.get(attr_idx))
    }

    /// Rebuild the key index from scratch (first occurrence wins).
    /// Used by operators that permute rows in place.
    pub(crate) fn rebuild_index(&mut self) {
        let key_pos = self.schema.key_index();
        self.key_index.clear();
        for (row, tuple) in self.tuples.iter().enumerate() {
            self.key_index.entry(tuple.get(key_pos).clone()).or_insert(row);
        }
    }

    /// Mutable access to the raw tuple storage for operators in this
    /// crate; callers must re-establish the index via
    /// [`Relation::rebuild_index`].
    pub(crate) fn tuples_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.tuples
    }

    /// Number of distinct primary-key values currently indexed.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        self.key_index.len()
    }

    /// Remove the tuple whose primary key equals `key`, if present.
    /// Returns the removed tuple. Later rows shift down by one
    /// (row indices are positional, not stable identifiers).
    pub fn delete_by_key(&mut self, key: &Value) -> Option<Tuple> {
        let row = self.find_by_key(key)?;
        let removed = self.tuples.remove(row);
        self.rebuild_index();
        Some(removed)
    }

    /// Keep only tuples satisfying `predicate` (in-place `retain`).
    /// Returns the number of deleted tuples.
    pub fn retain(&mut self, mut predicate: impl FnMut(&Tuple) -> bool) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| predicate(t));
        let deleted = before - self.tuples.len();
        if deleted > 0 {
            self.rebuild_index();
        }
        deleted
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.schema.attrs().iter().map(|a| a.name.as_str()).collect();
        writeln!(f, "[{}] ({} tuples)", names.join(", "), self.tuples.len())?;
        for t in self.tuples.iter().take(10) {
            writeln!(f, "  {t}")?;
        }
        if self.tuples.len() > 10 {
            writeln!(f, "  … {} more", self.tuples.len() - 10)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn schema() -> Schema {
        Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Text)
            .build()
            .unwrap()
    }

    fn sample() -> Relation {
        let mut r = Relation::new(schema());
        r.push(vec![Value::Int(1), Value::Text("x".into())]).unwrap();
        r.push(vec![Value::Int(2), Value::Text("y".into())]).unwrap();
        r.push(vec![Value::Int(3), Value::Text("x".into())]).unwrap();
        r
    }

    #[test]
    fn push_and_lookup() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert_eq!(r.find_by_key(&Value::Int(2)), Some(1));
        assert_eq!(r.find_by_key(&Value::Int(9)), None);
    }

    #[test]
    fn rejects_duplicate_keys() {
        let mut r = sample();
        let err = r.push(vec![Value::Int(1), Value::Text("z".into())]);
        assert!(matches!(err, Err(RelationError::DuplicateKey(_))));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn push_unchecked_key_admits_duplicates_first_wins() {
        let mut r = sample();
        r.push_unchecked_key(vec![Value::Int(1), Value::Text("dup".into())]).unwrap();
        assert_eq!(r.len(), 4);
        // Index still points at the original row 0.
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(0));
        assert_eq!(r.distinct_keys(), 3);
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut r = sample();
        let err = r.push(vec![Value::Text("k".into()), Value::Text("z".into())]);
        assert!(matches!(err, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn update_value_swaps_and_returns_old() {
        let mut r = sample();
        let old = r.update_value(0, 1, Value::Text("new".into())).unwrap();
        assert_eq!(old, Value::Text("x".into()));
        assert_eq!(r.tuple(0).unwrap().get(1), &Value::Text("new".into()));
    }

    #[test]
    fn update_key_maintains_index() {
        let mut r = sample();
        r.update_value(0, 0, Value::Int(99)).unwrap();
        assert_eq!(r.find_by_key(&Value::Int(99)), Some(0));
        assert_eq!(r.find_by_key(&Value::Int(1)), None);
    }

    #[test]
    fn update_key_rejects_collision() {
        let mut r = sample();
        let err = r.update_value(0, 0, Value::Int(2));
        assert!(matches!(err, Err(RelationError::DuplicateKey(_))));
        // Original state intact.
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(0));
    }

    #[test]
    fn update_key_to_same_value_is_noop() {
        let mut r = sample();
        r.update_value(0, 0, Value::Int(1)).unwrap();
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(0));
    }

    #[test]
    fn update_rejects_out_of_bounds_and_bad_type() {
        let mut r = sample();
        assert!(matches!(
            r.update_value(99, 1, Value::Text("z".into())),
            Err(RelationError::RowOutOfBounds { .. })
        ));
        assert!(matches!(
            r.update_value(0, 1, Value::Int(5)),
            Err(RelationError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn column_extracts_in_row_order_without_cloning() {
        let r = sample();
        let expected = [Value::Text("x".into()), Value::Text("y".into()), Value::Text("x".into())];
        assert_eq!(r.column(1), expected.iter().collect::<Vec<&Value>>());
        // The borrowed values alias the stored tuples.
        assert!(std::ptr::eq(r.column(1)[0], r.tuple(0).unwrap().get(1)));
    }

    #[test]
    fn delete_by_key_removes_and_reindexes() {
        let mut r = sample();
        let removed = r.delete_by_key(&Value::Int(2)).unwrap();
        assert_eq!(removed.get(1), &Value::Text("y".into()));
        assert_eq!(r.len(), 2);
        assert_eq!(r.find_by_key(&Value::Int(2)), None);
        // Row 1 is now the former row 2.
        assert_eq!(r.find_by_key(&Value::Int(3)), Some(1));
        // Deleting a missing key is a no-op.
        assert!(r.delete_by_key(&Value::Int(99)).is_none());
    }

    #[test]
    fn retain_filters_in_place() {
        let mut r = sample();
        let deleted = r.retain(|t| t.get(1) == &Value::Text("x".into()));
        assert_eq!(deleted, 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.distinct_keys(), 2);
        // Retaining everything touches nothing.
        assert_eq!(r.retain(|_| true), 0);
    }

    #[test]
    fn display_truncates_long_relations() {
        let mut r = Relation::new(schema());
        for i in 0..15 {
            r.push(vec![Value::Int(i), Value::Text("v".into())]).unwrap();
        }
        let s = r.to_string();
        assert!(s.contains("15 tuples"));
        assert!(s.contains("… 5 more"));
    }
}
