//! The primary-key-indexed table at the center of the substrate —
//! columnar edition.
//!
//! # Storage model
//!
//! A [`Relation`] stores one typed [`Column`] per schema attribute:
//! integer attributes as flat `Vec<i64>`, text attributes as `Vec<u32>`
//! codes into a per-column interned [`crate::column::Dictionary`]. The
//! watermarking pipeline — plan builds, embeds, decodes, attacks — is
//! a family of per-tuple scans over one or two attributes, and the
//! columnar layout turns each of those scans into a flat slice walk
//! with no per-row pointer chasing and no per-string allocation.
//! `Relation::clone`, which the attack matrix calls per cell, copies a
//! handful of vectors instead of `N` heap tuples.
//!
//! # Hashing invariant
//!
//! Dictionary codes are *storage*, never *semantics*: every hash the
//! paper's algorithms compute (`H(T_j(K), k)`) is taken over the
//! logical value's canonical bytes exactly as
//! [`Value::canonical_bytes`] defines them — the dictionary entry for
//! text, the big-endian `i64` for integers, each behind its type tag.
//! Relations with equal logical content therefore hash identically no
//! matter how their dictionaries are laid out, and the columnar engine
//! is byte-identical to the historical row store (pinned by the golden
//! byte-identity tests). What the layout *adds* is memoization ground:
//! a keyed-hash pass over a text column hashes each **distinct** value
//! once per plan instead of once per row.
//!
//! # Row views
//!
//! The external model of the paper is unchanged: [`Relation::tuple`]
//! and [`Relation::iter`] materialize cheap row-shaped [`Tuple`] views
//! for tests, CSV, predicates, and other cold paths. Hot paths use
//! [`Relation::column`] / [`Relation::column_mut`] for borrowed typed
//! slices.
//!
//! The index supports the embedding algorithms' per-tuple key hashing
//! and the incremental-update path of Section 4.3. Duplicate primary
//! keys are rejected at insertion; attacked data can violate key
//! constraints, which [`Relation::push_unchecked_key`] admits (the
//! index keeps the first occurrence).

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::column::{Column, ColumnMut, ColumnView, TextColumnMut};
use crate::{RelationError, Schema, Tuple, Value};

/// An in-memory relation: a schema plus typed columns, with a hash
/// index on the primary key.
///
/// The key index is *derived data*, built lazily on the first keyed
/// lookup and dropped by [`Clone`]: cloning a relation is therefore a
/// handful of flat column copies (the attack matrix clones per cell),
/// and bulk constructors ([`Relation::gather`],
/// [`Relation::from_columns`]) never pay for an index their consumer
/// may not need.
#[derive(Debug)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
    /// Lazily built: primary key value → row position of its first
    /// occurrence.
    key_index: OnceLock<HashMap<Value, usize>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // The index is derivable from the columns; dropping it keeps
        // clones at memcpy cost and it rebuilds on first keyed lookup.
        Relation {
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            len: self.len,
            key_index: OnceLock::new(),
        }
    }
}

impl Relation {
    /// Empty relation over `schema`.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Relation::with_capacity(schema, 0)
    }

    /// Empty relation with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let columns =
            schema.attrs().iter().map(|a| Column::with_capacity(a.ty, capacity)).collect();
        Relation { schema, columns, len: 0, key_index: OnceLock::new() }
    }

    /// The key index, built on first use (first occurrence wins).
    fn index(&self) -> &HashMap<Value, usize> {
        self.key_index.get_or_init(|| {
            let mut index = HashMap::with_capacity(self.len);
            let key_view = self.columns[self.schema.key_index()].view();
            match key_view {
                ColumnView::Int(xs) => {
                    for (row, &x) in xs.iter().enumerate() {
                        index.entry(Value::Int(x)).or_insert(row);
                    }
                }
                ColumnView::Text { codes, dict } => {
                    for (row, &c) in codes.iter().enumerate() {
                        index.entry(Value::Text(dict.get(c).to_owned())).or_insert(row);
                    }
                }
            }
            index
        })
    }

    /// Drop the derived index (after bulk row mutation); it rebuilds
    /// lazily.
    fn invalidate_index(&mut self) {
        self.key_index = OnceLock::new();
    }

    /// Relation assembled directly from columns — the zero-copy
    /// construction path for generators and bulk operators. Key
    /// semantics match [`Relation::push_unchecked_key`]: duplicate
    /// keys are admitted and the index keeps each key's first row.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when the column count, a
    /// column's type, or the column lengths do not line up with
    /// `schema`.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self, RelationError> {
        if columns.len() != schema.arity() {
            return Err(RelationError::InvalidSchema(format!(
                "{} columns for a schema of arity {}",
                columns.len(),
                schema.arity()
            )));
        }
        for (attr, column) in schema.attrs().iter().zip(&columns) {
            if attr.ty != column.ty() {
                return Err(RelationError::InvalidSchema(format!(
                    "column for {:?} holds {} values, schema declares {}",
                    attr.name,
                    column.ty().name(),
                    attr.ty.name()
                )));
            }
        }
        let len = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != len) {
            return Err(RelationError::InvalidSchema("columns differ in length".into()));
        }
        for (attr, column) in schema.attrs().iter().zip(&columns) {
            if let Column::Text { codes, dict } = column {
                if codes.iter().any(|&c| (c as usize) >= dict.len()) {
                    return Err(RelationError::InvalidSchema(format!(
                        "column for {:?} holds codes outside its dictionary",
                        attr.name
                    )));
                }
            }
        }
        Ok(Relation { schema, columns, len, key_index: OnceLock::new() })
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples (the paper's `N`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a tuple, validating schema conformance and key uniqueness.
    ///
    /// # Errors
    ///
    /// Arity/type mismatches and [`RelationError::DuplicateKey`].
    pub fn push(&mut self, values: Vec<Value>) -> Result<usize, RelationError> {
        self.schema.check_tuple(&values)?;
        let key = &values[self.schema.key_index()];
        if self.index().contains_key(key) {
            return Err(RelationError::DuplicateKey(key.clone()));
        }
        Ok(self.push_columns(values))
    }

    /// Append a tuple validating types but tolerating duplicate keys.
    ///
    /// Attacked data may not satisfy the key constraint; the index
    /// keeps the *first* row for any duplicated key value.
    ///
    /// # Errors
    ///
    /// Arity/type mismatches only.
    pub fn push_unchecked_key(&mut self, values: Vec<Value>) -> Result<usize, RelationError> {
        self.schema.check_tuple(&values)?;
        Ok(self.push_columns(values))
    }

    /// Type-checked append: write each value into its column; when
    /// the lazy index is materialized, keep it consistent (first
    /// occurrence wins).
    fn push_columns(&mut self, values: Vec<Value>) -> usize {
        let row = self.len;
        if self.key_index.get().is_some() {
            let key = values[self.schema.key_index()].clone();
            if let Some(index) = self.key_index.get_mut() {
                index.entry(key).or_insert(row);
            }
        }
        for (column, value) in self.columns.iter_mut().zip(&values) {
            column.push_value(value);
        }
        self.len += 1;
        row
    }

    /// Materialize the tuple at `row`.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowOutOfBounds`].
    pub fn tuple(&self, row: usize) -> Result<Tuple, RelationError> {
        if row >= self.len {
            return Err(RelationError::RowOutOfBounds { row, len: self.len });
        }
        Ok(Tuple::new(self.columns.iter().map(|c| c.value(row)).collect()))
    }

    /// Materialize the value of attribute `attr_idx` at `row`.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowOutOfBounds`].
    pub fn value(&self, row: usize, attr_idx: usize) -> Result<Value, RelationError> {
        if row >= self.len {
            return Err(RelationError::RowOutOfBounds { row, len: self.len });
        }
        Ok(self.columns[attr_idx].value(row))
    }

    /// Iterate over materialized tuples in row order (a cold-path row
    /// view; hot paths should scan [`Relation::column`] slices).
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.len)
            .map(move |row| Tuple::new(self.columns.iter().map(|c| c.value(row)).collect()))
    }

    /// Row of the tuple whose primary key equals `key` (first
    /// occurrence when duplicates were admitted).
    #[must_use]
    pub fn find_by_key(&self, key: &Value) -> Option<usize> {
        self.index().get(key).copied()
    }

    /// Replace the value of attribute `attr_idx` in row `row`,
    /// returning the previous value.
    ///
    /// Updating the primary-key attribute itself keeps the index
    /// consistent.
    ///
    /// # Errors
    ///
    /// Out-of-bounds row, type mismatch, or (for key updates) duplicate
    /// key.
    pub fn update_value(
        &mut self,
        row: usize,
        attr_idx: usize,
        value: Value,
    ) -> Result<Value, RelationError> {
        if row >= self.len {
            return Err(RelationError::RowOutOfBounds { row, len: self.len });
        }
        let attr = self.schema.attr(attr_idx);
        if !attr.ty.admits(&value) {
            return Err(RelationError::TypeMismatch {
                attr: attr.name.clone(),
                expected: attr.ty.name(),
                value,
            });
        }
        if attr_idx == self.schema.key_index() {
            let old_key = self.columns[attr_idx].value(row);
            if value != old_key {
                if self.index().contains_key(&value) {
                    return Err(RelationError::DuplicateKey(value));
                }
                // Duplicate-key data (admitted by push_unchecked_key)
                // may hold `old_key` on other rows, which must become
                // the key's indexed first occurrence; dropping the
                // derived index and letting it rebuild lazily is the
                // only cheap way to stay consistent with what a fresh
                // rebuild (e.g. on a clone) would compute.
                self.invalidate_index();
            }
        }
        Ok(self.columns[attr_idx].set_value(row, value))
    }

    /// Borrowed typed view of attribute `attr_idx` — the columnar
    /// replacement for the historical `Vec<&Value>` accessor. Flat
    /// slices for integers, codes + dictionary for text.
    ///
    /// # Panics
    ///
    /// Panics when `attr_idx` is out of schema range; positions come
    /// from [`Schema::index_of`].
    #[must_use]
    pub fn column(&self, attr_idx: usize) -> ColumnView<'_> {
        self.columns[attr_idx].view()
    }

    /// Swap a text column's storage wholesale (the dictionary
    /// compaction path of segment sealing). The caller guarantees the
    /// new codes/dictionary represent the same logical values row for
    /// row; the derived key index is dropped defensively anyway.
    ///
    /// # Panics
    ///
    /// Panics when `codes` does not cover every row or `attr_idx` is
    /// not a text column.
    pub(crate) fn replace_text_column(
        &mut self,
        attr_idx: usize,
        codes: Vec<u32>,
        dict: crate::Dictionary,
    ) {
        assert_eq!(codes.len(), self.len, "compacted codes must cover every row");
        assert!(
            matches!(self.columns[attr_idx], Column::Text { .. }),
            "only text columns carry dictionaries"
        );
        self.columns[attr_idx] = Column::Text { codes, dict };
        self.invalidate_index();
    }

    /// Mutable typed access to a **non-key** column, for bulk value
    /// rewriting (embedding, alteration attacks). The key column is
    /// refused because slice writes bypass the key index; key updates
    /// go through [`Relation::update_value`].
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] for the key column or an
    /// out-of-range index.
    pub fn column_mut(&mut self, attr_idx: usize) -> Result<ColumnMut<'_>, RelationError> {
        if attr_idx >= self.columns.len() {
            return Err(RelationError::InvalidSchema(format!(
                "attribute index {attr_idx} out of range"
            )));
        }
        if attr_idx == self.schema.key_index() {
            return Err(RelationError::InvalidSchema(
                "the key column cannot be rewritten in bulk (it backs the key index)".into(),
            ));
        }
        Ok(match &mut self.columns[attr_idx] {
            Column::Int(xs) => ColumnMut::Int(xs),
            Column::Text { codes, dict } => ColumnMut::Text(TextColumnMut { codes, dict }),
        })
    }

    /// Materializing iterator over one attribute's values (cold-path
    /// convenience; hot paths scan [`Relation::column`]).
    pub fn column_iter(&self, attr_idx: usize) -> impl Iterator<Item = Value> + '_ {
        self.columns[attr_idx].view().iter()
    }

    /// New relation holding `rows` (by index, in order) — the bulk
    /// row-selection primitive behind sampling, shuffling and sorting.
    /// The result's key index is lazy, so a gather is pure column
    /// copying.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn gather(&self, rows: &[usize]) -> Relation {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather(rows)).collect();
        Relation {
            schema: self.schema.clone(),
            columns,
            len: rows.len(),
            key_index: OnceLock::new(),
        }
    }

    /// [`Relation::gather`] over `u32` row ids — the form produced by
    /// the query engine's [`crate::SelectionVector`], avoiding a
    /// widening copy of the selection.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn gather_u32(&self, rows: &[u32]) -> Relation {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather_u32(rows)).collect();
        Relation {
            schema: self.schema.clone(),
            columns,
            len: rows.len(),
            key_index: OnceLock::new(),
        }
    }

    /// Append all rows of `other` (duplicate keys tolerated, first
    /// occurrence indexed). Text codes are remapped through this
    /// relation's dictionaries.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when schemas differ.
    pub fn append(&mut self, other: &Relation) -> Result<(), RelationError> {
        if self.schema != other.schema {
            return Err(RelationError::InvalidSchema("append requires identical schemas".into()));
        }
        for (column, ocolumn) in self.columns.iter_mut().zip(&other.columns) {
            column.append(ocolumn);
        }
        self.len += other.len;
        self.invalidate_index();
        Ok(())
    }

    /// Number of distinct primary-key values currently indexed.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        self.index().len()
    }

    /// Remove the tuple whose primary key equals `key`, if present.
    /// Returns the removed tuple. Later rows shift down by one
    /// (row indices are positional, not stable identifiers).
    pub fn delete_by_key(&mut self, key: &Value) -> Option<Tuple> {
        let row = self.find_by_key(key)?;
        let removed = self.tuple(row).expect("indexed row in range");
        for column in &mut self.columns {
            column.remove(row);
        }
        self.len -= 1;
        self.invalidate_index();
        Some(removed)
    }

    /// Keep only tuples satisfying `predicate` (in-place `retain` over
    /// materialized row views). Returns the number of deleted tuples.
    pub fn retain(&mut self, mut predicate: impl FnMut(&Tuple) -> bool) -> usize {
        let keep: Vec<bool> =
            (0..self.len).map(|row| predicate(&self.tuple(row).expect("row in range"))).collect();
        let kept = keep.iter().filter(|&&k| k).count();
        let deleted = self.len - kept;
        if deleted > 0 {
            for column in &mut self.columns {
                column.retain_rows(&keep);
            }
            self.len = kept;
            self.invalidate_index();
        }
        deleted
    }

    /// Approximate resident heap bytes of the storage — the figure
    /// the `columnar` bench scenario reports per tuple and the
    /// out-of-core pager budgets against. Accounts for the column
    /// vectors, the dictionaries' full heap usage (string bytes,
    /// `Arc` refcount headers, entry and index tables), the lazily
    /// built key index, and the per-column struct overhead, so a
    /// resident-memory ceiling asserted over this figure measures
    /// what it claims.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        let columns: usize = self.columns.iter().map(Column::resident_bytes).sum();
        let overhead = self.columns.capacity() * std::mem::size_of::<Column>();
        let index = match self.key_index.get() {
            None => 0,
            Some(index) => {
                let key_heap: usize = index
                    .keys()
                    .map(|k| match k {
                        Value::Int(_) => 0,
                        Value::Text(s) => s.capacity(),
                    })
                    .sum();
                // Entry payload (key + row) plus ~1 byte of hash
                // metadata per slot.
                key_heap
                    + index.capacity()
                        * (std::mem::size_of::<Value>() + std::mem::size_of::<usize>() + 1)
            }
        };
        columns + overhead + index
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.schema.attrs().iter().map(|a| a.name.as_str()).collect();
        writeln!(f, "[{}] ({} tuples)", names.join(", "), self.len)?;
        for t in self.iter().take(10) {
            writeln!(f, "  {t}")?;
        }
        if self.len > 10 {
            writeln!(f, "  … {} more", self.len - 10)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn schema() -> Schema {
        Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Text)
            .build()
            .unwrap()
    }

    fn sample() -> Relation {
        let mut r = Relation::new(schema());
        r.push(vec![Value::Int(1), Value::Text("x".into())]).unwrap();
        r.push(vec![Value::Int(2), Value::Text("y".into())]).unwrap();
        r.push(vec![Value::Int(3), Value::Text("x".into())]).unwrap();
        r
    }

    #[test]
    fn push_and_lookup() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert_eq!(r.find_by_key(&Value::Int(2)), Some(1));
        assert_eq!(r.find_by_key(&Value::Int(9)), None);
    }

    #[test]
    fn rejects_duplicate_keys() {
        let mut r = sample();
        let err = r.push(vec![Value::Int(1), Value::Text("z".into())]);
        assert!(matches!(err, Err(RelationError::DuplicateKey(_))));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn push_unchecked_key_admits_duplicates_first_wins() {
        let mut r = sample();
        r.push_unchecked_key(vec![Value::Int(1), Value::Text("dup".into())]).unwrap();
        assert_eq!(r.len(), 4);
        // Index still points at the original row 0.
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(0));
        assert_eq!(r.distinct_keys(), 3);
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut r = sample();
        let err = r.push(vec![Value::Text("k".into()), Value::Text("z".into())]);
        assert!(matches!(err, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn update_value_swaps_and_returns_old() {
        let mut r = sample();
        let old = r.update_value(0, 1, Value::Text("new".into())).unwrap();
        assert_eq!(old, Value::Text("x".into()));
        assert_eq!(r.tuple(0).unwrap().get(1), &Value::Text("new".into()));
    }

    #[test]
    fn update_key_maintains_index() {
        let mut r = sample();
        r.update_value(0, 0, Value::Int(99)).unwrap();
        assert_eq!(r.find_by_key(&Value::Int(99)), Some(0));
        assert_eq!(r.find_by_key(&Value::Int(1)), None);
    }

    #[test]
    fn update_key_rejects_collision() {
        let mut r = sample();
        let err = r.update_value(0, 0, Value::Int(2));
        assert!(matches!(err, Err(RelationError::DuplicateKey(_))));
        // Original state intact.
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(0));
    }

    #[test]
    fn update_key_over_duplicates_repoints_to_surviving_occurrence() {
        // Rows 0 and 3 share key 1; re-keying row 0 must leave key 1
        // indexed at row 3 — and agree with what a clone (which
        // rebuilds the index from the columns) observes.
        let mut r = sample();
        r.push_unchecked_key(vec![Value::Int(1), Value::Text("dup".into())]).unwrap();
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(0));
        r.update_value(0, 0, Value::Int(99)).unwrap();
        assert_eq!(r.find_by_key(&Value::Int(99)), Some(0));
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(3), "surviving duplicate not re-indexed");
        let clone = r.clone();
        for key in [1, 2, 3, 99] {
            assert_eq!(
                r.find_by_key(&Value::Int(key)),
                clone.find_by_key(&Value::Int(key)),
                "original and clone disagree on key {key}"
            );
        }
    }

    #[test]
    fn update_key_to_same_value_is_noop() {
        let mut r = sample();
        r.update_value(0, 0, Value::Int(1)).unwrap();
        assert_eq!(r.find_by_key(&Value::Int(1)), Some(0));
    }

    #[test]
    fn update_rejects_out_of_bounds_and_bad_type() {
        let mut r = sample();
        assert!(matches!(
            r.update_value(99, 1, Value::Text("z".into())),
            Err(RelationError::RowOutOfBounds { .. })
        ));
        assert!(matches!(
            r.update_value(0, 1, Value::Int(5)),
            Err(RelationError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn column_views_expose_typed_slices() {
        let r = sample();
        assert_eq!(r.column(0).as_int().unwrap(), &[1, 2, 3]);
        let (codes, dict) = r.column(1).as_text().unwrap();
        assert_eq!(codes.len(), 3);
        assert_eq!(codes[0], codes[2], "equal strings share a code");
        assert_eq!(dict.get(codes[1]), "y");
        // Materializing views agree with tuples.
        let vals: Vec<Value> = r.column_iter(1).collect();
        assert_eq!(
            vals,
            vec![Value::Text("x".into()), Value::Text("y".into()), Value::Text("x".into())]
        );
    }

    #[test]
    fn column_mut_rewrites_values_but_refuses_the_key() {
        let mut r = sample();
        match r.column_mut(1).unwrap() {
            ColumnMut::Text(mut tc) => {
                let z = tc.intern("z");
                tc.set(0, z);
            }
            ColumnMut::Int(_) => panic!("column 1 is text"),
        }
        assert_eq!(r.tuple(0).unwrap().get(1), &Value::Text("z".into()));
        assert!(r.column_mut(0).is_err(), "key column must be refused");
        assert!(r.column_mut(9).is_err());
    }

    #[test]
    fn from_columns_validates_shape() {
        let cols = vec![Column::Int(vec![1, 2, 2]), {
            let mut c = Column::new(AttrType::Text);
            for s in ["a", "b", "c"] {
                c.push_value(&Value::Text(s.into()));
            }
            c
        }];
        let r = Relation::from_columns(schema(), cols).unwrap();
        assert_eq!(r.len(), 3);
        // Duplicate keys admitted, first wins.
        assert_eq!(r.find_by_key(&Value::Int(2)), Some(1));
        assert_eq!(r.distinct_keys(), 2);

        assert!(Relation::from_columns(schema(), vec![Column::Int(vec![1])]).is_err());
        assert!(Relation::from_columns(schema(), vec![Column::Int(vec![1]), Column::Int(vec![2])])
            .is_err());
        assert!(Relation::from_columns(
            schema(),
            vec![Column::Int(vec![1, 2]), Column::new(AttrType::Text)]
        )
        .is_err());
    }

    #[test]
    fn gather_selects_rows_in_order() {
        let r = sample();
        let g = r.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.column(0).as_int().unwrap(), &[3, 1]);
        assert_eq!(g.find_by_key(&Value::Int(3)), Some(0));
    }

    #[test]
    fn append_merges_dictionaries_and_indexes_first_wins() {
        let mut a = sample();
        let mut b = Relation::new(schema());
        b.push(vec![Value::Int(1), Value::Text("q".into())]).unwrap();
        b.push(vec![Value::Int(9), Value::Text("y".into())]).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a.find_by_key(&Value::Int(1)), Some(0), "first occurrence kept");
        assert_eq!(a.find_by_key(&Value::Int(9)), Some(4));
        assert_eq!(a.tuple(3).unwrap().get(1), &Value::Text("q".into()));
    }

    #[test]
    fn delete_by_key_removes_and_reindexes() {
        let mut r = sample();
        let removed = r.delete_by_key(&Value::Int(2)).unwrap();
        assert_eq!(removed.get(1), &Value::Text("y".into()));
        assert_eq!(r.len(), 2);
        assert_eq!(r.find_by_key(&Value::Int(2)), None);
        // Row 1 is now the former row 2.
        assert_eq!(r.find_by_key(&Value::Int(3)), Some(1));
        // Deleting a missing key is a no-op.
        assert!(r.delete_by_key(&Value::Int(99)).is_none());
    }

    #[test]
    fn retain_filters_in_place() {
        let mut r = sample();
        let deleted = r.retain(|t| t.get(1) == &Value::Text("x".into()));
        assert_eq!(deleted, 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.distinct_keys(), 2);
        // Retaining everything touches nothing.
        assert_eq!(r.retain(|_| true), 0);
    }

    #[test]
    fn resident_bytes_tracks_growth() {
        let small = sample();
        let mut big = Relation::new(schema());
        for i in 0..1000 {
            big.push(vec![Value::Int(i), Value::Text(format!("v{}", i % 7))]).unwrap();
        }
        assert!(big.resident_bytes() > small.resident_bytes());
    }

    #[test]
    fn display_truncates_long_relations() {
        let mut r = Relation::new(schema());
        for i in 0..15 {
            r.push(vec![Value::Int(i), Value::Text("v".into())]).unwrap();
        }
        let s = r.to_string();
        assert!(s.contains("15 tuples"));
        assert!(s.contains("… 5 more"));
    }
}
