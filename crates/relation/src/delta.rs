//! Delta-encoded marked copies.
//!
//! Fingerprinting N recipients from one base relation produces N
//! copies that differ from the base in only ~1/e of the key-fit
//! tuples. Materializing each copy as a full columnar clone makes
//! distribution O(recipients × relation); a [`MarkDelta`] instead
//! records just the ordered `(row, old, new)` patches for one target
//! column — plus, for text columns, the dictionary-extension entries
//! the embedding interned that the base dictionary lacks — so
//! [`Relation::apply_delta`] can rebuild a copy byte-identical to the
//! materialized one from the shared base.
//!
//! # Serialized format
//!
//! One blob per delta, in the same style as the segment blob format
//! (see [`crate::spill`]):
//!
//! ```text
//! [0..8)   magic  b"CMKDLT1\0"
//! [8..12)  column u32 LE (index of the patched attribute)
//! [12..20) rows   u64 LE (length of the base relation)
//! [20]     tag    0x01 integer / 0x02 text
//! Int:  patch count u64 LE, then (row u32, old i64, new i64) LE
//! Text: base-dict len u32 LE, extension count u32 LE, extension
//!       entries as (len u32, utf-8 bytes), patch count u64 LE,
//!       then (row u32, old code u32, new code u32) LE
//! ```
//!
//! Patch rows are strictly ascending (at most one patch per row);
//! text codes are in the *extended* code space (base dictionary plus
//! the extension entries, in order). Decoding validates all of this,
//! and [`Relation::apply_delta`] additionally checks every `old`
//! value against the base — a corrupted or mismatched delta errors
//! instead of silently producing a wrong copy.

use crate::{ColumnView, Relation, RelationError};

/// Magic bytes opening every serialized delta.
const MAGIC: &[u8; 8] = b"CMKDLT1\0";
/// Payload tag for integer-column deltas.
const TAG_INT: u8 = 0x01;
/// Payload tag for text-column deltas.
const TAG_TEXT: u8 = 0x02;

fn delta_err(msg: impl Into<String>) -> RelationError {
    RelationError::Spill(msg.into())
}

/// One integer-cell rewrite: `rows[row]` goes from `old` to `new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntPatch {
    /// Row index in the base relation.
    pub row: u32,
    /// The base's value — checked on apply.
    pub old: i64,
    /// The marked copy's value.
    pub new: i64,
}

/// One text-cell rewrite in code space: `codes[row]` goes from `old`
/// to `new`, where codes address the base dictionary extended by the
/// delta's extension entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodePatch {
    /// Row index in the base relation.
    pub row: u32,
    /// The base's code — checked on apply.
    pub old: u32,
    /// The marked copy's code, in the extended code space.
    pub new: u32,
}

/// The typed patch payload of a [`MarkDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum DeltaOps {
    /// Patches against an integer column.
    Int(Vec<IntPatch>),
    /// Patches against a text column, with the dictionary extension
    /// the marked copy interned beyond the base dictionary.
    Text { base_dict_len: u32, extension: Vec<String>, patches: Vec<CodePatch> },
}

/// An ordered patch set turning one column of a base relation into
/// its marked copy. See the [module docs](self) for the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkDelta {
    column: u32,
    rows: u64,
    ops: DeltaOps,
}

impl MarkDelta {
    /// Index of the patched attribute in the base schema.
    #[must_use]
    pub fn column(&self) -> usize {
        self.column as usize
    }

    /// Length of the base relation the delta was extracted against.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Number of cell rewrites the delta carries.
    #[must_use]
    pub fn patch_count(&self) -> usize {
        match &self.ops {
            DeltaOps::Int(ps) => ps.len(),
            DeltaOps::Text { patches, .. } => patches.len(),
        }
    }

    /// Number of dictionary-extension entries (always 0 for integer
    /// columns).
    #[must_use]
    pub fn extension_len(&self) -> usize {
        match &self.ops {
            DeltaOps::Int(_) => 0,
            DeltaOps::Text { extension, .. } => extension.len(),
        }
    }

    /// `true` when the delta rewrites nothing and extends no
    /// dictionary — applying it yields a plain clone of the base.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.patch_count() == 0 && self.extension_len() == 0
    }

    /// Serialized size in bytes, without allocating the blob.
    #[must_use]
    pub fn serialized_len(&self) -> usize {
        21 + match &self.ops {
            DeltaOps::Int(ps) => 8 + 20 * ps.len(),
            DeltaOps::Text { extension, patches, .. } => {
                8 + 8 + extension.iter().map(|s| 4 + s.len()).sum::<usize>() + 12 * patches.len()
            }
        }
    }

    /// Serialize into the delta blob format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut blob = Vec::with_capacity(self.serialized_len());
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&self.column.to_le_bytes());
        blob.extend_from_slice(&self.rows.to_le_bytes());
        match &self.ops {
            DeltaOps::Int(ps) => {
                blob.push(TAG_INT);
                blob.extend_from_slice(&(ps.len() as u64).to_le_bytes());
                for p in ps {
                    blob.extend_from_slice(&p.row.to_le_bytes());
                    blob.extend_from_slice(&p.old.to_le_bytes());
                    blob.extend_from_slice(&p.new.to_le_bytes());
                }
            }
            DeltaOps::Text { base_dict_len, extension, patches } => {
                blob.push(TAG_TEXT);
                blob.extend_from_slice(&base_dict_len.to_le_bytes());
                blob.extend_from_slice(&(extension.len() as u32).to_le_bytes());
                for entry in extension {
                    blob.extend_from_slice(&(entry.len() as u32).to_le_bytes());
                    blob.extend_from_slice(entry.as_bytes());
                }
                blob.extend_from_slice(&(patches.len() as u64).to_le_bytes());
                for p in patches {
                    blob.extend_from_slice(&p.row.to_le_bytes());
                    blob.extend_from_slice(&p.old.to_le_bytes());
                    blob.extend_from_slice(&p.new.to_le_bytes());
                }
            }
        }
        blob
    }

    /// Deserialize a delta blob, validating magic, tags, bounds and
    /// patch-row ordering.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] on any format corruption.
    pub fn decode(bytes: &[u8]) -> Result<Self, RelationError> {
        let mut cur = Cursor::new(bytes);
        if cur.take(8)? != MAGIC {
            return Err(delta_err("bad delta magic"));
        }
        let column = cur.u32()?;
        let rows = cur.u64()?;
        let tag = cur.take(1)?[0];
        let ops = match tag {
            TAG_INT => {
                let count = cur.u64()? as usize;
                let mut ps = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    ps.push(IntPatch { row: cur.u32()?, old: cur.i64()?, new: cur.i64()? });
                }
                DeltaOps::Int(ps)
            }
            TAG_TEXT => {
                let base_dict_len = cur.u32()?;
                let next = cur.u32()? as usize;
                let mut extension = Vec::with_capacity(next.min(1 << 20));
                for _ in 0..next {
                    let len = cur.u32()? as usize;
                    let s = std::str::from_utf8(cur.take(len)?)
                        .map_err(|_| delta_err("delta extension entry is not utf-8"))?;
                    extension.push(s.to_string());
                }
                let count = cur.u64()? as usize;
                let code_space = base_dict_len as usize + extension.len();
                let mut patches = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let p = CodePatch { row: cur.u32()?, old: cur.u32()?, new: cur.u32()? };
                    if (p.old as usize) >= base_dict_len as usize {
                        return Err(delta_err("delta old code outside the base dictionary"));
                    }
                    if (p.new as usize) >= code_space {
                        return Err(delta_err("delta new code outside the extended dictionary"));
                    }
                    patches.push(p);
                }
                DeltaOps::Text { base_dict_len, extension, patches }
            }
            other => return Err(delta_err(format!("unknown delta payload tag {other:#x}"))),
        };
        if cur.pos != bytes.len() {
            return Err(delta_err("trailing bytes after delta payload"));
        }
        let delta = MarkDelta { column, rows, ops };
        let mut last: Option<u32> = None;
        for row in delta.patch_rows() {
            if row as u64 >= rows {
                return Err(delta_err("delta patch row outside the base relation"));
            }
            if last.is_some_and(|prev| prev >= row) {
                return Err(delta_err("delta patch rows are not strictly ascending"));
            }
            last = Some(row);
        }
        Ok(delta)
    }

    /// The patched row indices, in ascending order.
    pub fn patch_rows(&self) -> impl Iterator<Item = u32> + '_ {
        let (ints, codes) = match &self.ops {
            DeltaOps::Int(ps) => (Some(ps.iter()), None),
            DeltaOps::Text { patches, .. } => (None, Some(patches.iter())),
        };
        ints.into_iter().flatten().map(|p| p.row).chain(codes.into_iter().flatten().map(|p| p.row))
    }
}

/// Incrementally constructs a [`MarkDelta`] — the write interface the
/// embedding pass uses to emit patches instead of mutating a clone.
///
/// Patches must be pushed in strictly ascending row order (at most
/// one per row); [`finish`](Self::finish) enforces it.
#[derive(Debug)]
pub struct MarkDeltaBuilder {
    column: u32,
    rows: u64,
    ops: DeltaOps,
}

impl MarkDeltaBuilder {
    /// Start a delta against integer column `column` of a base with
    /// `rows` rows.
    #[must_use]
    pub fn int(column: usize, rows: usize) -> Self {
        MarkDeltaBuilder {
            column: column as u32,
            rows: rows as u64,
            ops: DeltaOps::Int(Vec::new()),
        }
    }

    /// Start a delta against text column `column` of a base with
    /// `rows` rows and a dictionary of `base_dict_len` entries.
    #[must_use]
    pub fn text(column: usize, rows: usize, base_dict_len: usize) -> Self {
        MarkDeltaBuilder {
            column: column as u32,
            rows: rows as u64,
            ops: DeltaOps::Text {
                base_dict_len: base_dict_len as u32,
                extension: Vec::new(),
                patches: Vec::new(),
            },
        }
    }

    /// Record an integer rewrite. Panics if the builder targets a
    /// text column.
    pub fn push_int(&mut self, row: usize, old: i64, new: i64) {
        match &mut self.ops {
            DeltaOps::Int(ps) => ps.push(IntPatch { row: row as u32, old, new }),
            DeltaOps::Text { .. } => panic!("push_int on a text-column delta"),
        }
    }

    /// Record a code rewrite. Panics if the builder targets an
    /// integer column.
    pub fn push_code(&mut self, row: usize, old: u32, new: u32) {
        match &mut self.ops {
            DeltaOps::Text { patches, .. } => {
                patches.push(CodePatch { row: row as u32, old, new });
            }
            DeltaOps::Int(_) => panic!("push_code on an integer-column delta"),
        }
    }

    /// Append a dictionary-extension entry, returning the code it
    /// occupies in the extended code space (`base_dict_len + k` for
    /// the k-th appended entry). Panics on an integer-column builder.
    pub fn extend_dict(&mut self, value: &str) -> u32 {
        match &mut self.ops {
            DeltaOps::Text { base_dict_len, extension, .. } => {
                extension.push(value.to_string());
                *base_dict_len + (extension.len() - 1) as u32
            }
            DeltaOps::Int(_) => panic!("extend_dict on an integer-column delta"),
        }
    }

    /// Finalize the delta.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when patch rows are out of bounds or
    /// not strictly ascending, or codes escape their dictionaries.
    pub fn finish(self) -> Result<MarkDelta, RelationError> {
        let delta = MarkDelta { column: self.column, rows: self.rows, ops: self.ops };
        // Route through the decoder's validation so the builder and
        // the wire share one set of invariants.
        Self::validate(&delta)?;
        Ok(delta)
    }

    /// [`MarkDeltaBuilder::finish`] for producers whose patches are
    /// strictly ascending and in-bounds **by construction** — e.g. the
    /// embedding pass, which walks a plan's fit rows (ascending, one
    /// visit per row) and resolves codes through a table it built
    /// against this builder's own dictionary space. Skips the O(patch)
    /// re-validation in release builds; debug builds still assert the
    /// invariants, so any producer that violates them fails loudly
    /// under test instead of shipping a malformed delta.
    #[must_use]
    pub fn finish_trusted(self) -> MarkDelta {
        let delta = MarkDelta { column: self.column, rows: self.rows, ops: self.ops };
        debug_assert!(
            Self::validate(&delta).is_ok(),
            "trusted delta producer emitted an invalid patch set"
        );
        delta
    }

    fn validate(delta: &MarkDelta) -> Result<(), RelationError> {
        let mut last: Option<u32> = None;
        for row in delta.patch_rows() {
            if row as u64 >= delta.rows {
                return Err(delta_err("delta patch row outside the base relation"));
            }
            if last.is_some_and(|prev| prev >= row) {
                return Err(delta_err("delta patch rows are not strictly ascending"));
            }
            last = Some(row);
        }
        if let DeltaOps::Text { base_dict_len, extension, patches } = &delta.ops {
            let code_space = *base_dict_len as usize + extension.len();
            for p in patches {
                if (p.old as usize) >= *base_dict_len as usize {
                    return Err(delta_err("delta old code outside the base dictionary"));
                }
                if (p.new as usize) >= code_space {
                    return Err(delta_err("delta new code outside the extended dictionary"));
                }
            }
        }
        Ok(())
    }
}

/// Little-endian cursor over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RelationError> {
        let end = self.pos.checked_add(n).ok_or_else(|| delta_err("length overflow"))?;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| delta_err("truncated delta blob"))?;
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, RelationError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, RelationError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, RelationError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

impl Relation {
    /// Diff `marked` against `self` on `column`, producing the delta
    /// that [`apply_delta`](Self::apply_delta) turns back into a
    /// byte-identical copy of `marked`.
    ///
    /// For text columns, `marked`'s dictionary must be a
    /// prefix-extension of the base's (which is what in-place
    /// embedding of a clone always produces — interning only
    /// appends); the suffix becomes the delta's extension section, so
    /// the rebuilt copy reproduces even entries no surviving row
    /// references.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when the relations disagree
    /// on schema, length, or dictionary prefix, or `column` is out of
    /// range.
    pub fn extract_delta(
        &self,
        marked: &Relation,
        column: usize,
    ) -> Result<MarkDelta, RelationError> {
        if self.schema() != marked.schema() {
            return Err(RelationError::InvalidSchema(
                "delta extraction requires identical schemas".to_string(),
            ));
        }
        if self.len() != marked.len() {
            return Err(RelationError::InvalidSchema(format!(
                "delta extraction requires equal lengths (base {}, marked {})",
                self.len(),
                marked.len()
            )));
        }
        if column >= self.schema().arity() {
            return Err(RelationError::InvalidSchema(format!(
                "column index {column} out of range for arity {}",
                self.schema().arity()
            )));
        }
        match (self.column(column), marked.column(column)) {
            (ColumnView::Int(base), ColumnView::Int(copy)) => {
                let mut builder = MarkDeltaBuilder::int(column, self.len());
                for (row, (&old, &new)) in base.iter().zip(copy).enumerate() {
                    if old != new {
                        builder.push_int(row, old, new);
                    }
                }
                builder.finish()
            }
            (
                ColumnView::Text { codes: base, dict: base_dict },
                ColumnView::Text { codes: copy, dict: copy_dict },
            ) => {
                let prefix_ok = copy_dict.len() >= base_dict.len()
                    && base_dict
                        .entries()
                        .iter()
                        .zip(copy_dict.entries())
                        .all(|(a, b)| a.as_ref() == b.as_ref());
                if !prefix_ok {
                    return Err(RelationError::InvalidSchema(
                        "marked dictionary is not a prefix-extension of the base dictionary"
                            .to_string(),
                    ));
                }
                let mut builder = MarkDeltaBuilder::text(column, self.len(), base_dict.len());
                for entry in &copy_dict.entries()[base_dict.len()..] {
                    builder.extend_dict(entry);
                }
                for (row, (&old, &new)) in base.iter().zip(copy).enumerate() {
                    if old != new {
                        builder.push_code(row, old, new);
                    }
                }
                builder.finish()
            }
            _ => Err(RelationError::InvalidSchema(
                "delta extraction requires matching column types".to_string(),
            )),
        }
    }

    /// Rebuild a marked copy from `self` and a delta: clone the base,
    /// intern the dictionary extension in order, then apply the
    /// patches. The result is byte-identical to the copy the delta
    /// was extracted from.
    ///
    /// Every patch's `old` value is checked against the base — a
    /// delta extracted from a *different* base errors instead of
    /// silently corrupting the copy.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] on shape mismatches (length,
    /// column index, column type, key column) and
    /// [`RelationError::Spill`] on integrity failures (stale `old`
    /// values, extension entries already present in the base).
    pub fn apply_delta(&self, delta: &MarkDelta) -> Result<Relation, RelationError> {
        if delta.rows() != self.len() {
            return Err(RelationError::InvalidSchema(format!(
                "delta was extracted against {} rows but the base has {}",
                delta.rows(),
                self.len()
            )));
        }
        if delta.column() >= self.schema().arity() {
            return Err(RelationError::InvalidSchema(format!(
                "delta column index {} out of range for arity {}",
                delta.column(),
                self.schema().arity()
            )));
        }
        let mut copy = self.clone();
        match (&delta.ops, copy.column_mut(delta.column())?) {
            (DeltaOps::Int(ps), crate::ColumnMut::Int(xs)) => {
                for p in ps {
                    let cell = &mut xs[p.row as usize];
                    if *cell != p.old {
                        return Err(delta_err(format!(
                            "delta integrity: row {} holds {} but the delta expects {}",
                            p.row, *cell, p.old
                        )));
                    }
                    *cell = p.new;
                }
            }
            (
                DeltaOps::Text { base_dict_len, extension, patches },
                crate::ColumnMut::Text(mut tc),
            ) => {
                if tc.dict().len() != *base_dict_len as usize {
                    return Err(delta_err(format!(
                        "delta integrity: base dictionary has {} entries but the delta expects {}",
                        tc.dict().len(),
                        base_dict_len
                    )));
                }
                for (k, entry) in extension.iter().enumerate() {
                    let code = tc.intern(entry);
                    if code as usize != *base_dict_len as usize + k {
                        return Err(delta_err(format!(
                            "delta integrity: extension entry {entry:?} already in the base \
                             dictionary"
                        )));
                    }
                }
                for p in patches {
                    if tc.code(p.row as usize) != p.old {
                        return Err(delta_err(format!(
                            "delta integrity: row {} holds code {} but the delta expects {}",
                            p.row,
                            tc.code(p.row as usize),
                            p.old
                        )));
                    }
                    tc.set(p.row as usize, p.new);
                }
            }
            _ => {
                return Err(RelationError::InvalidSchema(
                    "delta payload type does not match the target column".to_string(),
                ))
            }
        }
        Ok(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema, Value};

    fn int_pair() -> (Relation, Relation) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("c", AttrType::Integer)
            .build()
            .unwrap();
        let mut base = Relation::new(schema);
        for i in 0..10 {
            base.push(vec![Value::Int(i), Value::Int(100 + i)]).unwrap();
        }
        let mut marked = base.clone();
        for row in [1usize, 4, 9] {
            marked.update_value(row, 1, Value::Int(200 + row as i64)).unwrap();
        }
        (base, marked)
    }

    fn text_pair() -> (Relation, Relation) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("c", AttrType::Text)
            .build()
            .unwrap();
        let mut base = Relation::new(schema);
        for (i, c) in ["red", "green", "blue", "red", "green"].iter().enumerate() {
            base.push(vec![Value::Int(i as i64), Value::Text((*c).into())]).unwrap();
        }
        let mut marked = base.clone();
        // Rewrites into an existing entry and into a foreign one.
        marked.update_value(0, 1, Value::Text("blue".into())).unwrap();
        marked.update_value(3, 1, Value::Text("violet".into())).unwrap();
        (base, marked)
    }

    #[test]
    fn int_delta_round_trips() {
        let (base, marked) = int_pair();
        let delta = base.extract_delta(&marked, 1).unwrap();
        assert_eq!(delta.patch_count(), 3);
        assert_eq!(delta.extension_len(), 0);
        let rebuilt = base.apply_delta(&delta).unwrap();
        assert!(marked.iter().zip(rebuilt.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn text_delta_round_trips_with_dictionary_extension() {
        let (base, marked) = text_pair();
        let delta = base.extract_delta(&marked, 1).unwrap();
        assert_eq!(delta.patch_count(), 2);
        assert_eq!(delta.extension_len(), 1);
        let rebuilt = base.apply_delta(&delta).unwrap();
        // Byte identity: codes and dictionary order, not just values.
        let (rc, rd) = rebuilt.column(1).as_text().unwrap();
        let (mc, md) = marked.column(1).as_text().unwrap();
        assert_eq!(rc, mc);
        assert_eq!(rd.entries().len(), md.entries().len());
        assert!(rd.entries().iter().zip(md.entries()).all(|(a, b)| a.as_ref() == b.as_ref()));
    }

    #[test]
    fn encode_decode_round_trips() {
        let (base, marked) = text_pair();
        let delta = base.extract_delta(&marked, 1).unwrap();
        let blob = delta.encode();
        assert_eq!(blob.len(), delta.serialized_len());
        assert_eq!(MarkDelta::decode(&blob).unwrap(), delta);
        let (base, marked) = int_pair();
        let delta = base.extract_delta(&marked, 1).unwrap();
        let blob = delta.encode();
        assert_eq!(blob.len(), delta.serialized_len());
        assert_eq!(MarkDelta::decode(&blob).unwrap(), delta);
    }

    #[test]
    fn corrupt_blobs_error_instead_of_panicking() {
        let (base, marked) = text_pair();
        let delta = base.extract_delta(&marked, 1).unwrap();
        let good = delta.encode();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(MarkDelta::decode(&bad), Err(RelationError::Spill(_))));
        assert!(MarkDelta::decode(&good[..good.len() - 2]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(MarkDelta::decode(&trailing).is_err());
        let mut bad_tag = good;
        bad_tag[20] = 0x7f;
        assert!(MarkDelta::decode(&bad_tag).is_err());
    }

    #[test]
    fn apply_checks_old_values_against_the_base() {
        let (base, marked) = int_pair();
        let delta = base.extract_delta(&marked, 1).unwrap();
        // A different base: same schema/len, different cell contents.
        let mut other = base.clone();
        other.update_value(1, 1, Value::Int(-7)).unwrap();
        assert!(matches!(other.apply_delta(&delta), Err(RelationError::Spill(_))));
    }

    #[test]
    fn shape_mismatches_are_refused() {
        let (base, marked) = int_pair();
        let delta = base.extract_delta(&marked, 1).unwrap();
        let mut short = Relation::new(base.schema().clone());
        short.push(vec![Value::Int(0), Value::Int(100)]).unwrap();
        assert!(matches!(short.apply_delta(&delta), Err(RelationError::InvalidSchema(_))));
        assert!(base.extract_delta(&short, 1).is_err());
        assert!(base.extract_delta(&marked, 9).is_err());
        let (tbase, tmarked) = text_pair();
        assert!(tbase.extract_delta(&marked, 1).is_err());
        assert!(tbase.apply_delta(&delta).is_err());
        let tdelta = tbase.extract_delta(&tmarked, 1).unwrap();
        assert!(base.apply_delta(&tdelta).is_err());
    }

    #[test]
    fn empty_delta_applies_as_a_clone() {
        let (base, _) = int_pair();
        let delta = base.extract_delta(&base, 1).unwrap();
        assert!(delta.is_empty());
        let rebuilt = base.apply_delta(&delta).unwrap();
        assert!(base.iter().zip(rebuilt.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn builder_enforces_row_order_and_bounds() {
        let mut b = MarkDeltaBuilder::int(1, 5);
        b.push_int(3, 0, 1);
        b.push_int(3, 1, 2);
        assert!(b.finish().is_err());
        let mut b = MarkDeltaBuilder::int(1, 5);
        b.push_int(5, 0, 1);
        assert!(b.finish().is_err());
        let mut b = MarkDeltaBuilder::text(1, 5, 2);
        assert_eq!(b.extend_dict("x"), 2);
        assert_eq!(b.extend_dict("y"), 3);
        b.push_code(0, 1, 3);
        assert!(b.finish().is_ok());
        let mut b = MarkDeltaBuilder::text(1, 5, 2);
        b.push_code(0, 1, 2);
        assert!(b.finish().is_err(), "new code escapes the extended dictionary");
    }
}
