//! Typed attribute values.
//!
//! The paper's model needs values that are (i) hashable into the keyed
//! one-way hash (so they need a canonical byte encoding), (ii) sortable
//! ("these are distinct and can be sorted (e.g. by ASCII value)"), and
//! (iii) comparable for primary-key indexing. Two concrete types cover
//! the paper's examples (integer product codes, string city/airline
//! names).

use std::cmp::Ordering;

use catmark_crypto::CanonicalInput;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer (e.g. `Item_Nbr`, `Visit_Nbr`).
    Int(i64),
    /// UTF-8 text (e.g. city names, airline codes).
    Text(String),
}

impl Value {
    /// Short name of the value's type, for error messages.
    #[must_use]
    pub const fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Text(_) => "text",
        }
    }

    /// Canonical byte encoding used as hash input, materialized.
    ///
    /// The encoding is injective across both variants: a one-byte type
    /// tag followed by the payload (big-endian for integers). This is
    /// the `T_j(K)` byte string fed to `H(·, k)`.
    ///
    /// Hot paths should prefer the allocation-free streaming form —
    /// `Value` implements [`CanonicalInput`], so
    /// `KeyedHash::hash_canonical_u64(value)` hashes the same bytes
    /// without building this `Vec`.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.canonical_len());
        self.write_canonical(&mut out).expect("Vec writers are infallible");
        out
    }

    /// The integer payload, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Text(_) => None,
        }
    }

    /// The text payload, if this is a [`Value::Text`].
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Parse a value of the requested type from its display form.
    ///
    /// Integers parse with `i64::from_str`; any string is valid text.
    pub fn parse(ty: crate::schema::AttrType, s: &str) -> Result<Value, crate::RelationError> {
        match ty {
            crate::schema::AttrType::Integer => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| crate::RelationError::Csv(format!("bad integer {s:?}: {e}"))),
            crate::schema::AttrType::Text => Ok(Value::Text(s.to_owned())),
        }
    }
}

/// Streaming form of [`Value::canonical_bytes`]: one type-tag byte
/// then the payload, written piecewise so keyed hashing over tuple
/// keys never allocates.
impl CanonicalInput for Value {
    fn canonical_len(&self) -> usize {
        match self {
            Value::Int(_) => 1 + std::mem::size_of::<i64>(),
            Value::Text(s) => 1 + s.len(),
        }
    }

    fn write_canonical<W: std::io::Write + ?Sized>(&self, out: &mut W) -> std::io::Result<()> {
        match self {
            Value::Int(v) => {
                let mut buf = [0u8; 9];
                buf[0] = 0x01;
                buf[1..].copy_from_slice(&v.to_be_bytes());
                out.write_all(&buf)
            }
            Value::Text(s) => {
                out.write_all(&[0x02])?;
                out.write_all(s.as_bytes())
            }
        }
    }
}

/// Borrowed canonical view of an integer value: hashes exactly like
/// `Value::Int(v)` without constructing the enum. The columnar scan
/// path encodes each `i64` of a key column through this wrapper.
#[derive(Debug, Clone, Copy)]
pub struct CanonicalInt(pub i64);

impl CanonicalInput for CanonicalInt {
    fn canonical_len(&self) -> usize {
        1 + std::mem::size_of::<i64>()
    }

    fn write_canonical<W: std::io::Write + ?Sized>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(&self.encode())
    }
}

impl CanonicalInt {
    /// The full canonical encoding on the stack (type tag + big-endian
    /// payload) — the slice fed to fixed-length keyed hashing.
    #[must_use]
    pub fn encode(&self) -> [u8; 9] {
        let mut buf = [0u8; 9];
        buf[0] = 0x01;
        buf[1..].copy_from_slice(&self.0.to_be_bytes());
        buf
    }
}

/// Borrowed canonical view of a text value: hashes exactly like
/// `Value::Text(s.to_owned())` without the allocation. The columnar
/// scan path encodes each *distinct* dictionary entry through this
/// wrapper once per plan.
#[derive(Debug, Clone, Copy)]
pub struct CanonicalText<'a>(pub &'a str);

impl CanonicalInput for CanonicalText<'_> {
    fn canonical_len(&self) -> usize {
        1 + self.0.len()
    }

    fn write_canonical<W: std::io::Write + ?Sized>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(&[0x02])?;
        out.write_all(self.0.as_bytes())
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: integers sort before text; within a variant the
    /// natural order applies. This gives categorical domains the stable
    /// "sortable (e.g. by ASCII value)" ordering the paper requires.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Int(_), Value::Text(_)) => Ordering::Less,
            (Value::Text(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    #[test]
    fn streaming_encoding_matches_materialized() {
        for v in [Value::Int(0), Value::Int(-7), Value::Int(i64::MAX), Value::Text("Äx".into())] {
            let mut streamed = Vec::new();
            v.write_canonical(&mut streamed).unwrap();
            assert_eq!(streamed, v.canonical_bytes());
            assert_eq!(streamed.len(), v.canonical_len());
        }
    }

    #[test]
    fn zero_alloc_hash_agrees_with_materialized_hash() {
        let h = catmark_crypto::KeyedHash::new(
            catmark_crypto::HashAlgorithm::Sha256,
            catmark_crypto::SecretKey::from_u64(5),
        );
        for v in [Value::Int(123), Value::Text("san jose".into())] {
            assert_eq!(h.hash_canonical_u64(&v), h.hash_u64(&[&v.canonical_bytes()]));
        }
    }

    #[test]
    fn canonical_wrappers_match_owned_values() {
        for v in [0i64, -7, 42, i64::MAX, i64::MIN] {
            let mut streamed = Vec::new();
            CanonicalInt(v).write_canonical(&mut streamed).unwrap();
            assert_eq!(streamed, Value::Int(v).canonical_bytes());
            assert_eq!(streamed, CanonicalInt(v).encode());
        }
        for s in ["", "x", "san jose", "Äx"] {
            let mut streamed = Vec::new();
            CanonicalText(s).write_canonical(&mut streamed).unwrap();
            assert_eq!(streamed, Value::Text(s.into()).canonical_bytes());
            assert_eq!(streamed.len(), CanonicalText(s).canonical_len());
        }
    }

    #[test]
    fn canonical_bytes_are_injective_across_variants() {
        // Int(0x41) must not collide with Text("A") etc.
        let int = Value::Int(0x41).canonical_bytes();
        let text = Value::Text("A".into()).canonical_bytes();
        assert_ne!(int, text);
    }

    #[test]
    fn canonical_bytes_distinguish_integers() {
        assert_ne!(Value::Int(1).canonical_bytes(), Value::Int(256).canonical_bytes());
        assert_ne!(Value::Int(-1).canonical_bytes(), Value::Int(1).canonical_bytes());
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut values =
            vec![Value::Text("b".into()), Value::Int(10), Value::Text("a".into()), Value::Int(-5)];
        values.sort();
        assert_eq!(
            values,
            vec![Value::Int(-5), Value::Int(10), Value::Text("a".into()), Value::Text("b".into()),]
        );
    }

    #[test]
    fn parse_round_trips_display() {
        let v = Value::Int(-42);
        assert_eq!(Value::parse(AttrType::Integer, &v.to_string()).unwrap(), v);
        let v = Value::Text("San Jose".into());
        assert_eq!(Value::parse(AttrType::Text, &v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage_integers() {
        assert!(Value::parse(AttrType::Integer, "abc").is_err());
        assert!(Value::parse(AttrType::Integer, "").is_err());
    }

    #[test]
    fn parse_integer_accepts_whitespace() {
        assert_eq!(Value::parse(AttrType::Integer, " 7 ").unwrap(), Value::Int(7));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_text(), None);
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Text("x".into()).as_int(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(String::from("hi")), Value::Text("hi".into()));
    }
}
