//! Spilled-segment byte stores and the on-disk segment format.
//!
//! A [`crate::SegmentedRelation`] keeps only a bounded working set of
//! its segments resident; the rest live as serialized blobs behind a
//! [`SegmentStore`]. The store is deliberately dumb — an append-only
//! arena of bytes addressed by [`SpillHandle`]s and read back by
//! *byte range* (the mmap access pattern: the pager reads a segment's
//! fixed-size header first, then exactly the column ranges it needs)
//! — so backends stay trivial: [`MemStore`] is a `Vec<u8>` for
//! hermetic tests, [`FileStore`] a positioned file for relations
//! larger than RAM.
//!
//! ```
//! use catmark_relation::spill::{MemStore, SegmentStore};
//!
//! let mut store = MemStore::new();
//! let handle = store.append(b"segment bytes").unwrap();
//! // Byte-range read, mmap-style: no need to fetch the whole blob.
//! assert_eq!(store.read(handle, 8..13).unwrap(), b"bytes");
//! assert_eq!(store.spilled_bytes(), 13);
//! ```
//!
//! # Segment format
//!
//! One blob per segment:
//!
//! ```text
//! [0..8)    magic  b"CMKSEG1\0"
//! [8..12)   rows   u32 LE
//! [12..16)  ncols  u32 LE (must equal the schema arity)
//! [16..16+16*ncols)  column directory: (offset u64, len u64) LE,
//!                    offsets relative to the blob start
//! ...       column payloads:
//!           Int:  tag 0x01, rows × i64 LE
//!           Text: tag 0x02, dict-entry count u32, entries as
//!                 (len u32, utf-8 bytes), then rows × u32 LE codes
//! ```
//!
//! The directory is what makes reads range-addressable: the header's
//! size is computable from the schema alone, so a pager can fetch the
//! directory and then each column's exact byte range independently.

use std::ops::Range;

use crate::{AttrType, ColumnView, Relation, RelationError, Schema};

/// Magic bytes opening every serialized segment.
const MAGIC: &[u8; 8] = b"CMKSEG1\0";
/// Column payload tag for integer columns.
const TAG_INT: u8 = 0x01;
/// Column payload tag for text columns.
const TAG_TEXT: u8 = 0x02;

/// Address of one spilled segment inside a [`SegmentStore`]: the
/// arena offset of its first byte plus its serialized length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillHandle {
    /// Offset of the blob's first byte in the store's arena.
    pub offset: u64,
    /// Serialized length of the blob in bytes.
    pub len: u64,
}

/// An append-only byte arena with range-addressed reads — the
/// storage contract behind spilled segments.
///
/// Implementations never interpret the bytes; the segment format
/// above is the pager's business. Rewriting a dirty segment appends a
/// fresh blob (the old range becomes garbage), which keeps every
/// backend a strict log.
pub trait SegmentStore: std::fmt::Debug + Send {
    /// Append `bytes` as one blob, returning its handle.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when the backend cannot persist the
    /// blob (I/O failure, arena exhausted).
    fn append(&mut self, bytes: &[u8]) -> Result<SpillHandle, RelationError>;

    /// Read `range` (relative to the blob start) of the blob at
    /// `handle` — the mmap-style partial read the pager uses to fetch
    /// a header or a single column payload.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when the range exceeds the blob or
    /// the backend fails to read.
    fn read(&self, handle: SpillHandle, range: Range<u64>) -> Result<Vec<u8>, RelationError>;

    /// Total bytes ever appended (including superseded blobs).
    fn spilled_bytes(&self) -> u64;
}

fn spill_err(msg: impl Into<String>) -> RelationError {
    RelationError::Spill(msg.into())
}

fn check_range(handle: SpillHandle, range: &Range<u64>) -> Result<(), RelationError> {
    if range.start > range.end || range.end > handle.len {
        return Err(spill_err(format!(
            "range {}..{} outside blob of {} bytes",
            range.start, range.end, handle.len
        )));
    }
    Ok(())
}

/// In-memory [`SegmentStore`]: one growable byte arena. The hermetic
/// default for tests and for bounding the *columnar working set*
/// (decoded segments) rather than total process memory.
#[derive(Debug, Default)]
pub struct MemStore {
    arena: Vec<u8>,
}

impl MemStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl SegmentStore for MemStore {
    fn append(&mut self, bytes: &[u8]) -> Result<SpillHandle, RelationError> {
        let offset = self.arena.len() as u64;
        self.arena.extend_from_slice(bytes);
        Ok(SpillHandle { offset, len: bytes.len() as u64 })
    }

    fn read(&self, handle: SpillHandle, range: Range<u64>) -> Result<Vec<u8>, RelationError> {
        check_range(handle, &range)?;
        let start = (handle.offset + range.start) as usize;
        let end = (handle.offset + range.end) as usize;
        self.arena
            .get(start..end)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| spill_err("handle outside arena"))
    }

    fn spilled_bytes(&self) -> u64 {
        self.arena.len() as u64
    }
}

/// File-backed [`SegmentStore`]: an append-only spill file with
/// positioned byte-range reads — the backend for relations larger
/// than RAM.
#[derive(Debug)]
pub struct FileStore {
    file: std::sync::Mutex<std::fs::File>,
    end: u64,
}

impl FileStore {
    /// Create (truncating) the spill file at `path`.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> Result<Self, RelationError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())
            .map_err(|e| spill_err(format!("create {:?}: {e}", path.as_ref())))?;
        Ok(FileStore { file: std::sync::Mutex::new(file), end: 0 })
    }

    /// Open an existing spill file at `path` without truncating it,
    /// appending after its current end — the reopen path for
    /// content-addressed piles (see [`crate::versioned`]), whose
    /// record framing makes the existing bytes re-indexable.
    ///
    /// # Errors
    ///
    /// [`RelationError::Spill`] when the file cannot be opened or
    /// its length read.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, RelationError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())
            .map_err(|e| spill_err(format!("open {:?}: {e}", path.as_ref())))?;
        let end = file.metadata().map_err(|e| spill_err(format!("stat: {e}")))?.len();
        Ok(FileStore { file: std::sync::Mutex::new(file), end })
    }
}

impl SegmentStore for FileStore {
    fn append(&mut self, bytes: &[u8]) -> Result<SpillHandle, RelationError> {
        use std::io::{Seek, SeekFrom, Write};
        let offset = self.end;
        let mut file = self.file.lock().expect("spill file lock is never poisoned");
        file.seek(SeekFrom::Start(offset)).map_err(|e| spill_err(format!("seek: {e}")))?;
        file.write_all(bytes).map_err(|e| spill_err(format!("write: {e}")))?;
        self.end += bytes.len() as u64;
        Ok(SpillHandle { offset, len: bytes.len() as u64 })
    }

    fn read(&self, handle: SpillHandle, range: Range<u64>) -> Result<Vec<u8>, RelationError> {
        use std::io::{Read, Seek, SeekFrom};
        check_range(handle, &range)?;
        let mut out = vec![0u8; (range.end - range.start) as usize];
        let mut file = self.file.lock().expect("spill file lock is never poisoned");
        file.seek(SeekFrom::Start(handle.offset + range.start))
            .map_err(|e| spill_err(format!("seek: {e}")))?;
        file.read_exact(&mut out).map_err(|e| spill_err(format!("read: {e}")))?;
        Ok(out)
    }

    fn spilled_bytes(&self) -> u64 {
        self.end
    }
}

/// Serialize one segment (a schema-conformant [`Relation`]) into the
/// blob format above.
#[must_use]
pub fn encode_segment(rel: &Relation) -> Vec<u8> {
    let ncols = rel.schema().arity();
    let header_len = 16 + 16 * ncols;
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let mut buf = Vec::new();
        match rel.column(i) {
            ColumnView::Int(xs) => {
                buf.push(TAG_INT);
                for &x in xs {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnView::Text { codes, dict } => {
                buf.push(TAG_TEXT);
                buf.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for entry in dict.entries() {
                    buf.extend_from_slice(&(entry.len() as u32).to_le_bytes());
                    buf.extend_from_slice(entry.as_bytes());
                }
                for &c in codes {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        payloads.push(buf);
    }
    let total: usize = header_len + payloads.iter().map(Vec::len).sum::<usize>();
    let mut blob = Vec::with_capacity(total);
    blob.extend_from_slice(MAGIC);
    blob.extend_from_slice(&(rel.len() as u32).to_le_bytes());
    blob.extend_from_slice(&(ncols as u32).to_le_bytes());
    let mut offset = header_len as u64;
    for payload in &payloads {
        blob.extend_from_slice(&offset.to_le_bytes());
        blob.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        offset += payload.len() as u64;
    }
    for payload in &payloads {
        blob.extend_from_slice(payload);
    }
    blob
}

/// Little-endian cursor over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RelationError> {
        let end = self.pos.checked_add(n).ok_or_else(|| spill_err("length overflow"))?;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| spill_err("truncated segment blob"))?;
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, RelationError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, RelationError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Read one segment back from `store` by ranged reads: the header
/// (whose size follows from `schema` alone), then each column's exact
/// byte range from the directory.
///
/// # Errors
///
/// [`RelationError::Spill`] on format/IO corruption, or the schema
/// errors [`Relation::from_columns`] raises when the decoded columns
/// do not fit `schema`.
pub fn read_segment(
    store: &dyn SegmentStore,
    handle: SpillHandle,
    schema: &Schema,
) -> Result<Relation, RelationError> {
    let ncols = schema.arity();
    let header_len = (16 + 16 * ncols) as u64;
    let header = store.read(handle, 0..header_len)?;
    let mut cur = Cursor::new(&header);
    if cur.take(8)? != MAGIC {
        return Err(spill_err("bad segment magic"));
    }
    let rows = cur.u32()? as usize;
    if cur.u32()? as usize != ncols {
        return Err(spill_err("segment column count does not match schema arity"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for attr in schema.attrs() {
        let offset = cur.u64()?;
        let len = cur.u64()?;
        let payload = store.read(handle, offset..offset + len)?;
        let mut body = Cursor::new(&payload);
        let tag = body.take(1)?[0];
        let column = match (attr.ty, tag) {
            (AttrType::Integer, TAG_INT) => {
                let mut xs = Vec::with_capacity(rows);
                for _ in 0..rows {
                    xs.push(i64::from_le_bytes(body.take(8)?.try_into().expect("8 bytes")));
                }
                crate::Column::Int(xs)
            }
            (AttrType::Text, TAG_TEXT) => {
                let ndict = body.u32()? as usize;
                let mut dict = crate::Dictionary::new();
                for _ in 0..ndict {
                    let len = body.u32()? as usize;
                    let s = std::str::from_utf8(body.take(len)?)
                        .map_err(|_| spill_err("dictionary entry is not utf-8"))?;
                    dict.intern(s);
                }
                if dict.len() != ndict {
                    return Err(spill_err("duplicate dictionary entries in segment blob"));
                }
                let mut codes = Vec::with_capacity(rows);
                for _ in 0..rows {
                    codes.push(body.u32()?);
                }
                crate::Column::Text { codes, dict }
            }
            _ => {
                return Err(spill_err(format!(
                    "column tag {tag:#x} does not match schema type {}",
                    attr.ty.name()
                )))
            }
        };
        columns.push(column);
    }
    Relation::from_columns(schema.clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Value};

    fn sample() -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("c", AttrType::Text)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for (k, c) in [(1, "x"), (2, "y"), (3, "x")] {
            rel.push(vec![Value::Int(k), Value::Text(c.into())]).unwrap();
        }
        rel
    }

    #[test]
    fn encode_read_round_trips_through_mem_store() {
        let rel = sample();
        let mut store = MemStore::new();
        let handle = store.append(&encode_segment(&rel)).unwrap();
        let back = read_segment(&store, handle, rel.schema()).unwrap();
        assert_eq!(back.len(), rel.len());
        assert!(rel.iter().zip(back.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn empty_segment_round_trips() {
        let rel = Relation::new(sample().schema().clone());
        let mut store = MemStore::new();
        let handle = store.append(&encode_segment(&rel)).unwrap();
        let back = read_segment(&store, handle, rel.schema()).unwrap();
        assert_eq!(back.len(), 0);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // start > end is the case under test
    fn range_reads_are_partial_and_bounds_checked() {
        let mut store = MemStore::new();
        let h = store.append(b"0123456789").unwrap();
        assert_eq!(store.read(h, 2..5).unwrap(), b"234");
        assert!(store.read(h, 5..11).is_err());
        assert!(store.read(h, 7..6).is_err());
    }

    #[test]
    fn corrupt_blobs_error_instead_of_panicking() {
        let rel = sample();
        let mut store = MemStore::new();
        let mut blob = encode_segment(&rel);
        blob[0] = b'X';
        let h = store.append(&blob).unwrap();
        assert!(matches!(read_segment(&store, h, rel.schema()), Err(RelationError::Spill(_))));
        // Truncated payload.
        let good = encode_segment(&rel);
        let h = store.append(&good[..good.len() - 4]).unwrap();
        assert!(read_segment(&store, h, rel.schema()).is_err());
    }

    #[test]
    fn handles_address_multiple_blobs_independently() {
        let rel = sample();
        let mut store = MemStore::new();
        let a = store.append(&encode_segment(&rel)).unwrap();
        let b = store.append(b"garbage-in-between").unwrap();
        let c = store.append(&encode_segment(&rel)).unwrap();
        assert!(a.offset < b.offset && b.offset < c.offset);
        for h in [a, c] {
            let back = read_segment(&store, h, rel.schema()).unwrap();
            assert_eq!(back.len(), rel.len());
        }
        assert_eq!(store.spilled_bytes(), c.offset + c.len);
    }
}
