//! Relation schemas: attribute definitions and primary-key designation.
//!
//! The paper's model is a schema `(K, A, B)` with a primary key `K` and
//! discrete (categorical) attributes. [`Schema`] generalizes to any
//! number of attributes, exactly one of which is designated the primary
//! key, and any subset of which may be flagged categorical (candidates
//! for watermark embedding).

use crate::{RelationError, Value};

/// Attribute data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit integers.
    Integer,
    /// UTF-8 text.
    Text,
}

impl AttrType {
    /// Whether `value` inhabits this type.
    #[must_use]
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (AttrType::Integer, Value::Int(_)) | (AttrType::Text, Value::Text(_))
        )
    }

    /// Type name for error messages.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AttrType::Integer => "integer",
            AttrType::Text => "text",
        }
    }
}

impl std::fmt::Display for AttrType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name, unique within the schema.
    pub name: String,
    /// Value type.
    pub ty: AttrType,
    /// Whether the attribute is categorical — a finite, discrete value
    /// set and therefore an embedding-channel candidate.
    pub categorical: bool,
}

/// A relation schema: ordered attributes plus the primary-key position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<AttrDef>,
    key: usize,
}

impl Schema {
    /// Start building a schema.
    #[must_use]
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { attrs: Vec::new(), key: None }
    }

    /// All attributes, in declaration order.
    #[must_use]
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of the primary-key attribute.
    #[must_use]
    pub fn key_index(&self) -> usize {
        self.key
    }

    /// Definition of the primary-key attribute.
    #[must_use]
    pub fn key_attr(&self) -> &AttrDef {
        &self.attrs[self.key]
    }

    /// Position of attribute `name`.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`] when no attribute has that name.
    pub fn index_of(&self, name: &str) -> Result<usize, RelationError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| RelationError::UnknownAttr(name.to_owned()))
    }

    /// Definition at position `idx` (panics when out of bounds —
    /// indices come from [`Schema::index_of`]).
    #[must_use]
    pub fn attr(&self, idx: usize) -> &AttrDef {
        &self.attrs[idx]
    }

    /// Indices of all categorical attributes (excluding the key).
    #[must_use]
    pub fn categorical_indices(&self) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(i, a)| *i != self.key && a.categorical)
            .map(|(i, _)| i)
            .collect()
    }

    /// Validate a tuple against this schema (arity and types).
    ///
    /// # Errors
    ///
    /// [`RelationError::ArityMismatch`] or [`RelationError::TypeMismatch`].
    pub fn check_tuple(&self, values: &[Value]) -> Result<(), RelationError> {
        if values.len() != self.attrs.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.attrs.len(),
                actual: values.len(),
            });
        }
        for (attr, value) in self.attrs.iter().zip(values) {
            if !attr.ty.admits(value) {
                return Err(RelationError::TypeMismatch {
                    attr: attr.name.clone(),
                    expected: attr.ty.name(),
                    value: value.clone(),
                });
            }
        }
        Ok(())
    }

    /// Derive the schema of a projection onto `indices` where position
    /// `new_key` of `indices` acts as the projected primary key.
    ///
    /// Vertical partitioning (attack A5) — and the multi-attribute
    /// embedding of Section 3.3, which "treats one of the attributes as
    /// a primary key" — both need re-keyed sub-schemas.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when `indices` is empty, has
    /// duplicates, is out of bounds, or `new_key` is out of range.
    pub fn project(&self, indices: &[usize], new_key: usize) -> Result<Schema, RelationError> {
        if indices.is_empty() {
            return Err(RelationError::InvalidSchema("projection onto zero attributes".into()));
        }
        if new_key >= indices.len() {
            return Err(RelationError::InvalidSchema(format!(
                "projected key position {new_key} out of range for {} attributes",
                indices.len()
            )));
        }
        let mut seen = vec![false; self.attrs.len()];
        let mut attrs = Vec::with_capacity(indices.len());
        for &i in indices {
            let attr = self.attrs.get(i).ok_or_else(|| {
                RelationError::InvalidSchema(format!("attribute index {i} out of bounds"))
            })?;
            if seen[i] {
                return Err(RelationError::InvalidSchema(format!("attribute index {i} repeated")));
            }
            seen[i] = true;
            attrs.push(attr.clone());
        }
        Ok(Schema { attrs, key: new_key })
    }
}

/// Incremental [`Schema`] construction.
#[derive(Debug)]
pub struct SchemaBuilder {
    attrs: Vec<AttrDef>,
    key: Option<usize>,
}

impl SchemaBuilder {
    /// Add the primary-key attribute ("not necessarily discrete" per the
    /// paper; it may be of any type).
    #[must_use]
    pub fn key_attr(mut self, name: &str, ty: AttrType) -> Self {
        self.key = Some(self.attrs.len());
        self.attrs.push(AttrDef { name: name.to_owned(), ty, categorical: false });
        self
    }

    /// Add a categorical (discrete-valued) attribute.
    #[must_use]
    pub fn categorical_attr(mut self, name: &str, ty: AttrType) -> Self {
        self.attrs.push(AttrDef { name: name.to_owned(), ty, categorical: true });
        self
    }

    /// Add a plain (non-categorical, non-key) attribute.
    #[must_use]
    pub fn attr(mut self, name: &str, ty: AttrType) -> Self {
        self.attrs.push(AttrDef { name: name.to_owned(), ty, categorical: false });
        self
    }

    /// Finish construction.
    ///
    /// # Errors
    ///
    /// [`RelationError::InvalidSchema`] when no key was declared, more
    /// than one key was declared, or attribute names repeat.
    pub fn build(self) -> Result<Schema, RelationError> {
        let key = self
            .key
            .ok_or_else(|| RelationError::InvalidSchema("no primary key declared".into()))?;
        for (i, a) in self.attrs.iter().enumerate() {
            if self.attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::InvalidSchema(format!(
                    "duplicate attribute name {:?}",
                    a.name
                )));
            }
        }
        Ok(Schema { attrs: self.attrs, key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item_scan() -> Schema {
        Schema::builder()
            .key_attr("visit_nbr", AttrType::Integer)
            .categorical_attr("item_nbr", AttrType::Integer)
            .categorical_attr("store_city", AttrType::Text)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_layout() {
        let s = item_scan();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key_index(), 0);
        assert_eq!(s.key_attr().name, "visit_nbr");
        assert_eq!(s.categorical_indices(), vec![1, 2]);
    }

    #[test]
    fn requires_a_key() {
        let err = Schema::builder().categorical_attr("a", AttrType::Text).build();
        assert!(matches!(err, Err(RelationError::InvalidSchema(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::builder()
            .key_attr("a", AttrType::Integer)
            .categorical_attr("a", AttrType::Text)
            .build();
        assert!(matches!(err, Err(RelationError::InvalidSchema(_))));
    }

    #[test]
    fn index_of_resolves_names() {
        let s = item_scan();
        assert_eq!(s.index_of("item_nbr").unwrap(), 1);
        assert!(matches!(s.index_of("nope"), Err(RelationError::UnknownAttr(_))));
    }

    #[test]
    fn check_tuple_validates_arity_and_types() {
        let s = item_scan();
        assert!(s.check_tuple(&[Value::Int(1), Value::Int(2), Value::Text("c".into())]).is_ok());
        assert!(matches!(
            s.check_tuple(&[Value::Int(1)]),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_tuple(&[Value::Int(1), Value::Text("x".into()), Value::Text("c".into())]),
            Err(RelationError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn projection_rekeys() {
        let s = item_scan();
        // Keep (item_nbr, store_city), treating item_nbr as the key —
        // the A5 scenario where "one of the remaining attributes can
        // act as a primary key".
        let p = s.project(&[1, 2], 0).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.key_attr().name, "item_nbr");
        assert_eq!(p.categorical_indices(), vec![1]);
    }

    #[test]
    fn projection_rejects_bad_input() {
        let s = item_scan();
        assert!(s.project(&[], 0).is_err());
        assert!(s.project(&[0, 0], 0).is_err());
        assert!(s.project(&[9], 0).is_err());
        assert!(s.project(&[0, 1], 5).is_err());
    }

    #[test]
    fn admits_matches_types() {
        assert!(AttrType::Integer.admits(&Value::Int(1)));
        assert!(!AttrType::Integer.admits(&Value::Text("x".into())));
        assert!(AttrType::Text.admits(&Value::Text("x".into())));
        assert!(!AttrType::Text.admits(&Value::Int(1)));
    }
}
