//! Error type shared by the relational substrate.

use crate::value::Value;

/// Errors produced by relational operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// A tuple's arity did not match the schema.
    ArityMismatch {
        /// Attributes declared in the schema.
        expected: usize,
        /// Values supplied in the tuple.
        actual: usize,
    },
    /// A value's type did not match its attribute's declared type.
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// Declared type name.
        expected: &'static str,
        /// Offending value.
        value: Value,
    },
    /// A primary key value occurred more than once.
    DuplicateKey(Value),
    /// An attribute name was not found in the schema.
    UnknownAttr(String),
    /// A schema was declared without any attributes or without a key.
    InvalidSchema(String),
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Relation size.
        len: usize,
    },
    /// A value was not a member of the categorical domain in use.
    ValueNotInDomain(Value),
    /// CSV input could not be parsed.
    Csv(String),
    /// A spilled segment could not be written, read, or decoded.
    Spill(String),
}

impl std::fmt::Display for RelationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, actual } => {
                write!(f, "tuple arity {actual} does not match schema arity {expected}")
            }
            RelationError::TypeMismatch { attr, expected, value } => {
                write!(f, "attribute {attr:?} expects {expected}, got {value}")
            }
            RelationError::DuplicateKey(v) => write!(f, "duplicate primary key {v}"),
            RelationError::UnknownAttr(name) => write!(f, "unknown attribute {name:?}"),
            RelationError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            RelationError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for relation of {len} tuples")
            }
            RelationError::ValueNotInDomain(v) => {
                write!(f, "value {v} is not a member of the categorical domain")
            }
            RelationError::Csv(msg) => write!(f, "csv error: {msg}"),
            RelationError::Spill(msg) => write!(f, "segment spill error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::ArityMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));

        let e = RelationError::DuplicateKey(Value::Int(7));
        assert!(e.to_string().contains('7'));

        let e = RelationError::UnknownAttr("city".into());
        assert!(e.to_string().contains("city"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&RelationError::InvalidSchema("x".into()));
    }
}
