//! Boolean predicates over tuples.
//!
//! Section 4.1 proposes expressing "each property of the database that
//! needs to be preserved … as a constraint on the allowable change to
//! the dataset". Predicates are the comparison layer of that
//! constraint language: attribute/value comparisons composed with
//! boolean connectives.

use crate::{RelationError, Schema, Tuple, Value};

/// A boolean predicate over a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `attr == value`
    Eq(String, Value),
    /// `attr != value`
    Ne(String, Value),
    /// `attr < value` (by the total [`Value`] order)
    Lt(String, Value),
    /// `attr <= value`
    Le(String, Value),
    /// `attr > value`
    Gt(String, Value),
    /// `attr >= value`
    Ge(String, Value),
    /// `attr ∈ values`
    In(String, Vec<Value>),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Constant truth (identity for folds).
    True,
}

impl Predicate {
    /// `attr == value` (convenience constructor).
    pub fn eq(attr: &str, value: impl Into<Value>) -> Predicate {
        Predicate::Eq(attr.to_owned(), value.into())
    }

    /// `attr ∈ values`. The list is sorted and deduplicated: the
    /// compiled engine ([`crate::CompiledPredicate`]) consumes it as
    /// a ready binary-searchable set, and equality of two `is_in`
    /// predicates is order-independent. The row-at-a-time
    /// [`Predicate::eval`] stays a plain scan — every hot path
    /// (selection, guarded embeds) evaluates through the compiled
    /// sorted/hashed lookups instead.
    pub fn is_in(attr: &str, values: impl IntoIterator<Item = Value>) -> Predicate {
        let mut values: Vec<Value> = values.into_iter().collect();
        values.sort();
        values.dedup();
        Predicate::In(attr.to_owned(), values)
    }

    /// Conjunction builder.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction builder.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation builder.
    #[must_use]
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against `tuple` under `schema`.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`] when a referenced attribute does
    /// not exist.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool, RelationError> {
        Ok(match self {
            Predicate::Eq(attr, v) => tuple.get(schema.index_of(attr)?) == v,
            Predicate::Ne(attr, v) => tuple.get(schema.index_of(attr)?) != v,
            Predicate::Lt(attr, v) => tuple.get(schema.index_of(attr)?) < v,
            Predicate::Le(attr, v) => tuple.get(schema.index_of(attr)?) <= v,
            Predicate::Gt(attr, v) => tuple.get(schema.index_of(attr)?) > v,
            Predicate::Ge(attr, v) => tuple.get(schema.index_of(attr)?) >= v,
            // A plain scan: this row-at-a-time path is cold (tests,
            // one-off checks). Hot paths compile —
            // [`crate::CompiledPredicate`] answers IN-lists through
            // sorted binary search / dictionary-code tables.
            Predicate::In(attr, vs) => vs.contains(tuple.get(schema.index_of(attr)?)),
            Predicate::And(a, b) => a.eval(schema, tuple)? && b.eval(schema, tuple)?,
            Predicate::Or(a, b) => a.eval(schema, tuple)? || b.eval(schema, tuple)?,
            Predicate::Not(p) => !p.eval(schema, tuple)?,
            Predicate::True => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn fixture() -> (Schema, Tuple) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("city", AttrType::Text)
            .build()
            .unwrap();
        let tuple = Tuple::new(vec![Value::Int(5), Value::Text("chicago".into())]);
        (schema, tuple)
    }

    #[test]
    fn comparisons() {
        let (s, t) = fixture();
        assert!(Predicate::eq("k", 5).eval(&s, &t).unwrap());
        assert!(Predicate::Ne("k".into(), Value::Int(4)).eval(&s, &t).unwrap());
        assert!(Predicate::Lt("k".into(), Value::Int(6)).eval(&s, &t).unwrap());
        assert!(Predicate::Le("k".into(), Value::Int(5)).eval(&s, &t).unwrap());
        assert!(Predicate::Gt("k".into(), Value::Int(4)).eval(&s, &t).unwrap());
        assert!(Predicate::Ge("k".into(), Value::Int(5)).eval(&s, &t).unwrap());
    }

    #[test]
    fn membership() {
        let (s, t) = fixture();
        let p =
            Predicate::is_in("city", [Value::Text("chicago".into()), Value::Text("boston".into())]);
        assert!(p.eval(&s, &t).unwrap());
        let p = Predicate::is_in("city", [Value::Text("boston".into())]);
        assert!(!p.eval(&s, &t).unwrap());
    }

    #[test]
    fn connectives() {
        let (s, t) = fixture();
        let p = Predicate::eq("k", 5).and(Predicate::eq("city", "chicago"));
        assert!(p.eval(&s, &t).unwrap());
        let p = Predicate::eq("k", 4).or(Predicate::eq("city", "chicago"));
        assert!(p.eval(&s, &t).unwrap());
        let p = Predicate::eq("k", 4).negate();
        assert!(p.eval(&s, &t).unwrap());
        assert!(Predicate::True.eval(&s, &t).unwrap());
    }

    #[test]
    fn unknown_attribute_errors() {
        let (s, t) = fixture();
        assert!(Predicate::eq("missing", 1).eval(&s, &t).is_err());
    }

    #[test]
    fn short_circuit_still_checks_left_operand() {
        let (s, t) = fixture();
        // Left operand errors propagate even under `or`.
        let p = Predicate::eq("missing", 1).or(Predicate::True);
        assert!(p.eval(&s, &t).is_err());
    }
}
