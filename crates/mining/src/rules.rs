//! Association rules and rule-drift measurement.
//!
//! Rules `antecedent ⇒ consequent` are derived from frequent itemsets
//! (single-item consequents, the classic formulation). A [`RuleSet`]
//! can be *re-evaluated* against a second relation — typically the
//! watermarked version of the mined one — producing a [`RuleDrift`]
//! report stating which rules survived, which broke, and how far
//! confidences moved. This is the measurement half of the paper's
//! Section 6 proposal to make the encoder aware of "classification and
//! association rules"; the enforcement half lives in
//! [`constraints`](crate::constraints).

use std::fmt;

use crate::apriori::FrequentItemsets;
use crate::item::{Item, Itemset, Transactions};

/// One association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Left-hand side (never empty).
    pub antecedent: Itemset,
    /// Right-hand side (a single item).
    pub consequent: Item,
    /// Fraction of transactions matching antecedent ∪ consequent.
    pub support: f64,
    /// `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
    /// `confidence / support(consequent)` — how much the antecedent
    /// lifts the consequent over its base rate.
    pub lift: f64,
}

impl Rule {
    /// The full itemset `antecedent ∪ {consequent}`.
    #[must_use]
    pub fn full_set(&self) -> Itemset {
        self.antecedent
            .union(&Itemset::singleton(self.consequent.clone()))
            .expect("rule sides are attribute-disjoint by construction")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ⇒ {} (sup {:.3}, conf {:.3}, lift {:.2})",
            self.antecedent, self.consequent, self.support, self.confidence, self.lift
        )
    }
}

/// A set of mined rules plus the thresholds that produced them.
#[derive(Debug, Clone)]
pub struct RuleSet {
    rules: Vec<Rule>,
    /// Minimum confidence used at derivation time.
    pub min_confidence: f64,
}

impl RuleSet {
    /// Derive rules from `frequent` itemsets: for every frequent set of
    /// size ≥ 2 and every single-item consequent choice whose
    /// confidence clears `min_confidence`.
    ///
    /// Rules are sorted by descending confidence, then support, then
    /// rule order, so reports are deterministic.
    #[must_use]
    pub fn derive(frequent: &FrequentItemsets, min_confidence: f64) -> Self {
        let total = frequent.total_transactions();
        let mut rules = Vec::new();
        for f in frequent.iter().filter(|f| f.set.len() >= 2) {
            for i in 0..f.set.len() {
                let antecedent = f.set.without(i);
                let consequent = f.set.items()[i].clone();
                let Some(ant_count) = frequent.count_of(&antecedent) else {
                    continue; // downward closure guarantees this in practice
                };
                let Some(cons_count) = frequent.count_of(&Itemset::singleton(consequent.clone()))
                else {
                    continue;
                };
                if ant_count == 0 || total == 0 {
                    continue;
                }
                let confidence = f.count as f64 / ant_count as f64;
                if confidence < min_confidence {
                    continue;
                }
                let support = f.count as f64 / total as f64;
                let base = cons_count as f64 / total as f64;
                let lift = if base > 0.0 { confidence / base } else { 0.0 };
                rules.push(Rule { antecedent, consequent, support, confidence, lift });
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.support.total_cmp(&a.support))
                .then_with(|| a.antecedent.cmp(&b.antecedent))
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        RuleSet { rules, min_confidence }
    }

    /// The rules, strongest first.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rule was derived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Keep only the `n` strongest rules (for constraint budgets).
    #[must_use]
    pub fn top(&self, n: usize) -> RuleSet {
        RuleSet {
            rules: self.rules.iter().take(n).cloned().collect(),
            min_confidence: self.min_confidence,
        }
    }

    /// Re-measure every rule against `tx` and report the drift.
    #[must_use]
    pub fn drift_against(&self, tx: &Transactions) -> RuleDrift {
        let mut surviving = 0usize;
        let mut broken = Vec::new();
        let mut max_confidence_drop: f64 = 0.0;
        let mut mean_abs_confidence_delta = 0.0;
        for rule in &self.rules {
            let ant = tx.support_count(&rule.antecedent);
            let full = tx.support_count(&rule.full_set());
            let confidence = if ant == 0 { 0.0 } else { full as f64 / ant as f64 };
            let delta = confidence - rule.confidence;
            mean_abs_confidence_delta += delta.abs();
            max_confidence_drop = max_confidence_drop.max(-delta);
            if confidence >= self.min_confidence {
                surviving += 1;
            } else {
                broken.push(BrokenRule { rule: rule.clone(), new_confidence: confidence });
            }
        }
        if !self.rules.is_empty() {
            mean_abs_confidence_delta /= self.rules.len() as f64;
        }
        RuleDrift {
            total_rules: self.rules.len(),
            surviving,
            broken,
            max_confidence_drop,
            mean_abs_confidence_delta,
        }
    }
}

/// A rule whose confidence fell below the derivation threshold.
#[derive(Debug, Clone)]
pub struct BrokenRule {
    /// The original rule.
    pub rule: Rule,
    /// Its confidence in the drifted data.
    pub new_confidence: f64,
}

/// Drift report of a [`RuleSet`] against altered data.
#[derive(Debug, Clone)]
pub struct RuleDrift {
    /// Rules measured.
    pub total_rules: usize,
    /// Rules still clearing the confidence threshold.
    pub surviving: usize,
    /// Rules that fell below it.
    pub broken: Vec<BrokenRule>,
    /// Largest confidence decrease across rules.
    pub max_confidence_drop: f64,
    /// Mean |confidence delta| across rules.
    pub mean_abs_confidence_delta: f64,
}

impl RuleDrift {
    /// Fraction of rules surviving, `1.0` for an empty set.
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        if self.total_rules == 0 {
            1.0
        } else {
            self.surviving as f64 / self.total_rules as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{mine, AprioriConfig};
    use catmark_relation::{AttrType, Relation, Schema, Value};

    fn dept_shelf_relation(n: i64, noise_every: i64) -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("dept", AttrType::Integer)
            .categorical_attr("shelf", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..n {
            let dept = i % 4;
            let shelf =
                if noise_every > 0 && i % noise_every == noise_every - 1 { 99 } else { dept * 10 };
            rel.push(vec![Value::Int(i), Value::Int(dept), Value::Int(shelf)]).unwrap();
        }
        rel
    }

    fn mined_rules(rel: &Relation, min_conf: f64) -> (RuleSet, Transactions) {
        let tx = Transactions::from_relation(rel, &["dept", "shelf"]).unwrap();
        let freq = mine(&tx, &AprioriConfig { min_support: 0.1, max_len: 2 });
        (RuleSet::derive(&freq, min_conf), tx)
    }

    #[test]
    fn derives_high_confidence_dept_to_shelf_rules() {
        let rel = dept_shelf_relation(200, 10);
        let (rules, _) = mined_rules(&rel, 0.8);
        // dept=d ⇒ shelf=10d has confidence 0.9; the reverse direction
        // has confidence 1.0 (a 10d shelf only comes from dept d).
        assert!(!rules.is_empty());
        for r in rules.rules() {
            assert!(r.confidence >= 0.8, "{r}");
            assert!(r.lift > 1.0, "real associations lift: {r}");
        }
        // Noise rows (i % 10 == 9) are odd, so depts 0 and 2 are never
        // noised: 4 exact shelf ⇒ dept rules plus dept0 ⇒ shelf0 and
        // dept2 ⇒ shelf20.
        let perfect = rules.rules().iter().filter(|r| r.confidence >= 0.999).count();
        assert_eq!(perfect, 6, "exact rules");
    }

    #[test]
    fn confidence_ordering_is_descending() {
        let rel = dept_shelf_relation(200, 10);
        let (rules, _) = mined_rules(&rel, 0.5);
        let confs: Vec<f64> = rules.rules().iter().map(|r| r.confidence).collect();
        assert!(confs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn drift_on_identical_data_is_zero() {
        let rel = dept_shelf_relation(200, 10);
        let (rules, tx) = mined_rules(&rel, 0.8);
        let drift = rules.drift_against(&tx);
        assert_eq!(drift.surviving, drift.total_rules);
        assert!(drift.broken.is_empty());
        assert_eq!(drift.max_confidence_drop, 0.0);
        assert_eq!(drift.survival_rate(), 1.0);
    }

    #[test]
    fn drift_detects_broken_rules() {
        let rel = dept_shelf_relation(200, 10);
        let (rules, _) = mined_rules(&rel, 0.85);
        // Scramble shelves for dept 0 entirely.
        let mut altered = rel.clone();
        let shelf_idx = 2;
        for row in 0..altered.len() {
            let dept = altered.tuple(row).unwrap().get(1).clone();
            if dept == Value::Int(0) {
                altered.update_value(row, shelf_idx, Value::Int(77)).unwrap();
            }
        }
        let tx = Transactions::from_relation(&altered, &["dept", "shelf"]).unwrap();
        let drift = rules.drift_against(&tx);
        assert!(drift.surviving < drift.total_rules);
        assert!(!drift.broken.is_empty());
        assert!(drift.max_confidence_drop > 0.5);
        // Every broken rule mentions dept 0 or shelf 0.
        for b in &drift.broken {
            let touches_zero = b.rule.full_set().items().iter().any(|it| it.value == Value::Int(0));
            assert!(touches_zero, "unexpected break: {}", b.rule);
        }
    }

    #[test]
    fn top_keeps_strongest() {
        let rel = dept_shelf_relation(200, 10);
        let (rules, _) = mined_rules(&rel, 0.5);
        let top2 = rules.top(2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2.rules()[0].confidence, rules.rules()[0].confidence);
    }

    #[test]
    fn empty_ruleset_reports_full_survival() {
        let rel = dept_shelf_relation(20, 0);
        let tx = Transactions::from_relation(&rel, &["dept", "shelf"]).unwrap();
        let freq = mine(&tx, &AprioriConfig { min_support: 0.99, max_len: 2 });
        let rules = RuleSet::derive(&freq, 0.9);
        assert!(rules.is_empty());
        let drift = rules.drift_against(&tx);
        assert_eq!(drift.survival_rate(), 1.0);
    }

    #[test]
    fn rule_display_is_informative() {
        let rel = dept_shelf_relation(100, 10);
        let (rules, _) = mined_rules(&rel, 0.8);
        let s = rules.rules()[0].to_string();
        assert!(s.contains("⇒") && s.contains("conf"), "{s}");
    }
}
