//! Items, itemsets and transaction extraction.
//!
//! Association-rule mining treats each relation row as a *transaction*
//! whose items are `(attribute, value)` pairs drawn from a chosen set
//! of categorical attributes. Because an attribute holds exactly one
//! value per row, an itemset never contains two items with the same
//! attribute — candidate generation exploits this to prune early.

use std::fmt;

use catmark_relation::{Relation, RelationError, Value};

/// One `(attribute, value)` pair — the unit of association mining.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item {
    /// Attribute index in the mined relation's schema.
    pub attr: usize,
    /// The categorical value.
    pub value: Value,
}

impl Item {
    /// Item for attribute index `attr` holding `value`.
    #[must_use]
    pub fn new(attr: usize, value: Value) -> Self {
        Item { attr, value }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Value::Int(v) => write!(f, "#{}={v}", self.attr),
            Value::Text(s) => write!(f, "#{}={s:?}", self.attr),
        }
    }
}

/// A sorted, duplicate-free set of items with at most one item per
/// attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Itemset {
    items: Vec<Item>,
}

impl Itemset {
    /// Itemset from arbitrary items; sorts and deduplicates.
    ///
    /// Returns `None` when two distinct items share an attribute (such
    /// a set can never be satisfied by any row).
    #[must_use]
    pub fn new(items: impl IntoIterator<Item = Item>) -> Option<Self> {
        let mut items: Vec<Item> = items.into_iter().collect();
        items.sort();
        items.dedup();
        if items.windows(2).any(|w| w[0].attr == w[1].attr) {
            return None;
        }
        Some(Itemset { items })
    }

    /// The singleton `{item}`.
    #[must_use]
    pub fn singleton(item: Item) -> Self {
        Itemset { items: vec![item] }
    }

    /// The items, sorted.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether row `values` (a full tuple, indexed by attribute)
    /// satisfies every item.
    #[must_use]
    pub fn matches(&self, values: &[Value]) -> bool {
        self.items.iter().all(|it| values.get(it.attr) == Some(&it.value))
    }

    /// [`Itemset::matches`] against `values` with position `attr`
    /// substituted by `value` — the what-if form the incremental
    /// quality constraints evaluate per candidate alteration, without
    /// materializing the altered row.
    #[must_use]
    pub fn matches_substituted(&self, values: &[Value], attr: usize, value: &Value) -> bool {
        self.items.iter().all(|it| {
            if it.attr == attr {
                *value == it.value
            } else {
                values.get(it.attr) == Some(&it.value)
            }
        })
    }

    /// This set without the item at position `i` — the antecedent left
    /// when item `i` becomes a rule consequent.
    #[must_use]
    pub fn without(&self, i: usize) -> Itemset {
        let mut items = self.items.clone();
        items.remove(i);
        Itemset { items }
    }

    /// Union with another itemset; `None` on attribute conflict.
    #[must_use]
    pub fn union(&self, other: &Itemset) -> Option<Itemset> {
        Itemset::new(self.items.iter().chain(other.items.iter()).cloned())
    }

    /// Whether `self` contains every item of `other`.
    #[must_use]
    pub fn is_superset_of(&self, other: &Itemset) -> bool {
        other.items.iter().all(|it| self.items.binary_search(it).is_ok())
    }

    /// Try extending by one item (keeps sortedness); `None` when the
    /// attribute is already present.
    #[must_use]
    pub fn extended(&self, item: Item) -> Option<Itemset> {
        if self.items.iter().any(|it| it.attr == item.attr) {
            return None;
        }
        let mut items = self.items.clone();
        let pos = items.binary_search(&item).unwrap_err();
        items.insert(pos, item);
        Some(Itemset { items })
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

/// The transaction view of a relation: per-row item lists over the
/// chosen categorical attributes, plus the row count.
#[derive(Debug, Clone)]
pub struct Transactions {
    /// Attribute indices mined, in ascending order.
    pub attrs: Vec<usize>,
    rows: Vec<Vec<Value>>,
}

impl Transactions {
    /// Extract transactions from `rel` over `attrs` (attribute names).
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`] for unknown attribute names.
    pub fn from_relation(rel: &Relation, attrs: &[&str]) -> Result<Self, RelationError> {
        let mut indices = Vec::with_capacity(attrs.len());
        for name in attrs {
            indices.push(rel.schema().index_of(name)?);
        }
        indices.sort_unstable();
        indices.dedup();
        let rows = rel.iter().map(|t| t.values().to_vec()).collect();
        Ok(Transactions { attrs: indices, rows })
    }

    /// Number of transactions (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no transactions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The full tuples, row-major.
    #[must_use]
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// How many rows satisfy `set`.
    #[must_use]
    pub fn support_count(&self, set: &Itemset) -> u64 {
        self.rows.iter().filter(|r| set.matches(r)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_relation::{AttrType, Schema};

    fn item(attr: usize, v: i64) -> Item {
        Item::new(attr, Value::Int(v))
    }

    #[test]
    fn itemset_sorts_and_dedups() {
        let s = Itemset::new([item(2, 5), item(1, 3), item(2, 5)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.items()[0], item(1, 3));
    }

    #[test]
    fn itemset_rejects_attribute_conflict() {
        assert!(Itemset::new([item(1, 3), item(1, 4)]).is_none());
    }

    #[test]
    fn matches_checks_all_items() {
        let s = Itemset::new([item(1, 3), item(2, 7)]).unwrap();
        let row = vec![Value::Int(0), Value::Int(3), Value::Int(7)];
        assert!(s.matches(&row));
        let row2 = vec![Value::Int(0), Value::Int(3), Value::Int(8)];
        assert!(!s.matches(&row2));
    }

    #[test]
    fn without_and_union_are_inverse_ish() {
        let s = Itemset::new([item(1, 3), item(2, 7)]).unwrap();
        let ant = s.without(1);
        assert_eq!(ant.len(), 1);
        let back = ant.union(&Itemset::singleton(item(2, 7))).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn union_conflict_is_none() {
        let a = Itemset::singleton(item(1, 3));
        let b = Itemset::singleton(item(1, 4));
        assert!(a.union(&b).is_none());
    }

    #[test]
    fn extended_keeps_sorted_and_checks_attr() {
        let s = Itemset::singleton(item(3, 1));
        let e = s.extended(item(1, 9)).unwrap();
        assert_eq!(e.items()[0].attr, 1);
        assert!(e.extended(item(3, 2)).is_none());
    }

    #[test]
    fn superset_logic() {
        let big = Itemset::new([item(1, 1), item(2, 2), item(3, 3)]).unwrap();
        let small = Itemset::new([item(1, 1), item(3, 3)]).unwrap();
        assert!(big.is_superset_of(&small));
        assert!(!small.is_superset_of(&big));
        assert!(big.is_superset_of(&Itemset::default()));
    }

    #[test]
    fn transactions_extract_and_count() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .categorical_attr("b", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..10i64 {
            rel.push(vec![Value::Int(i), Value::Int(i % 2), Value::Int(i % 3)]).unwrap();
        }
        let tx = Transactions::from_relation(&rel, &["a", "b"]).unwrap();
        assert_eq!(tx.len(), 10);
        assert_eq!(tx.attrs, vec![1, 2]);
        let even_a = Itemset::singleton(Item::new(1, Value::Int(0)));
        assert_eq!(tx.support_count(&even_a), 5);
        let joint =
            Itemset::new([Item::new(1, Value::Int(0)), Item::new(2, Value::Int(0))]).unwrap();
        // i ≡ 0 mod 6 → rows 0, 6.
        assert_eq!(tx.support_count(&joint), 2);
    }

    #[test]
    fn transactions_unknown_attr_errors() {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .build()
            .unwrap();
        let rel = Relation::new(schema);
        assert!(Transactions::from_relation(&rel, &["nope"]).is_err());
    }

    #[test]
    fn display_formats_readably() {
        let s = Itemset::new([item(1, 3), Item::new(2, Value::Text("x".into()))]).unwrap();
        assert_eq!(s.to_string(), "{#1=3, #2=\"x\"}");
    }
}
