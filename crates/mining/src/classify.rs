//! Categorical classifiers for semantic-consistency measurement.
//!
//! The paper's conclusions propose encoding with "direct awareness of
//! semantic consistency (e.g. classification and association rules)".
//! A downstream consumer of a watermarked relation often trains a
//! classifier on it; a watermark that flips the decision boundary has
//! destroyed value even if every individual alteration looked benign.
//! This module provides two classic categorical classifiers — OneR
//! (Holte's one-rule) and naive Bayes with Laplace smoothing — plus an
//! accuracy metric, so embeddings can be constrained to preserve the
//! learned model (see [`constraints`](crate::constraints)).

use std::collections::HashMap;

use catmark_relation::query::dense_codes;
use catmark_relation::{Relation, RelationError, Value};

/// A trained categorical classifier: predicts a target attribute from
/// predictor attributes, both by index into the training schema.
pub trait Classifier {
    /// Predict the target value for a full tuple (indexed by the
    /// training schema). `None` when a predictor value was never seen
    /// in training and the model cannot back off.
    fn predict(&self, values: &[Value]) -> Option<Value>;

    /// Target attribute index.
    fn target(&self) -> usize;

    /// Predictor attribute indices consulted by [`Classifier::predict`].
    fn predictors(&self) -> &[usize];
}

/// Fraction of rows of `rel` on which `clf` predicts the target
/// correctly; unseen-predictor rows count as misses.
#[must_use]
pub fn accuracy(clf: &dyn Classifier, rel: &Relation) -> f64 {
    if rel.is_empty() {
        return 0.0;
    }
    let hits = rel
        .iter()
        .filter(|t| clf.predict(t.values()).as_ref() == Some(t.get(clf.target())))
        .count();
    hits as f64 / rel.len() as f64
}

/// Holte's OneR: pick the single predictor whose value→majority-class
/// table misclassifies the fewest training rows.
#[derive(Debug, Clone)]
pub struct OneR {
    predictor: usize,
    target: usize,
    predictors: Vec<usize>,
    table: HashMap<Value, Value>,
    default: Value,
    training_error: f64,
}

impl OneR {
    /// Train on `rel`, choosing among `candidate_predictors` (names)
    /// the best single predictor of `target_attr`.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`] for unknown names, or
    /// [`RelationError::InvalidSchema`] when there are no candidates,
    /// the candidate list contains the target, or the relation is
    /// empty.
    pub fn train(
        rel: &Relation,
        target_attr: &str,
        candidate_predictors: &[&str],
    ) -> Result<Self, RelationError> {
        let target = rel.schema().index_of(target_attr)?;
        if candidate_predictors.is_empty() {
            return Err(RelationError::InvalidSchema(
                "OneR needs at least one candidate predictor".into(),
            ));
        }
        if rel.is_empty() {
            return Err(RelationError::InvalidSchema(
                "cannot train OneR on an empty relation".into(),
            ));
        }
        let mut best: Option<(usize, HashMap<Value, Value>, usize)> = None;
        // Dense-code both consulted columns once: the counting loop
        // below is pure integer indexing, and Values materialize only
        // for the distinct entries that reach the rule table.
        let (t_codes, t_values) = dense_codes(rel, target);
        for name in candidate_predictors {
            let p = rel.schema().index_of(name)?;
            if p == target {
                return Err(RelationError::InvalidSchema(format!(
                    "predictor {name:?} is the target attribute"
                )));
            }
            let (p_codes, p_values) = dense_codes(rel, p);
            let mut table = HashMap::new();
            let mut errors = 0usize;
            let mut tally = |pc: usize, majority: Option<(usize, u64, u64)>| {
                // Dictionary entries no row references have no class.
                let Some((mtc, mn, total)) = majority else { return };
                errors += (total - mn) as usize;
                table.insert(p_values[pc].clone(), t_values[mtc].clone());
            };
            // counts[predictor code][class code] — dense for the
            // common low-cardinality cross product, per-value sparse
            // maps otherwise (a near-unique column would make the
            // dense matrix quadratic in memory).
            if p_values.len().saturating_mul(t_values.len()) <= DENSE_COUNT_CELLS_MAX {
                let mut counts = vec![vec![0u64; t_values.len()]; p_values.len()];
                for (&pc, &tc) in p_codes.iter().zip(&t_codes) {
                    counts[pc as usize][tc as usize] += 1;
                }
                for (pc, classes) in counts.iter().enumerate() {
                    let pairs = classes.iter().enumerate().map(|(tc, &n)| (tc, n));
                    tally(pc, majority_scan(pairs, &t_values));
                }
            } else {
                let mut counts: Vec<HashMap<u32, u64>> = vec![HashMap::new(); p_values.len()];
                for (&pc, &tc) in p_codes.iter().zip(&t_codes) {
                    *counts[pc as usize].entry(tc).or_insert(0) += 1;
                }
                for (pc, classes) in counts.iter().enumerate() {
                    let pairs = classes.iter().map(|(&tc, &n)| (tc as usize, n));
                    tally(pc, majority_scan(pairs, &t_values));
                }
            }
            if best.as_ref().is_none_or(|(_, _, e)| errors < *e) {
                best = Some((p, table, errors));
            }
        }
        let (predictor, table, errors) = best.expect("candidates checked non-empty");
        let default = majority_class(&t_codes, &t_values);
        Ok(OneR {
            predictor,
            target,
            predictors: vec![predictor],
            table,
            default,
            training_error: errors as f64 / rel.len() as f64,
        })
    }

    /// The chosen predictor's attribute index.
    #[must_use]
    pub fn predictor(&self) -> usize {
        self.predictor
    }

    /// Fraction of training rows the rule misclassifies.
    #[must_use]
    pub fn training_error(&self) -> f64 {
        self.training_error
    }
}

impl Classifier for OneR {
    fn predict(&self, values: &[Value]) -> Option<Value> {
        let v = values.get(self.predictor)?;
        Some(self.table.get(v).unwrap_or(&self.default).clone())
    }

    fn target(&self) -> usize {
        self.target
    }

    fn predictors(&self) -> &[usize] {
        &self.predictors
    }
}

/// Largest predictor-distinct × target-distinct cross product the
/// OneR trainer counts in a dense matrix (32 MiB of `u64` cells);
/// beyond it, counting falls back to per-value sparse maps whose
/// memory is bounded by the *observed* pairs.
const DENSE_COUNT_CELLS_MAX: usize = 1 << 22;

/// Majority class among `(class code, count)` pairs, ties broken
/// toward the smallest class label (order-independent, so sparse map
/// iteration is safe). Returns `(majority code, its count, total)`.
fn majority_scan(
    pairs: impl Iterator<Item = (usize, u64)>,
    t_values: &[Value],
) -> Option<(usize, u64, u64)> {
    let mut majority: Option<(usize, u64)> = None;
    let mut total = 0u64;
    for (tc, n) in pairs {
        if n == 0 {
            continue;
        }
        total += n;
        let better = match majority {
            None => true,
            Some((btc, bn)) => n > bn || (n == bn && t_values[tc] < t_values[btc]),
        };
        if better {
            majority = Some((tc, n));
        }
    }
    majority.map(|(tc, n)| (tc, n, total))
}

/// The most frequent class over dense-coded target rows, ties broken
/// toward the smallest class label.
fn majority_class(t_codes: &[u32], t_values: &[Value]) -> Value {
    let mut counts = vec![0u64; t_values.len()];
    for &tc in t_codes {
        counts[tc as usize] += 1;
    }
    let mut best: Option<usize> = None;
    for (tc, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => n > counts[b] || (n == counts[b] && t_values[tc] < t_values[b]),
        };
        if better {
            best = Some(tc);
        }
    }
    t_values[best.expect("relation checked non-empty")].clone()
}

/// Categorical naive Bayes with Laplace (add-one) smoothing.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    target: usize,
    predictors: Vec<usize>,
    classes: Vec<Value>,
    /// Log prior per class.
    log_prior: Vec<f64>,
    /// Per predictor: value → per-class log likelihood.
    likelihood: Vec<HashMap<Value, Vec<f64>>>,
    /// Per predictor: log likelihood for unseen values (smoothing
    /// mass), per class.
    unseen: Vec<Vec<f64>>,
}

impl NaiveBayes {
    /// Train on `rel`: predict `target_attr` from `predictor_attrs`.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownAttr`] for unknown names, or
    /// [`RelationError::InvalidSchema`] for an empty relation, empty
    /// predictor list, or a predictor equal to the target.
    pub fn train(
        rel: &Relation,
        target_attr: &str,
        predictor_attrs: &[&str],
    ) -> Result<Self, RelationError> {
        let target = rel.schema().index_of(target_attr)?;
        if predictor_attrs.is_empty() {
            return Err(RelationError::InvalidSchema(
                "naive Bayes needs at least one predictor".into(),
            ));
        }
        if rel.is_empty() {
            return Err(RelationError::InvalidSchema(
                "cannot train naive Bayes on an empty relation".into(),
            ));
        }
        let mut predictors = Vec::with_capacity(predictor_attrs.len());
        for name in predictor_attrs {
            let p = rel.schema().index_of(name)?;
            if p == target {
                return Err(RelationError::InvalidSchema(format!(
                    "predictor {name:?} is the target attribute"
                )));
            }
            predictors.push(p);
        }

        // Dense-code the target column once; classes are the *seen*
        // codes, sorted by value so the model is independent of
        // counting order.
        let (t_codes, t_values) = dense_codes(rel, target);
        let mut counts_by_code = vec![0u64; t_values.len()];
        for &tc in &t_codes {
            counts_by_code[tc as usize] += 1;
        }
        let mut seen_codes: Vec<usize> =
            (0..t_values.len()).filter(|&tc| counts_by_code[tc] > 0).collect();
        seen_codes.sort_by(|&a, &b| t_values[a].cmp(&t_values[b]));
        let classes: Vec<Value> = seen_codes.iter().map(|&tc| t_values[tc].clone()).collect();
        let class_counts: Vec<u64> = seen_codes.iter().map(|&tc| counts_by_code[tc]).collect();
        // target code → index into the sorted class list.
        let mut class_idx_of = vec![usize::MAX; t_values.len()];
        for (i, &tc) in seen_codes.iter().enumerate() {
            class_idx_of[tc] = i;
        }
        let n = rel.len() as f64;
        let log_prior: Vec<f64> = class_counts.iter().map(|&c| (c as f64 / n).ln()).collect();

        // Per-predictor conditional counts, in code space.
        let mut likelihood = Vec::with_capacity(predictors.len());
        let mut unseen = Vec::with_capacity(predictors.len());
        for &p in &predictors {
            let (p_codes, p_values) = dense_codes(rel, p);
            let mut counts = vec![vec![0u64; classes.len()]; p_values.len()];
            let mut p_seen = vec![false; p_values.len()];
            for (&pc, &tc) in p_codes.iter().zip(&t_codes) {
                counts[pc as usize][class_idx_of[tc as usize]] += 1;
                p_seen[pc as usize] = true;
            }
            // Smoothing mass counts distinct *observed* predictor
            // values (text dictionaries may carry unused entries).
            let domain_size = p_seen.iter().filter(|&&s| s).count() as f64;
            let mut table: HashMap<Value, Vec<f64>> = HashMap::with_capacity(p_values.len());
            for (pc, per_class) in counts.into_iter().enumerate() {
                if !p_seen[pc] {
                    continue;
                }
                let logs = per_class
                    .iter()
                    .zip(&class_counts)
                    .map(|(&c, &class_total)| {
                        ((c as f64 + 1.0) / (class_total as f64 + domain_size + 1.0)).ln()
                    })
                    .collect();
                table.insert(p_values[pc].clone(), logs);
            }
            let unseen_logs = class_counts
                .iter()
                .map(|&class_total| (1.0 / (class_total as f64 + domain_size + 1.0)).ln())
                .collect();
            likelihood.push(table);
            unseen.push(unseen_logs);
        }
        Ok(NaiveBayes { target, predictors, classes, log_prior, likelihood, unseen })
    }

    /// The class labels seen in training, sorted.
    #[must_use]
    pub fn classes(&self) -> &[Value] {
        &self.classes
    }
}

impl Classifier for NaiveBayes {
    fn predict(&self, values: &[Value]) -> Option<Value> {
        let mut scores = self.log_prior.clone();
        for (slot, &p) in self.predictors.iter().enumerate() {
            let v = values.get(p)?;
            let logs = self.likelihood[slot].get(v).unwrap_or(&self.unseen[slot]);
            for (s, l) in scores.iter_mut().zip(logs) {
                *s += *l;
            }
        }
        let best =
            scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))?.0;
        Some(self.classes[best].clone())
    }

    fn target(&self) -> usize {
        self.target
    }

    fn predictors(&self) -> &[usize] {
        &self.predictors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_relation::{AttrType, Schema};

    /// dept (0..4) determines aisle exactly; region is noise.
    fn fixture(n: i64) -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("dept", AttrType::Integer)
            .categorical_attr("region", AttrType::Integer)
            .categorical_attr("aisle", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..n {
            let dept = i % 4;
            let region = (i * 7) % 5;
            let aisle = dept + 100;
            rel.push(vec![Value::Int(i), Value::Int(dept), Value::Int(region), Value::Int(aisle)])
                .unwrap();
        }
        rel
    }

    #[test]
    fn oner_picks_the_informative_predictor() {
        let rel = fixture(200);
        let clf = OneR::train(&rel, "aisle", &["region", "dept"]).unwrap();
        assert_eq!(clf.predictor(), rel.schema().index_of("dept").unwrap());
        assert_eq!(clf.training_error(), 0.0);
        assert_eq!(accuracy(&clf, &rel), 1.0);
    }

    #[test]
    fn oner_unseen_value_falls_back_to_majority() {
        let rel = fixture(100);
        let clf = OneR::train(&rel, "aisle", &["dept"]).unwrap();
        let pred =
            clf.predict(&[Value::Int(0), Value::Int(999), Value::Int(0), Value::Int(0)]).unwrap();
        // Majority aisle (all tie at 25 each → smallest label wins).
        assert_eq!(pred, Value::Int(100));
    }

    #[test]
    fn oner_rejects_degenerate_inputs() {
        let rel = fixture(10);
        assert!(OneR::train(&rel, "aisle", &[]).is_err());
        assert!(OneR::train(&rel, "aisle", &["aisle"]).is_err());
        assert!(OneR::train(&rel, "nope", &["dept"]).is_err());
        let empty = Relation::new(rel.schema().clone());
        assert!(OneR::train(&empty, "aisle", &["dept"]).is_err());
    }

    #[test]
    fn oner_sparse_counting_handles_near_unique_columns() {
        // predictor and target both near-unique: the distinct cross
        // product (25M cells) exceeds the dense-matrix cap, so the
        // sparse path must produce the same exact rule.
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("p", AttrType::Integer)
            .categorical_attr("t", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..5_000i64 {
            rel.push(vec![Value::Int(i), Value::Int(i), Value::Int(i * 2)]).unwrap();
        }
        let clf = OneR::train(&rel, "t", &["p"]).unwrap();
        assert_eq!(clf.training_error(), 0.0);
        assert_eq!(accuracy(&clf, &rel), 1.0);
    }

    #[test]
    fn naive_bayes_learns_exact_mapping() {
        let rel = fixture(200);
        let clf = NaiveBayes::train(&rel, "aisle", &["dept", "region"]).unwrap();
        assert_eq!(accuracy(&clf, &rel), 1.0);
        assert_eq!(clf.classes().len(), 4);
    }

    #[test]
    fn naive_bayes_handles_unseen_predictor_values() {
        let rel = fixture(100);
        let clf = NaiveBayes::train(&rel, "aisle", &["dept"]).unwrap();
        let pred = clf.predict(&[Value::Int(0), Value::Int(999), Value::Int(0), Value::Int(0)]);
        assert!(pred.is_some(), "smoothing backs off, never abstains");
    }

    #[test]
    fn naive_bayes_beats_chance_under_noise() {
        // aisle = dept except 20% of rows scrambled.
        let rel = {
            let mut rel = fixture(500);
            let aisle_idx = 3;
            for row in (0..rel.len()).step_by(5) {
                rel.update_value(row, aisle_idx, Value::Int(100 + (row as i64 * 3) % 4)).unwrap();
            }
            rel
        };
        let clf = NaiveBayes::train(&rel, "aisle", &["dept"]).unwrap();
        let acc = accuracy(&clf, &rel);
        assert!(acc > 0.75, "acc={acc}");
    }

    #[test]
    fn naive_bayes_rejects_degenerate_inputs() {
        let rel = fixture(10);
        assert!(NaiveBayes::train(&rel, "aisle", &[]).is_err());
        assert!(NaiveBayes::train(&rel, "aisle", &["aisle"]).is_err());
        let empty = Relation::new(rel.schema().clone());
        assert!(NaiveBayes::train(&empty, "aisle", &["dept"]).is_err());
    }

    #[test]
    fn accuracy_on_empty_relation_is_zero() {
        let rel = fixture(10);
        let clf = OneR::train(&rel, "aisle", &["dept"]).unwrap();
        let empty = Relation::new(rel.schema().clone());
        assert_eq!(accuracy(&clf, &empty), 0.0);
    }
}
