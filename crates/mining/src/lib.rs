//! `catmark-mining` — semantic-consistency substrate for watermarking.
//!
//! *Proving Ownership over Categorical Data* (Sion, ICDE 2004) closes
//! by proposing "to augment the encoding method with direct awareness
//! of semantic consistency (e.g. classification and association
//! rules). This would likely result in an increase in available
//! encoding bandwidth, thus in a higher encoding resilience." This
//! crate implements that future-work item end to end:
//!
//! * [`item`] — items, itemsets and the transaction view of a
//!   relation;
//! * [`apriori`] — exact level-wise frequent-itemset mining;
//! * [`rules`] — association rule derivation (support / confidence /
//!   lift) and drift measurement against altered data;
//! * [`classify`] — OneR and naive-Bayes categorical classifiers with
//!   an accuracy metric;
//! * [`constraints`] — [`QualityConstraint`] adapters
//!   ([`AssociationRulePreserved`], [`ClassifierAccuracyPreserved`])
//!   that veto embedding alterations damaging the mined semantics,
//!   composing with the paper's Section 4.1 quality guard.
//!
//! # Example: rule-aware embedding
//!
//! ```
//! use catmark_core::quality::{AlterationBudget, QualityGuard};
//! use catmark_core::{MarkSession, Watermark, WatermarkSpec};
//! use catmark_mining::apriori::{mine, AprioriConfig};
//! use catmark_mining::constraints::AssociationRulePreserved;
//! use catmark_mining::item::Transactions;
//! use catmark_mining::rules::RuleSet;
//! use catmark_relation::{AttrType, CategoricalDomain, Relation, Schema, Value};
//!
//! // dept → aisle is a strong (but imperfect) rule in the data.
//! let schema = Schema::builder()
//!     .key_attr("k", AttrType::Integer)
//!     .categorical_attr("aisle", AttrType::Integer)
//!     .build()
//!     .unwrap();
//! let mut rel = Relation::new(schema);
//! for i in 0..2000i64 {
//!     rel.push(vec![Value::Int(i), Value::Int(i % 16)]).unwrap();
//! }
//! let domain = CategoricalDomain::new((0..16).map(Value::Int).collect::<Vec<_>>()).unwrap();
//!
//! // Mine the original semantics…
//! let tx = Transactions::from_relation(&rel, &["aisle"]).unwrap();
//! let freq = mine(&tx, &AprioriConfig { min_support: 0.01, max_len: 1 });
//! assert!(!freq.is_empty());
//!
//! // …then embed under a guard that bounds total distortion.
//! let spec = WatermarkSpec::builder(domain)
//!     .master_key("rule-aware")
//!     .e(20)
//!     .wm_len(8)
//!     .expected_tuples(rel.len())
//!     .build()
//!     .unwrap();
//! let mut guard = QualityGuard::new(vec![Box::new(AlterationBudget::new(150))]);
//! let wm = Watermark::from_u64(0b1011_0010, 8);
//! let session = MarkSession::builder(spec)
//!     .key_column("k")
//!     .target_column("aisle")
//!     .bind(&rel)
//!     .unwrap();
//! let report = session.embed_guarded(&mut rel, &wm, &mut guard).unwrap();
//! assert!(report.fit_tuples > 0);
//! # let _ = RuleSet::derive(&freq, 0.5);
//! # let _ = AssociationRulePreserved::new(&rel, &RuleSet::derive(&freq, 0.5), 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod classify;
pub mod constraints;
pub mod item;
pub mod rules;

pub use apriori::{mine, AprioriConfig, FrequentItemset, FrequentItemsets};
pub use classify::{accuracy, Classifier, NaiveBayes, OneR};
pub use constraints::{AssociationRulePreserved, ClassifierAccuracyPreserved};
pub use item::{Item, Itemset, Transactions};
pub use rules::{Rule, RuleDrift, RuleSet};

// Re-exported so doc links in the crate root resolve.
#[doc(no_inline)]
pub use catmark_core::quality::QualityConstraint;
