//! Semantic-consistency quality constraints.
//!
//! These plug the mining substrate into the watermarking loop: both
//! types implement [`QualityConstraint`], so they slot into a
//! [`catmark_core::quality::QualityGuard`] next to the paper's
//! alteration budgets and frequency-drift limits. Every candidate
//! alteration is tested against the mined model *incrementally* — the
//! constraint keeps a tuple snapshot and per-rule (or per-row)
//! counters, so an `admits` check costs O(rules) rather than a rescan
//! of the relation.
//!
//! This realizes the paper's Section 6 proposal: "augment the encoding
//! method with direct awareness of semantic consistency (e.g.
//! classification and association rules)".

use std::cell::RefCell;

use catmark_core::quality::{Alteration, CodedAlteration, QualityConstraint};
use catmark_relation::{CategoricalDomain, Relation, Value};

use crate::classify::Classifier;
use crate::item::Itemset;
use crate::rules::RuleSet;

struct TrackedRule {
    antecedent: Itemset,
    full: Itemset,
    /// Confidence below which the rule counts as damaged.
    floor: f64,
    ant_count: u64,
    full_count: u64,
}

impl TrackedRule {
    fn confidence(ant: u64, full: u64) -> f64 {
        if ant == 0 {
            // The rule's antecedent vanished from the data — a
            // re-mining consumer would not find the rule at all, so
            // treat it as fully damaged rather than vacuously true.
            0.0
        } else {
            full as f64 / ant as f64
        }
    }
}

/// Vetoes alterations that would damage mined association rules.
///
/// An alteration is admitted iff, for every tracked rule, the rule's
/// confidence after the change stays at or above
/// `original_confidence - max_confidence_drop` (clamped at zero).
/// Confidence *increases* are always admitted.
pub struct AssociationRulePreserved {
    rules: Vec<TrackedRule>,
    rows: Vec<Vec<Value>>,
    /// Decoded domain of a code-bound guarded pass: position `t`
    /// holds the value behind domain code `t`.
    domain_values: Vec<Value>,
}

impl AssociationRulePreserved {
    /// Track `rules` against the current contents of `rel`, allowing
    /// each rule's confidence to drop by at most `max_confidence_drop`.
    ///
    /// Counters are measured from `rel` directly (not the mined
    /// support values), so the constraint is exact even if the rules
    /// were mined from an earlier snapshot.
    #[must_use]
    pub fn new(rel: &Relation, rules: &RuleSet, max_confidence_drop: f64) -> Self {
        let rows: Vec<Vec<Value>> = rel.iter().map(|t| t.values().to_vec()).collect();
        let tracked = rules
            .rules()
            .iter()
            .map(|r| {
                let full = r.full_set();
                let ant_count = rows.iter().filter(|row| r.antecedent.matches(row)).count() as u64;
                let full_count = rows.iter().filter(|row| full.matches(row)).count() as u64;
                let current = TrackedRule::confidence(ant_count, full_count);
                TrackedRule {
                    antecedent: r.antecedent.clone(),
                    full,
                    floor: (current - max_confidence_drop).max(0.0),
                    ant_count,
                    full_count,
                }
            })
            .collect();
        AssociationRulePreserved { rules: tracked, rows, domain_values: Vec::new() }
    }

    /// Number of tracked rules.
    #[must_use]
    pub fn tracked_rules(&self) -> usize {
        self.rules.len()
    }

    /// Current confidence of tracked rule `i`.
    #[must_use]
    pub fn confidence(&self, i: usize) -> f64 {
        let r = &self.rules[i];
        TrackedRule::confidence(r.ant_count, r.full_count)
    }

    /// One rule's (antecedent, full) count delta if `row`'s `attr`
    /// moved to `value`, computed by substitution — no altered row is
    /// ever materialized.
    fn rule_delta(r: &TrackedRule, before: &[Value], attr: usize, value: &Value) -> (i64, i64) {
        let ant = i64::from(r.antecedent.matches_substituted(before, attr, value))
            - i64::from(r.antecedent.matches(before));
        let full = i64::from(r.full.matches_substituted(before, attr, value))
            - i64::from(r.full.matches(before));
        (ant, full)
    }

    fn admits_at(&self, row: usize, attr: usize, value: &Value) -> bool {
        let Some(before) = self.rows.get(row) else {
            return true; // rows added after construction are not tracked
        };
        if attr >= before.len() {
            return true;
        }
        self.rules.iter().all(|r| {
            let (d_ant, d_full) = Self::rule_delta(r, before, attr, value);
            if d_ant == 0 && d_full == 0 {
                return true;
            }
            let ant = r.ant_count.saturating_add_signed(d_ant);
            let full = r.full_count.saturating_add_signed(d_full);
            let new_conf = TrackedRule::confidence(ant, full);
            let old_conf = TrackedRule::confidence(r.ant_count, r.full_count);
            new_conf >= old_conf || new_conf >= r.floor
        })
    }

    fn apply_at(&mut self, row: usize, attr: usize, value: &Value) {
        let Some(before) = self.rows.get(row) else {
            return;
        };
        if attr >= before.len() {
            return;
        }
        for r in &mut self.rules {
            let (d_ant, d_full) = Self::rule_delta(r, before, attr, value);
            r.ant_count = r.ant_count.saturating_add_signed(d_ant);
            r.full_count = r.full_count.saturating_add_signed(d_full);
        }
        self.rows[row][attr] = value.clone();
    }
}

impl QualityConstraint for AssociationRulePreserved {
    fn name(&self) -> &str {
        "association-rules"
    }

    fn admits(&self, change: &Alteration) -> bool {
        self.admits_at(change.row, change.attr, &change.new)
    }

    fn commit(&mut self, change: &Alteration) {
        let value = change.new.clone();
        self.apply_at(change.row, change.attr, &value);
    }

    fn rollback(&mut self, change: &Alteration) {
        let value = change.old.clone();
        self.apply_at(change.row, change.attr, &value);
    }

    /// Decode the domain once; coded proposals then borrow their
    /// values straight from the table (no per-check materialization).
    fn bind_codes(&mut self, _attr: usize, domain: &CategoricalDomain) -> bool {
        self.domain_values = domain.values().to_vec();
        true
    }

    fn admits_coded(&self, change: &CodedAlteration) -> bool {
        self.admits_at(change.row, change.attr, &self.domain_values[change.new as usize])
    }

    fn commit_coded(&mut self, change: &CodedAlteration) {
        let value = self.domain_values[change.new as usize].clone();
        self.apply_at(change.row, change.attr, &value);
    }

    fn rollback_coded(&mut self, change: &CodedAlteration) {
        let value = self.domain_values[change.old as usize].clone();
        self.apply_at(change.row, change.attr, &value);
    }
}

/// Vetoes alterations that would push a trained classifier's accuracy
/// on the relation below a floor.
///
/// The classifier is trained *before* embedding (on the original
/// data) and frozen; the constraint tracks, per row, whether the
/// classifier still predicts the row's target correctly as values
/// move underneath it.
pub struct ClassifierAccuracyPreserved {
    clf: Box<dyn Classifier>,
    rows: Vec<Vec<Value>>,
    correct: Vec<bool>,
    hits: usize,
    min_accuracy: f64,
    /// Scratch row for what-if predictions: reused across checks so
    /// the admit path never allocates a row vector.
    scratch: RefCell<Vec<Value>>,
    /// Decoded domain of a code-bound guarded pass.
    domain_values: Vec<Value>,
}

impl ClassifierAccuracyPreserved {
    /// Track `clf`'s accuracy over `rel`, vetoing changes that would
    /// push it below `min_accuracy`.
    #[must_use]
    pub fn new(rel: &Relation, clf: Box<dyn Classifier>, min_accuracy: f64) -> Self {
        let rows: Vec<Vec<Value>> = rel.iter().map(|t| t.values().to_vec()).collect();
        let correct: Vec<bool> = rows.iter().map(|row| Self::row_correct(&*clf, row)).collect();
        let hits = correct.iter().filter(|&&c| c).count();
        ClassifierAccuracyPreserved {
            clf,
            rows,
            correct,
            hits,
            min_accuracy,
            scratch: RefCell::new(Vec::new()),
            domain_values: Vec::new(),
        }
    }

    fn row_correct(clf: &dyn Classifier, row: &[Value]) -> bool {
        clf.predict(row).as_ref() == row.get(clf.target())
    }

    /// Current tracked accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.rows.len() as f64
        }
    }

    fn hits_after(&self, row: usize, attr: usize, value: &Value) -> Option<usize> {
        let before = self.rows.get(row)?;
        if attr >= before.len() {
            return None;
        }
        let mut scratch = self.scratch.borrow_mut();
        scratch.clone_from(before);
        scratch[attr] = value.clone();
        let was = self.correct[row];
        let now = Self::row_correct(&*self.clf, &scratch);
        Some(match (was, now) {
            (true, false) => self.hits - 1,
            (false, true) => self.hits + 1,
            _ => self.hits,
        })
    }

    fn admits_at(&self, row: usize, attr: usize, value: &Value) -> bool {
        let Some(hits) = self.hits_after(row, attr, value) else {
            return true;
        };
        if self.rows.is_empty() {
            return true;
        }
        hits as f64 / self.rows.len() as f64 >= self.min_accuracy
    }

    fn apply_at(&mut self, row: usize, attr: usize, value: &Value) {
        let Some(hits) = self.hits_after(row, attr, value) else {
            return;
        };
        self.hits = hits;
        self.rows[row][attr] = value.clone();
        self.correct[row] = Self::row_correct(&*self.clf, &self.rows[row]);
    }
}

impl QualityConstraint for ClassifierAccuracyPreserved {
    fn name(&self) -> &str {
        "classifier-accuracy"
    }

    fn admits(&self, change: &Alteration) -> bool {
        self.admits_at(change.row, change.attr, &change.new)
    }

    fn commit(&mut self, change: &Alteration) {
        let value = change.new.clone();
        self.apply_at(change.row, change.attr, &value);
    }

    fn rollback(&mut self, change: &Alteration) {
        let value = change.old.clone();
        self.apply_at(change.row, change.attr, &value);
    }

    /// Decode the domain once; coded proposals then borrow their
    /// values from the table.
    fn bind_codes(&mut self, _attr: usize, domain: &CategoricalDomain) -> bool {
        self.domain_values = domain.values().to_vec();
        true
    }

    fn admits_coded(&self, change: &CodedAlteration) -> bool {
        self.admits_at(change.row, change.attr, &self.domain_values[change.new as usize])
    }

    fn commit_coded(&mut self, change: &CodedAlteration) {
        let value = self.domain_values[change.new as usize].clone();
        self.apply_at(change.row, change.attr, &value);
    }

    fn rollback_coded(&mut self, change: &CodedAlteration) {
        let value = self.domain_values[change.old as usize].clone();
        self.apply_at(change.row, change.attr, &value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{mine, AprioriConfig};
    use crate::classify::OneR;
    use crate::item::Transactions;
    use catmark_relation::{AttrType, Schema};

    /// dept determines shelf exactly for all 100 rows.
    fn fixture() -> Relation {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("dept", AttrType::Integer)
            .categorical_attr("shelf", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..100i64 {
            rel.push(vec![Value::Int(i), Value::Int(i % 4), Value::Int((i % 4) * 10)]).unwrap();
        }
        rel
    }

    fn mined(rel: &Relation) -> RuleSet {
        let tx = Transactions::from_relation(rel, &["dept", "shelf"]).unwrap();
        let freq = mine(&tx, &AprioriConfig { min_support: 0.1, max_len: 2 });
        RuleSet::derive(&freq, 0.9)
    }

    fn shelf_change(row: usize, old: i64, new: i64) -> Alteration {
        Alteration { row, attr: 2, old: Value::Int(old), new: Value::Int(new) }
    }

    #[test]
    fn rule_constraint_allows_slack_then_vetoes() {
        let rel = fixture();
        let rules = mined(&rel);
        assert!(!rules.is_empty());
        // Each dept has 25 rows; a 10% confidence drop allows 2 bad
        // shelves per dept (2/25 = 8%), the 3rd breaches.
        let mut c = AssociationRulePreserved::new(&rel, &rules, 0.10);
        // Rows 0, 4, 8 are dept 0 / shelf 0.
        let a1 = shelf_change(0, 0, 99);
        assert!(c.admits(&a1));
        c.commit(&a1);
        let a2 = shelf_change(4, 0, 99);
        assert!(c.admits(&a2));
        c.commit(&a2);
        let a3 = shelf_change(8, 0, 99);
        assert!(!c.admits(&a3), "third corruption of dept 0 must be vetoed");
    }

    #[test]
    fn rule_constraint_rollback_restores_slack() {
        let rel = fixture();
        let rules = mined(&rel);
        let mut c = AssociationRulePreserved::new(&rel, &rules, 0.10);
        let a1 = shelf_change(0, 0, 99);
        let a2 = shelf_change(4, 0, 99);
        c.commit(&a1);
        c.commit(&a2);
        let a3 = shelf_change(8, 0, 99);
        assert!(!c.admits(&a3));
        c.rollback(&a2);
        assert!(c.admits(&a3), "rollback must free the budget");
    }

    #[test]
    fn rule_constraint_admits_confidence_increases() {
        let mut rel = fixture();
        // Pre-damage one dept-0 row so confidence starts at 24/25.
        rel.update_value(0, 2, Value::Int(99)).unwrap();
        let rules = mined(&rel);
        let c = AssociationRulePreserved::new(&rel, &rules, 0.0);
        // Repairing the damaged row increases confidence: admitted
        // even with zero drop budget.
        let repair = shelf_change(0, 99, 0);
        assert!(c.admits(&repair));
    }

    #[test]
    fn rule_constraint_ignores_unrelated_attributes() {
        let rel = fixture();
        let rules = mined(&rel);
        let c = AssociationRulePreserved::new(&rel, &rules, 0.0);
        // Changing the key attribute touches no rule.
        let a = Alteration { row: 0, attr: 0, old: Value::Int(0), new: Value::Int(-1) };
        assert!(c.admits(&a));
    }

    #[test]
    fn rule_constraint_untracked_row_is_admitted() {
        let rel = fixture();
        let rules = mined(&rel);
        let c = AssociationRulePreserved::new(&rel, &rules, 0.0);
        let a = shelf_change(10_000, 0, 99);
        assert!(c.admits(&a));
    }

    #[test]
    fn classifier_constraint_vetoes_at_floor() {
        let rel = fixture();
        let clf = OneR::train(&rel, "shelf", &["dept"]).unwrap();
        // Start at accuracy 1.0; floor 0.98 allows 2 misses on 100.
        let mut c = ClassifierAccuracyPreserved::new(&rel, Box::new(clf), 0.98);
        assert_eq!(c.accuracy(), 1.0);
        let a1 = shelf_change(0, 0, 99);
        assert!(c.admits(&a1));
        c.commit(&a1);
        let a2 = shelf_change(4, 0, 99);
        assert!(c.admits(&a2));
        c.commit(&a2);
        assert!((c.accuracy() - 0.98).abs() < 1e-9);
        let a3 = shelf_change(8, 0, 99);
        assert!(!c.admits(&a3));
    }

    #[test]
    fn classifier_constraint_rollback_restores() {
        let rel = fixture();
        let clf = OneR::train(&rel, "shelf", &["dept"]).unwrap();
        let mut c = ClassifierAccuracyPreserved::new(&rel, Box::new(clf), 0.99);
        let a1 = shelf_change(0, 0, 99);
        c.commit(&a1);
        let a2 = shelf_change(4, 0, 99);
        assert!(!c.admits(&a2));
        c.rollback(&a1);
        assert_eq!(c.accuracy(), 1.0);
        assert!(c.admits(&a2));
    }

    #[test]
    fn classifier_constraint_admits_fixes() {
        let rel = fixture();
        let clf = OneR::train(&rel, "shelf", &["dept"]).unwrap();
        let mut c = ClassifierAccuracyPreserved::new(&rel, Box::new(clf), 1.0);
        // At floor 1.0 any damage is vetoed…
        let damage = shelf_change(0, 0, 99);
        assert!(!c.admits(&damage));
        // …but a change that keeps the prediction correct is fine
        // (changing dept of a row so prediction still matches? here:
        // alter the key, which the classifier ignores).
        let harmless = Alteration { row: 0, attr: 0, old: Value::Int(0), new: Value::Int(500) };
        assert!(c.admits(&harmless));
        c.commit(&harmless);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn constraints_compose_in_a_quality_guard() {
        use catmark_core::quality::{AlterationBudget, QualityGuard};
        let rel = fixture();
        let rules = mined(&rel);
        let clf = OneR::train(&rel, "shelf", &["dept"]).unwrap();
        let mut guard = QualityGuard::new(vec![
            Box::new(AlterationBudget::new(100)),
            Box::new(AssociationRulePreserved::new(&rel, &rules, 0.10)),
            Box::new(ClassifierAccuracyPreserved::new(&rel, Box::new(clf), 0.95)),
        ]);
        let mut admitted = 0;
        for row in (0..40).step_by(4) {
            // All dept-0 rows: damaging each hurts both models.
            if guard.propose(shelf_change(row, 0, 99)) {
                admitted += 1;
            }
        }
        // 10% rule drop allows 2 per dept-0 rule; the rest are vetoed.
        assert_eq!(admitted, 2, "vetoes: {}", guard.vetoes());
    }
}
