//! Length-prefixed framing.
//!
//! Every protocol message — request or response — travels as one
//! frame: a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Framing keeps the transport trivial to speak
//! from any language (no streaming JSON parser needed on either side)
//! and makes message boundaries explicit over both stdio and Unix
//! sockets.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload, protecting the daemon
/// from a hostile or corrupt length prefix. 64 MiB comfortably holds
/// the inline-CSV payloads the protocol carries.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one frame: 4-byte big-endian length, then `payload`.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME_BYTES`]
/// with [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("bounded by MAX_FRAME_BYTES");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean end-of-stream (EOF
/// exactly at a frame boundary); EOF mid-frame is an error.
///
/// # Errors
///
/// Propagates I/O errors; rejects length prefixes above
/// [`MAX_FRAME_BYTES`] with [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "snowman \u{2603}".as_bytes()).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "snowman \u{2603}".as_bytes());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        assert!(read_frame(&mut &buf[..2]).is_err(), "truncated length prefix");
        assert!(read_frame(&mut &buf[..6]).is_err(), "truncated payload");
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let huge = u32::MAX.to_be_bytes();
        let err = read_frame(&mut huge.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut sink = Vec::new();
        // A payload over the cap is refused before any bytes go out.
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut sink, &big).is_err());
        assert!(sink.is_empty());
    }
}
