//! A minimal JSON value, parser and serializer.
//!
//! The service protocol speaks JSON, but the build environment admits
//! no external crates, so this module hand-rolls the subset the
//! protocol needs: objects, arrays, strings (with full escape
//! handling including surrogate pairs), numbers, booleans and null.
//! Numbers are held as `f64`, which round-trips every count the
//! protocol carries (row counts, bit counts — all far below 2^53).
//!
//! The parser is recursive-descent over bytes with a depth limit, so
//! adversarial input cannot blow the stack, and every error carries
//! the byte offset it occurred at.

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object; `None` for other variants or
    /// missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when this is a non-negative
    /// integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null like
                    // `JSON.stringify` does.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Json`] value.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                            // hex4 advanced past the digits; the
                            // trailing `pos += 1` below is for the
                            // single-char escapes, so compensate.
                            self.pos -= 1;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8:
                    // it arrived as &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let text = std::str::from_utf8(digits).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|e| format!("bad \\u escape at byte {}: {e}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj(vec![
            ("op", Json::Str("embed".into())),
            ("count", Json::Num(42.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("pi", Json::Num(3.25))])),
        ]);
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\"count\":42"), "integral numbers print without .0: {text}");
    }

    #[test]
    fn escapes_round_trip() {
        let tricky = "line\nbreak \"quote\" back\\slash tab\t control\u{1} snowman\u{2603}";
        let v = Json::Str(tricky.into());
        assert_eq!(parse(&v.to_text()).unwrap(), v);
    }

    #[test]
    fn parses_standard_escapes_and_surrogates() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // U+1F600 as a surrogate pair.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udc00\udc00""#).is_err(), "lone low surrogate");
        assert_eq!(parse(r#""\/\b\f""#).unwrap(), Json::Str("/\u{8}\u{c}".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("01a").is_err());
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn accessors_are_typed() {
        let v = parse(r#"{"s":"x","n":7,"b":false,"a":[1],"neg":-1,"frac":1.5}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("frac").and_then(Json::as_u64), None);
        assert_eq!(v.get("frac").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }
}
