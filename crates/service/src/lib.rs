//! `catmark-service` — a multi-tenant watermarking daemon.
//!
//! The paper's seller is a service: one party holds the key material
//! and fingerprints outgoing copies for many recipients over time.
//! This crate packages that operational reality around
//! `catmark-core`'s engines — a long-lived daemon that keeps
//! [`MarkSession`](catmark_core::MarkSession)s bound and their plan
//! caches warm, so the Nth trace or the Nth fingerprinted copy costs
//! a fraction of the first.
//!
//! Three layers, bottom up:
//!
//! * [`wire`] — 4-byte big-endian length-prefixed frames. Trivially
//!   speakable from any language, over stdio or a Unix socket.
//! * [`json`] — a dependency-free JSON value/parser/serializer (the
//!   build environment admits no external crates).
//! * [`daemon`] — the [`Service`]: per-tenant
//!   [`TenantKeyRegistry`](catmark_core::keyfile::TenantKeyRegistry)s,
//!   hello-bound connections, and the `embed` / `decode` /
//!   `mark_copy` / `trace` ops with inline-CSV payloads. Tenant
//!   isolation is enforced by the registry layer itself
//!   ([`CoreError::TenantIsolation`](catmark_core::CoreError)), not by
//!   daemon bookkeeping.
//!
//! The protocol is specified in `docs/SERVICE.md` at the repository
//! root; `catmark serve` (in the facade crate's binary) is the
//! shipping entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod json;
pub mod wire;

#[cfg(unix)]
pub use daemon::{default_workers, serve_unix, serve_unix_pool};
pub use daemon::{serve_connection, serve_stdio, Service, ServiceConfig};
pub use json::Json;
pub use wire::{read_frame, write_frame, MAX_FRAME_BYTES};
