//! The multi-tenant watermarking daemon.
//!
//! A [`Service`] holds one [`TenantKeyRegistry`] per tenant and a
//! cache of bound [`MarkSession`]s / [`FingerprintSession`]s keyed by
//! `(tenant, key name, key column, target column)`. Connections speak
//! the framed JSON protocol (see [`crate::wire`] and `docs/SERVICE.md`
//! at the repository root): a client first binds a tenant with the
//! `hello` op, then issues `embed` / `decode` / `mark_copy` /
//! `mark_delta` / `apply_delta` / `trace` ops carrying relations as
//! inline CSV. Because the sessions are cached, repeated operations
//! against the same data reuse the plan caches underneath — a warm
//! service re-plans nothing, which is where the batched-tracing
//! throughput comes from.
//!
//! `mark_delta` is the wire face of delta distribution: instead of a
//! full fingerprinted CSV it returns a hex-encoded [`MarkDelta`] patch
//! blob that `apply_delta` (or [`Relation::apply_delta`] in-process)
//! replays against the shared base to reconstruct the recipient's
//! copy byte-for-byte — a fraction of the bytes of `mark_copy` per
//! recipient.
//!
//! # Versioned relations under churn
//!
//! The `update` / `versions` / `detect_at` ops give each tenant named
//! *versioned* relations backed by a content-addressed segment store
//! ([`ContentStore`] + [`VersionLog`]). Every `update` commits the
//! incoming state, re-marks **only the segments whose content hash
//! changed** since the last marked version
//! ([`MarkSession::embed_incremental`] — byte-identical to a full
//! re-pass because embedding is idempotent), and commits the marked
//! result; unchanged segment blobs are shared between versions, so
//! history costs one copy of the churn, not one copy per version.
//! `detect_at` reopens any committed version straight from the store
//! and blind-decodes it through a per-table [`VoteCache`] that folds
//! memoized tallies for segments it has seen before.
//!
//! # Concurrency
//!
//! [`serve_unix_pool`] runs a bounded pool of worker threads over one
//! shared `Service` behind a mutex: the lock is held per *request*,
//! not per connection, so slow or idle clients from one tenant never
//! stall another tenant's traffic.
//!
//! # Tenant isolation
//!
//! Key material is resolved through the *bound* tenant: every lookup
//! calls [`TenantKeyRegistry::get`] with the tenant the connection
//! authenticated as, so naming another tenant's registry in a request
//! yields [`CoreError::TenantIsolation`] from the registry itself —
//! the daemon has no code path that touches foreign key material.
//!
//! # Large relations
//!
//! When [`ServiceConfig::segment_rows`] is non-zero, relations larger
//! than that threshold are streamed through the segmented out-of-core
//! pipeline ([`MarkSession::embed_segmented`] /
//! [`MarkSession::decode_segmented`]) under the shared
//! [`ServiceConfig::budget_bytes`] pager budget, so one daemon serving
//! many tenants keeps a bounded resident footprint no matter how big
//! the payloads get.

use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};

use catmark_core::keyfile::TenantKeyRegistry;
use catmark_core::{
    detect, verify_evidence, CoreError, FingerprintSession, MarkSession, VoteCache, Watermark,
};
use catmark_relation::csv::{read_csv_inferred, write_csv};
use catmark_relation::{
    hash_hex, CacheStats, ContentStore, MarkDelta, Relation, Schema, SegmentedRelation, VersionLog,
};

use crate::json::{self, Json};
use crate::wire::{read_frame, write_frame};

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Stream relations with more rows than this through the
    /// segmented out-of-core pipeline; `0` keeps everything
    /// in-memory.
    pub segment_rows: usize,
    /// Shared resident-byte budget for segmented streaming.
    pub budget_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { segment_rows: 0, budget_bytes: 64 << 20 }
    }
}

/// Cache key for bound sessions: tenant, key name, key column,
/// target column.
type SessionKey = (String, String, String, String);

/// Segment granularity for versioned tables when
/// [`ServiceConfig::segment_rows`] is `0` (in-memory streaming):
/// content addressing needs *some* segmentation to localize churn.
const VERSION_SEGMENT_ROWS: usize = 1024;

/// One versioned relation held by the daemon: a content-addressed
/// blob pile, its commit log, the memoized per-segment vote tallies,
/// and the id of the last *marked* version (the incremental diff
/// base).
struct VersionedTable {
    schema: Schema,
    store: ContentStore,
    log: VersionLog,
    votes: VoteCache,
    marked: Option<u64>,
}

/// The daemon state: tenant registries plus warm session caches and
/// per-tenant versioned tables.
pub struct Service {
    config: ServiceConfig,
    registries: HashMap<String, TenantKeyRegistry>,
    sessions: HashMap<SessionKey, MarkSession>,
    fingerprints: HashMap<SessionKey, FingerprintSession>,
    /// Versioned tables keyed by `(tenant, table name)` — isolation
    /// by construction: lookups always carry the bound tenant.
    tables: HashMap<(String, String), VersionedTable>,
    /// Segment-pager traffic accumulated across all out-of-core
    /// passes this daemon has run.
    pager: CacheStats,
}

impl Service {
    /// Create an empty service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Service {
            config,
            registries: HashMap::new(),
            sessions: HashMap::new(),
            fingerprints: HashMap::new(),
            tables: HashMap::new(),
            pager: CacheStats::default(),
        }
    }

    /// Register a tenant's key material.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when the tenant is already
    /// registered — replacing live key material requires a restart,
    /// by design.
    pub fn add_registry(&mut self, registry: TenantKeyRegistry) -> Result<(), CoreError> {
        let tenant = registry.tenant().to_string();
        if self.registries.contains_key(&tenant) {
            return Err(CoreError::InvalidSpec(format!(
                "service: tenant {tenant:?} is already registered"
            )));
        }
        self.registries.insert(tenant, registry);
        Ok(())
    }

    /// The registered tenant names, sorted.
    #[must_use]
    pub fn tenants(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.registries.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Process one request on behalf of a connection. `bound` is the
    /// connection's hello-established tenant; the returned flag is
    /// `true` when the request asked the daemon to shut down.
    pub fn handle(&mut self, bound: &mut Option<String>, request: &Json) -> (Json, bool) {
        let Some(op) = request.get("op").and_then(Json::as_str) else {
            return (err_response("request has no \"op\" field"), false);
        };
        if op == "shutdown" {
            return (ok_response(vec![("bye", Json::Bool(true))]), true);
        }
        let result = self.dispatch(op, bound, request);
        (result.unwrap_or_else(|msg| err_response(&msg)), false)
    }

    fn dispatch(
        &mut self,
        op: &str,
        bound: &mut Option<String>,
        request: &Json,
    ) -> Result<Json, String> {
        if op == "hello" {
            let tenant = str_field(request, "tenant")?;
            let registry =
                self.registries.get(tenant).ok_or_else(|| format!("unknown tenant {tenant:?}"))?;
            let keys: Vec<Json> =
                registry.entries().map(|(name, _)| Json::Str(name.to_string())).collect();
            *bound = Some(tenant.to_string());
            return Ok(ok_response(vec![
                ("tenant", Json::Str(tenant.to_string())),
                ("keys", Json::Arr(keys)),
                ("cache_stats", self.cache_stats_json()),
            ]));
        }
        if op == "verify_evidence" {
            // Deliberately tenantless, like "hello": checking a
            // serialized evidence bundle needs no key material, so any
            // connection — a counterparty, an auditor — may ask.
            return Self::verify_evidence_op(request);
        }
        let Some(tenant) = bound.clone() else {
            return Err(format!("op {op:?} requires a tenant: send a \"hello\" op first"));
        };
        match op {
            "embed" => self.embed_op(&tenant, request),
            "decode" => self.decode_op(&tenant, request),
            "mark_copy" => self.mark_copy_op(&tenant, request),
            "mark_delta" => self.mark_delta_op(&tenant, request),
            "apply_delta" => Self::apply_delta_op(request),
            "trace" => self.trace_op(&tenant, request),
            "update" => self.update_op(&tenant, request),
            "versions" => self.versions_op(&tenant, request),
            "detect_at" => self.detect_at_op(&tenant, request),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Resolve the spec for `(tenant, key)` on behalf of `bound` —
    /// the isolation choke point: the lookup always carries the
    /// connection's authenticated tenant.
    fn spec_for(
        &self,
        bound: &str,
        tenant: &str,
        key: &str,
    ) -> Result<catmark_core::WatermarkSpec, String> {
        let registry =
            self.registries.get(tenant).ok_or_else(|| format!("unknown tenant {tenant:?}"))?;
        registry.get(bound, key).cloned().map_err(|e| e.to_string())
    }

    /// Fetch (binding on first use, rebinding on schema drift) the
    /// cached [`MarkSession`] for the request's coordinates.
    fn session_for(
        &mut self,
        bound: &str,
        request: &Json,
        rel: &Relation,
    ) -> Result<(&MarkSession, SessionKey), String> {
        let tenant = request.get("tenant").and_then(Json::as_str).unwrap_or(bound);
        let key = str_field(request, "key")?;
        let key_attr = str_field(request, "key_attr")?;
        let attr = str_field(request, "attr")?;
        let cache_key: SessionKey =
            (tenant.to_string(), key.to_string(), key_attr.to_string(), attr.to_string());
        // Resolve the key through the registry on *every* request —
        // the registry lookup is where tenant isolation lives, and a
        // warm session cached by the key's own tenant must not let a
        // differently-bound connection skip that check.
        let spec = self.spec_for(bound, tenant, key)?;
        let stale = match self.sessions.get(&cache_key) {
            None => true,
            Some(session) => {
                // Rebind when the payload's schema no longer resolves
                // the bound columns to the same indices.
                rel.schema().index_of(key_attr).ok() != Some(session.key().index())
                    || rel.schema().index_of(attr).ok() != Some(session.target().index())
            }
        };
        if stale {
            let session = MarkSession::builder(spec)
                .key_column(key_attr)
                .target_column(attr)
                .bind(rel)
                .map_err(|e| e.to_string())?;
            self.sessions.insert(cache_key.clone(), session);
            self.fingerprints.remove(&cache_key);
        }
        Ok((self.sessions.get(&cache_key).expect("just ensured"), cache_key))
    }

    /// The warm [`FingerprintSession`] for the request's coordinates
    /// — registered buyers and plan caches persist across requests.
    fn fingerprint_for(
        &mut self,
        bound: &str,
        request: &Json,
        rel: &Relation,
    ) -> Result<&mut FingerprintSession, String> {
        let (_, cache_key) = self.session_for(bound, request, rel)?;
        if !self.fingerprints.contains_key(&cache_key) {
            let fp = self.sessions.get(&cache_key).expect("bound above").fingerprint();
            self.fingerprints.insert(cache_key.clone(), fp);
        }
        Ok(self.fingerprints.get_mut(&cache_key).expect("just ensured"))
    }

    fn embed_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let attr = str_field(request, "attr")?;
        let mut rel = parse_csv(str_field(request, "csv")?, attr)?;
        let (segment_rows, budget_bytes) = (self.config.segment_rows, self.config.budget_bytes);
        let (session, _) = self.session_for(bound, request, &rel)?;
        let mark = parse_mark(str_field(request, "mark")?, session.spec().wm_len)?;
        let mut paged = CacheStats::default();
        let (report, segmented) = if segment_rows > 0 && rel.len() > segment_rows {
            let mut seg = SegmentedRelation::builder(rel.schema().clone())
                .segment_rows(segment_rows)
                .budget_bytes(budget_bytes)
                .from_relation(&rel)
                .map_err(|e| e.to_string())?;
            let report = session.embed_segmented(&mut seg, &mark).map_err(|e| e.to_string())?;
            rel = seg.to_relation().map_err(|e| e.to_string())?;
            paged.absorb(seg.cache_stats());
            (report, true)
        } else {
            (session.embed(&mut rel, &mark).map_err(|e| e.to_string())?, false)
        };
        self.pager.absorb(paged);
        Ok(ok_response(vec![
            ("csv", Json::Str(render_csv(&rel)?)),
            ("total", Json::Num(report.total_tuples as f64)),
            ("fit", Json::Num(report.fit_tuples as f64)),
            ("altered", Json::Num(report.altered as f64)),
            ("segmented", Json::Bool(segmented)),
        ]))
    }

    fn decode_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let attr = str_field(request, "attr")?;
        let rel = parse_csv(str_field(request, "csv")?, attr)?;
        let (segment_rows, budget_bytes) = (self.config.segment_rows, self.config.budget_bytes);
        let (session, _) = self.session_for(bound, request, &rel)?;
        let mut paged = CacheStats::default();
        let (report, segmented) = if segment_rows > 0 && rel.len() > segment_rows {
            let mut seg = SegmentedRelation::builder(rel.schema().clone())
                .segment_rows(segment_rows)
                .budget_bytes(budget_bytes)
                .from_relation(&rel)
                .map_err(|e| e.to_string())?;
            let report = session.decode_segmented(&mut seg).map_err(|e| e.to_string())?;
            paged.absorb(seg.cache_stats());
            (report, true)
        } else {
            (session.decode(&rel).map_err(|e| e.to_string())?, false)
        };
        self.pager.absorb(paged);
        let mut fields = vec![
            ("mark", Json::Str(report.watermark.to_string())),
            ("fit", Json::Num(report.fit_tuples as f64)),
            ("votes", Json::Num(report.votes_cast as f64)),
            ("segmented", Json::Bool(segmented)),
        ];
        if let Some(claim) = request.get("claim").and_then(Json::as_str) {
            let claimed = parse_mark(claim, report.watermark.len())?;
            let verdict = detect(&report.watermark, &claimed);
            fields.push(("matched_bits", Json::Num(verdict.matched_bits as f64)));
            fields.push(("total_bits", Json::Num(verdict.total_bits as f64)));
            fields.push(("false_positive", Json::Num(verdict.false_positive_probability)));
        }
        Ok(ok_response(fields))
    }

    fn mark_copy_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let attr = str_field(request, "attr")?;
        let buyer = str_field(request, "buyer")?.to_string();
        let rel = parse_csv(str_field(request, "csv")?, attr)?;
        let fp = self.fingerprint_for(bound, request, &rel)?;
        let (copy, report) = fp.mark_copy(&rel, &buyer).map_err(|e| e.to_string())?;
        Ok(ok_response(vec![
            ("buyer", Json::Str(buyer)),
            ("csv", Json::Str(render_csv(&copy)?)),
            ("total", Json::Num(report.total_tuples as f64)),
            ("fit", Json::Num(report.fit_tuples as f64)),
            ("altered", Json::Num(report.altered as f64)),
        ]))
    }

    fn mark_delta_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let attr = str_field(request, "attr")?;
        let buyer = str_field(request, "buyer")?.to_string();
        let rel = parse_csv(str_field(request, "csv")?, attr)?;
        let fp = self.fingerprint_for(bound, request, &rel)?;
        let (delta, report) = fp.mark_delta(&rel, &buyer).map_err(|e| e.to_string())?;
        let blob = delta.encode();
        Ok(ok_response(vec![
            ("buyer", Json::Str(buyer)),
            ("delta", Json::Str(to_hex(&blob))),
            ("delta_bytes", Json::Num(blob.len() as f64)),
            ("patches", Json::Num(delta.patch_count() as f64)),
            ("total", Json::Num(report.total_tuples as f64)),
            ("fit", Json::Num(report.fit_tuples as f64)),
            ("altered", Json::Num(report.altered as f64)),
        ]))
    }

    fn apply_delta_op(request: &Json) -> Result<Json, String> {
        let attr = str_field(request, "attr")?;
        let rel = parse_csv(str_field(request, "csv")?, attr)?;
        let blob = from_hex(str_field(request, "delta")?)?;
        let delta = MarkDelta::decode(&blob).map_err(|e| e.to_string())?;
        let copy = rel.apply_delta(&delta).map_err(|e| e.to_string())?;
        Ok(ok_response(vec![
            ("csv", Json::Str(render_csv(&copy)?)),
            ("patches", Json::Num(delta.patch_count() as f64)),
        ]))
    }

    fn trace_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let attr = str_field(request, "attr")?;
        let rel = parse_csv(str_field(request, "csv")?, attr)?;
        let buyers: Vec<String> = match request.get("buyers") {
            None => Vec::new(),
            Some(json) => json
                .as_array()
                .ok_or("\"buyers\" must be an array of strings")?
                .iter()
                .map(|b| b.as_str().map(str::to_string).ok_or("\"buyers\" must contain strings"))
                .collect::<Result<_, _>>()?,
        };
        let fp = self.fingerprint_for(bound, request, &rel)?;
        for buyer in &buyers {
            fp.register(buyer);
        }
        let results = fp.trace(&rel).map_err(|e| e.to_string())?;
        let ranked: Vec<Json> = results
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("buyer", Json::Str(r.buyer.clone())),
                    ("matched_bits", Json::Num(r.detection.matched_bits as f64)),
                    ("total_bits", Json::Num(r.detection.total_bits as f64)),
                    ("false_positive", Json::Num(r.detection.false_positive_probability)),
                ])
            })
            .collect();
        Ok(ok_response(vec![("results", Json::Arr(ranked))]))
    }

    /// Segment granularity for versioned tables.
    fn versioned_segment_rows(&self) -> usize {
        if self.config.segment_rows > 0 {
            self.config.segment_rows
        } else {
            VERSION_SEGMENT_ROWS
        }
    }

    /// Daemon-wide cache observability, aggregated across every warm
    /// session, fingerprint registry, versioned table, and the
    /// segment pager.
    fn cache_stats_json(&self) -> Json {
        let mut plan = CacheStats::default();
        for session in self.sessions.values() {
            plan.absorb(session.cache().stats());
        }
        let mut fingerprint = CacheStats::default();
        for fp in self.fingerprints.values() {
            fingerprint.absorb(fp.registry().plan_cache().stats());
            fingerprint.absorb(fp.registry().multi_plan_cache().stats());
        }
        let mut votes = CacheStats::default();
        for table in self.tables.values() {
            votes.absorb(table.votes.stats());
        }
        Json::obj(vec![
            ("plan", stats_json(plan)),
            ("fingerprint", stats_json(fingerprint)),
            ("votes", stats_json(votes)),
            ("pager", stats_json(self.pager)),
        ])
    }

    /// `update`: commit a new version of a named relation into the
    /// tenant's content-addressed store and re-mark it. The first
    /// update runs the full segmented embed; later updates diff the
    /// committed manifest against the last *marked* one and re-embed
    /// only the dirty segments ([`MarkSession::embed_incremental`]),
    /// which is byte-identical to the full pass. Both the pre-mark
    /// and the marked states are committed, so `detect_at` can reach
    /// either.
    fn update_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let attr = str_field(request, "attr")?;
        let name = str_field(request, "name")?.to_string();
        let rel = parse_csv(str_field(request, "csv")?, attr)?;
        let seg_rows = self.versioned_segment_rows();
        let budget = self.config.budget_bytes;
        let (_, cache_key) = self.session_for(bound, request, &rel)?;
        let session = self.sessions.get(&cache_key).expect("bound above");
        let mark = parse_mark(str_field(request, "mark")?, session.spec().wm_len)?;
        let table = self.tables.entry((bound.to_string(), name.clone())).or_insert_with(|| {
            VersionedTable {
                schema: rel.schema().clone(),
                store: ContentStore::in_memory(),
                log: VersionLog::new(),
                votes: VoteCache::new(),
                marked: None,
            }
        });
        if table.schema != *rel.schema() {
            return Err(format!(
                "versioned relation {name:?} was committed under a different schema"
            ));
        }
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(seg_rows)
            .budget_bytes(budget)
            .store(Box::new(table.store.clone()))
            .from_relation(&rel)
            .map_err(|e| e.to_string())?;
        let version = table.log.commit(&mut seg, &table.store).map_err(|e| e.to_string())?;
        let (report, dirty, clean, fallback) = match table.marked {
            Some(marked_id) => {
                let marked = table.log.get(marked_id).expect("marked versions stay logged");
                let current = table.log.get(version).expect("just committed");
                let inc = session
                    .embed_incremental(&mut seg, &mark, marked, current)
                    .map_err(|e| e.to_string())?;
                (inc.report, inc.dirty_segments, inc.clean_segments, inc.full_fallback)
            }
            None => {
                let report = session.embed_segmented(&mut seg, &mark).map_err(|e| e.to_string())?;
                (report, seg.segment_count(), 0, false)
            }
        };
        let marked_version = table.log.commit(&mut seg, &table.store).map_err(|e| e.to_string())?;
        table.marked = Some(marked_version);
        let marked_rel = seg.to_relation().map_err(|e| e.to_string())?;
        self.pager.absorb(seg.cache_stats());
        Ok(ok_response(vec![
            ("name", Json::Str(name)),
            ("version", Json::Num(version as f64)),
            ("marked_version", Json::Num(marked_version as f64)),
            ("dirty_segments", Json::Num(dirty as f64)),
            ("clean_segments", Json::Num(clean as f64)),
            ("full_fallback", Json::Bool(fallback)),
            ("total", Json::Num(report.total_tuples as f64)),
            ("fit", Json::Num(report.fit_tuples as f64)),
            ("altered", Json::Num(report.altered as f64)),
            ("csv", Json::Str(render_csv(&marked_rel)?)),
        ]))
    }

    /// `versions`: the commit history of a named versioned relation —
    /// ids, parents, row counts, and the content hashes of each
    /// version's segment blobs, plus store-level sharing counters.
    fn versions_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let name = str_field(request, "name")?;
        let table = self
            .tables
            .get(&(bound.to_string(), name.to_string()))
            .ok_or_else(|| format!("unknown versioned relation {name:?}"))?;
        let versions: Vec<Json> = table
            .log
            .manifests()
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("id", Json::Num(m.id as f64)),
                    ("parent", m.parent.map_or(Json::Null, |p| Json::Num(p as f64))),
                    ("rows", Json::Num(m.rows() as f64)),
                    ("marked", Json::Bool(table.marked == Some(m.id))),
                    (
                        "segments",
                        Json::Arr(
                            m.segments.iter().map(|s| Json::Str(hash_hex(&s.hash))).collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Ok(ok_response(vec![
            ("name", Json::Str(name.to_string())),
            ("versions", Json::Arr(versions)),
            ("unique_blobs", Json::Num(table.store.unique_blobs() as f64)),
            ("dedup_hits", Json::Num(table.store.dedup_hits() as f64)),
        ]))
    }

    /// `detect_at`: open a historical version of a named relation
    /// straight from the content-addressed store, blind-decode it
    /// through the vote cache ([`MarkSession::decode_incremental`]),
    /// and weigh a claimed mark against the result.
    fn detect_at_op(&mut self, bound: &str, request: &Json) -> Result<Json, String> {
        let name = str_field(request, "name")?;
        let version = request
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("request needs a numeric \"version\" field")?;
        let schema = self
            .tables
            .get(&(bound.to_string(), name.to_string()))
            .ok_or_else(|| format!("unknown versioned relation {name:?}"))?
            .schema
            .clone();
        let budget = self.config.budget_bytes;
        // Bind (or reuse) the session against the table's schema —
        // the probe relation carries the schema, nothing else.
        let probe = Relation::new(schema.clone());
        let (_, cache_key) = self.session_for(bound, request, &probe)?;
        let session = self.sessions.get(&cache_key).expect("bound above");
        let claimed = parse_mark(str_field(request, "claim")?, session.spec().wm_len)?;
        let table =
            self.tables.get_mut(&(bound.to_string(), name.to_string())).expect("checked above");
        let manifest = table
            .log
            .get(version)
            .ok_or_else(|| format!("unknown version {version} of {name:?}"))?
            .clone();
        let mut seg = table
            .log
            .open_version(version, &schema, &table.store, Some(budget))
            .map_err(|e| e.to_string())?;
        // With "evidence":true the certified twin runs instead: same
        // incremental decode through the same vote cache, plus the
        // serialized CMKEVD1 bundle (hex) for the caller to archive.
        if request.get("evidence").and_then(Json::as_bool) == Some(true) {
            let certified = session
                .detect_certified_incremental(&mut seg, &claimed, &manifest, &mut table.votes)
                .map_err(|e| e.to_string())?;
            self.pager.absorb(seg.cache_stats());
            let verdict = certified.outcome;
            return Ok(ok_response(vec![
                ("name", Json::Str(name.to_string())),
                ("version", Json::Num(version as f64)),
                ("mark", Json::Str(verdict.decode.watermark.to_string())),
                ("fit", Json::Num(verdict.decode.fit_tuples as f64)),
                ("votes", Json::Num(verdict.decode.votes_cast as f64)),
                ("matched_bits", Json::Num(verdict.detection.matched_bits as f64)),
                ("total_bits", Json::Num(verdict.detection.total_bits as f64)),
                ("false_positive", Json::Num(verdict.detection.false_positive_probability)),
                ("evidence", Json::Str(to_hex(&certified.bundle))),
            ]));
        }
        let inc = session
            .decode_incremental(&mut seg, &manifest, &mut table.votes)
            .map_err(|e| e.to_string())?;
        let verdict = detect(&inc.report.watermark, &claimed);
        self.pager.absorb(seg.cache_stats());
        Ok(ok_response(vec![
            ("name", Json::Str(name.to_string())),
            ("version", Json::Num(version as f64)),
            ("mark", Json::Str(inc.report.watermark.to_string())),
            ("fit", Json::Num(inc.report.fit_tuples as f64)),
            ("votes", Json::Num(inc.report.votes_cast as f64)),
            ("cached_segments", Json::Num(inc.cached_segments as f64)),
            ("accumulated_segments", Json::Num(inc.accumulated_segments as f64)),
            ("matched_bits", Json::Num(verdict.matched_bits as f64)),
            ("total_bits", Json::Num(verdict.total_bits as f64)),
            ("false_positive", Json::Num(verdict.false_positive_probability)),
        ]))
    }

    /// `verify_evidence`: independently re-check a hex-encoded
    /// `CMKEVD1` bundle — no relation, no keys, no tenant. Tampered or
    /// internally inconsistent bundles come back as error envelopes
    /// naming the first failed check.
    fn verify_evidence_op(request: &Json) -> Result<Json, String> {
        let bytes = from_hex(str_field(request, "bundle")?)?;
        let summary = verify_evidence(&bytes).map_err(|e| e.to_string())?;
        let mut fields = vec![
            ("verified", Json::Bool(true)),
            ("key_commitment", Json::Str(summary.key_commitment)),
            ("relation", Json::Str(summary.relation)),
            ("segments", Json::Num(summary.segments as f64)),
            ("fit", Json::Num(summary.fit_tuples as f64)),
            ("votes", Json::Num(summary.votes_cast as f64)),
            ("mark", Json::Str(summary.decoded)),
        ];
        if let Some(claim) = summary.claim {
            fields.push(("claimed", Json::Str(claim.claimed)));
            fields.push(("matched_bits", Json::Num(claim.matched_bits as f64)));
            fields.push(("total_bits", Json::Num(claim.total_bits as f64)));
            fields.push(("false_positive", Json::Num(claim.false_positive_probability)));
        }
        if let Some(contest) = summary.contest {
            fields.push(("contest_outcome", Json::Str(contest.outcome)));
        }
        Ok(ok_response(fields))
    }
}

/// Render a [`CacheStats`] as a JSON object.
fn stats_json(stats: CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::Num(stats.hits as f64)),
        ("misses", Json::Num(stats.misses as f64)),
        ("evictions", Json::Num(stats.evictions as f64)),
    ])
}

/// Success envelope: `{"ok":true, ...fields}`.
fn ok_response(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::obj(all)
}

/// Failure envelope: `{"ok":false,"error":message}`.
fn err_response(message: &str) -> Json {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))])
}

fn str_field<'a>(request: &'a Json, name: &str) -> Result<&'a str, String> {
    request
        .get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("request needs a string {name:?} field"))
}

fn parse_csv(text: &str, cat_attr: &str) -> Result<Relation, String> {
    read_csv_inferred(text, &[cat_attr]).map_err(|e| e.to_string())
}

fn render_csv(rel: &Relation) -> Result<String, String> {
    let mut buf = Vec::new();
    write_csv(rel, &mut buf).map_err(|e| e.to_string())?;
    String::from_utf8(buf).map_err(|e| e.to_string())
}

fn to_hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut text = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(text, "{b:02x}").expect("writing to a String never fails");
    }
    text
}

fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    let digits = text.as_bytes();
    if !digits.len().is_multiple_of(2) {
        return Err("hex blob has an odd number of digits".to_string());
    }
    if !digits.iter().all(u8::is_ascii_hexdigit) {
        return Err("hex blob holds a non-hex character".to_string());
    }
    Ok(digits
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16).expect("checked hexdigit");
            let lo = (pair[1] as char).to_digit(16).expect("checked hexdigit");
            (hi * 16 + lo) as u8
        })
        .collect())
}

/// Parse a watermark bit string (`"1011001110"`), validating its
/// length against the spec.
fn parse_mark(text: &str, wm_len: usize) -> Result<Watermark, String> {
    if text.is_empty() || !text.chars().all(|c| c == '0' || c == '1') {
        return Err(format!("mark {text:?} is not a bit string"));
    }
    if text.len() != wm_len {
        return Err(format!("mark has {} bits but the key declares wm_len {wm_len}", text.len()));
    }
    let value = u64::from_str_radix(text, 2).map_err(|e| format!("mark: {e}"))?;
    Ok(Watermark::from_u64(value, wm_len))
}

/// Serve one connection: read framed requests, write framed
/// responses, until the peer disconnects or sends `shutdown`.
/// Returns `true` when the connection requested daemon shutdown.
///
/// # Errors
///
/// Transport-level I/O failures (including EOF mid-frame). Malformed
/// JSON inside a well-formed frame is *not* an error here — the peer
/// gets an `ok:false` response and the connection continues.
pub fn serve_connection(
    service: &mut Service,
    reader: &mut impl Read,
    writer: &mut impl Write,
) -> io::Result<bool> {
    serve_frames(reader, writer, |bound, request| service.handle(bound, request))
}

/// The transport loop behind [`serve_connection`]: frames in, frames
/// out, with the connection's tenant binding threaded through
/// `handle`. Factored out so the worker pool can serve connections
/// against shared (mutex-guarded) service state while each
/// connection keeps its own `hello` binding.
fn serve_frames(
    reader: &mut impl Read,
    writer: &mut impl Write,
    mut handle: impl FnMut(&mut Option<String>, &Json) -> (Json, bool),
) -> io::Result<bool> {
    let mut bound: Option<String> = None;
    while let Some(frame) = read_frame(reader)? {
        let (response, shutdown) = match std::str::from_utf8(&frame) {
            Err(e) => (err_response(&format!("frame is not UTF-8: {e}")), false),
            Ok(text) => match json::parse(text) {
                Err(e) => (err_response(&format!("bad JSON: {e}")), false),
                Ok(request) => handle(&mut bound, &request),
            },
        };
        write_frame(writer, response.to_text().as_bytes())?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serve a single connection over stdin/stdout — the transport for
/// supervised deployments (inetd-style) and the CI smoke test.
///
/// # Errors
///
/// Transport-level I/O failures.
pub fn serve_stdio(mut service: Service) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_connection(&mut service, &mut reader, &mut writer)?;
    Ok(())
}

/// Default worker count for [`serve_unix`]: the machine's available
/// parallelism, clamped to `2..=8` so even a single-core host can
/// overlap two tenants' connections without one blocking the other's
/// accept.
#[cfg(unix)]
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get).clamp(2, 8)
}

/// Serve connections on a Unix domain socket at `path` with
/// [`default_workers`] concurrent workers, until a client sends
/// `shutdown`. See [`serve_unix_pool`].
///
/// # Errors
///
/// Socket setup failures. Per-connection I/O errors drop that
/// connection (with a note on stderr) and the daemon keeps serving.
#[cfg(unix)]
pub fn serve_unix(service: Service, path: &std::path::Path) -> io::Result<()> {
    serve_unix_pool(service, path, default_workers())
}

/// Serve connections on a Unix domain socket at `path` with a bounded
/// pool of `workers` threads over shared service state, until a
/// client sends `shutdown`.
///
/// Each worker blocks in `accept` and serves its connection's frames
/// to completion; the shared [`Service`] (registries, plan/session
/// caches) sits behind a mutex that is held only while a single
/// request is handled, so long-lived connections from different
/// tenants interleave request-by-request instead of serializing
/// connection-by-connection. Tenant isolation is untouched: each
/// connection keeps its own `hello` binding, and key lookups still go
/// through the bound tenant's registry. A pre-existing socket file at
/// `path` is replaced; the socket is removed on clean shutdown.
///
/// # Errors
///
/// Socket setup failures. Per-connection I/O errors drop that
/// connection (with a note on stderr) and the daemon keeps serving.
#[cfg(unix)]
pub fn serve_unix_pool(service: Service, path: &std::path::Path, workers: usize) -> io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    let workers = workers.max(1);
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let service = Mutex::new(service);
    let stopping = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let conn = listener.accept();
                if stopping.load(Ordering::SeqCst) {
                    break;
                }
                let mut stream = match conn {
                    Ok((stream, _)) => stream,
                    Err(e) => {
                        eprintln!("catmark serve: accept error: {e}");
                        break;
                    }
                };
                let mut reader = match stream.try_clone() {
                    Ok(clone) => BufReader::new(clone),
                    Err(e) => {
                        eprintln!("catmark serve: connection error: {e}");
                        continue;
                    }
                };
                let served = serve_frames(&mut reader, &mut stream, |bound, request| {
                    service.lock().expect("service state is never poisoned").handle(bound, request)
                });
                match served {
                    Ok(true) => {
                        // Shutdown requested: raise the flag, then poke
                        // the listener once per worker so threads blocked
                        // in accept wake up and observe it.
                        stopping.store(true, Ordering::SeqCst);
                        for _ in 0..workers {
                            let _ = UnixStream::connect(path);
                        }
                        break;
                    }
                    Ok(false) => {}
                    Err(e) => eprintln!("catmark serve: connection error: {e}"),
                }
            });
        }
    });
    std::fs::remove_file(path).ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use catmark_core::{ErasurePolicy, WatermarkSpec};
    use catmark_relation::{AttrType, CategoricalDomain, Schema, Value};

    fn sample_relation(tuples: i64) -> Relation {
        let schema = Schema::builder()
            .key_attr("visit_nbr", AttrType::Integer)
            .categorical_attr("item_nbr", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..tuples {
            rel.push(vec![Value::Int(i * 17 + 3), Value::Int(10_000 + (i * 7) % 40)]).unwrap();
        }
        rel
    }

    fn spec(master: &str) -> WatermarkSpec {
        let domain =
            CategoricalDomain::new((0..40).map(|i| Value::Int(10_000 + i)).collect()).unwrap();
        WatermarkSpec::builder(domain)
            .master_key(master)
            .e(3)
            .wm_len(6)
            .wm_data_len(60)
            .erasure(ErasurePolicy::Abstain)
            .build()
            .unwrap()
    }

    fn two_tenant_service(config: ServiceConfig) -> Service {
        let mut service = Service::new(config);
        let mut acme = TenantKeyRegistry::new("acme").unwrap();
        acme.insert("production", spec("acme-master")).unwrap();
        acme.insert("staging", spec("acme-staging")).unwrap();
        let mut globex = TenantKeyRegistry::new("globex").unwrap();
        globex.insert("production", spec("globex-master")).unwrap();
        service.add_registry(acme).unwrap();
        service.add_registry(globex).unwrap();
        service
    }

    fn request(text: &str) -> Json {
        json::parse(text).unwrap()
    }

    fn csv() -> String {
        render_csv(&sample_relation(600)).unwrap()
    }

    fn assert_ok(response: &Json) {
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true), "{response:?}");
    }

    fn error_of(response: &Json) -> String {
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false), "{response:?}");
        response.get("error").and_then(Json::as_str).unwrap().to_string()
    }

    #[test]
    fn hello_binds_and_lists_keys() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        let (resp, down) =
            service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        assert!(!down);
        assert_ok(&resp);
        assert_eq!(bound.as_deref(), Some("acme"));
        let keys: Vec<&str> =
            resp.get("keys").unwrap().as_array().unwrap().iter().filter_map(Json::as_str).collect();
        assert_eq!(keys, ["production", "staging"]);
        // Unknown tenants don't bind.
        let mut unbound = None;
        let (resp, _) =
            service.handle(&mut unbound, &request(r#"{"op":"hello","tenant":"intruder"}"#));
        assert!(error_of(&resp).contains("unknown tenant"));
        assert!(unbound.is_none());
    }

    #[test]
    fn ops_before_hello_are_refused() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        let req = format!(
            r#"{{"op":"decode","key":"production","key_attr":"visit_nbr","attr":"item_nbr","csv":{}}}"#,
            Json::Str(csv()).to_text()
        );
        let (resp, _) = service.handle(&mut bound, &request(&req));
        assert!(error_of(&resp).contains("hello"));
    }

    #[test]
    fn embed_then_decode_round_trips() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        let embed = format!(
            r#"{{"op":"embed","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
            Json::Str(csv()).to_text()
        );
        let (resp, _) = service.handle(&mut bound, &request(&embed));
        assert_ok(&resp);
        assert!(resp.get("fit").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(resp.get("segmented").and_then(Json::as_bool), Some(false));
        let marked = resp.get("csv").and_then(Json::as_str).unwrap().to_string();

        let decode = format!(
            r#"{{"op":"decode","key":"production","key_attr":"visit_nbr","attr":"item_nbr","claim":"101101","csv":{}}}"#,
            Json::Str(marked).to_text()
        );
        let (resp, _) = service.handle(&mut bound, &request(&decode));
        assert_ok(&resp);
        assert_eq!(resp.get("mark").and_then(Json::as_str), Some("101101"));
        assert_eq!(resp.get("matched_bits").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn segmented_and_in_memory_paths_agree() {
        let data = csv();
        let embed = |service: &mut Service| {
            let mut bound = None;
            service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
            let req = format!(
                r#"{{"op":"embed","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
                Json::Str(data.clone()).to_text()
            );
            let (resp, _) = service.handle(&mut bound, &request(&req));
            assert_ok(&resp);
            resp
        };
        let in_memory = embed(&mut two_tenant_service(ServiceConfig::default()));
        let segmented = embed(&mut two_tenant_service(ServiceConfig {
            segment_rows: 128,
            ..ServiceConfig::default()
        }));
        assert_eq!(in_memory.get("segmented").and_then(Json::as_bool), Some(false));
        assert_eq!(segmented.get("segmented").and_then(Json::as_bool), Some(true));
        // Byte-identical output is the out-of-core pipeline's contract.
        assert_eq!(
            in_memory.get("csv").and_then(Json::as_str),
            segmented.get("csv").and_then(Json::as_str)
        );
    }

    #[test]
    fn cross_tenant_lookups_are_isolated() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        // Bound as acme, naming globex's registry: the registry
        // itself refuses.
        let req = format!(
            r#"{{"op":"embed","tenant":"globex","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
            Json::Str(csv()).to_text()
        );
        let (resp, _) = service.handle(&mut bound, &request(&req));
        assert!(error_of(&resp).contains("tenant isolation"), "{resp:?}");
    }

    #[test]
    fn fingerprint_copies_trace_back_to_the_leaker() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        let copy_req = format!(
            r#"{{"op":"mark_copy","key":"production","key_attr":"visit_nbr","attr":"item_nbr","buyer":"globex-reseller","csv":{}}}"#,
            Json::Str(csv()).to_text()
        );
        let (resp, _) = service.handle(&mut bound, &request(&copy_req));
        assert_ok(&resp);
        let leaked = resp.get("csv").and_then(Json::as_str).unwrap().to_string();

        let trace_req = format!(
            r#"{{"op":"trace","key":"production","key_attr":"visit_nbr","attr":"item_nbr","buyers":["initech","globex-reseller","umbrella"],"csv":{}}}"#,
            Json::Str(leaked).to_text()
        );
        let (resp, _) = service.handle(&mut bound, &request(&trace_req));
        assert_ok(&resp);
        let results = resp.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].get("buyer").and_then(Json::as_str),
            Some("globex-reseller"),
            "ranked first: {resp:?}"
        );
    }

    #[test]
    fn malformed_requests_get_error_envelopes() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        let (resp, _) = service.handle(&mut bound, &request(r#"{"no_op":1}"#));
        assert!(error_of(&resp).contains("op"));
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        let (resp, _) = service.handle(&mut bound, &request(r#"{"op":"frobnicate"}"#));
        assert!(error_of(&resp).contains("unknown op"));
        let (resp, _) = service.handle(&mut bound, &request(r#"{"op":"embed"}"#));
        assert!(error_of(&resp).contains("field"));
        // Bad mark length.
        let req = format!(
            r#"{{"op":"embed","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"1","csv":{}}}"#,
            Json::Str(csv()).to_text()
        );
        let (resp, _) = service.handle(&mut bound, &request(&req));
        assert!(error_of(&resp).contains("wm_len"));
    }

    #[test]
    fn connection_loop_speaks_frames_and_honors_shutdown() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut inbox = Vec::new();
        write_frame(&mut inbox, br#"{"op":"hello","tenant":"acme"}"#).unwrap();
        write_frame(&mut inbox, b"not json").unwrap();
        write_frame(&mut inbox, br#"{"op":"shutdown"}"#).unwrap();
        write_frame(&mut inbox, br#"{"op":"hello","tenant":"acme"}"#).unwrap();
        let mut outbox = Vec::new();
        let down = serve_connection(&mut service, &mut inbox.as_slice(), &mut outbox).unwrap();
        assert!(down, "shutdown must be reported");
        let mut replies = outbox.as_slice();
        let hello = read_frame(&mut replies).unwrap().unwrap();
        assert_ok(&json::parse(std::str::from_utf8(&hello).unwrap()).unwrap());
        let bad = read_frame(&mut replies).unwrap().unwrap();
        let bad = json::parse(std::str::from_utf8(&bad).unwrap()).unwrap();
        assert!(error_of(&bad).contains("bad JSON"));
        let bye = read_frame(&mut replies).unwrap().unwrap();
        assert_ok(&json::parse(std::str::from_utf8(&bye).unwrap()).unwrap());
        // Nothing after shutdown was processed.
        assert!(read_frame(&mut replies).unwrap().is_none());
    }

    #[test]
    fn mark_delta_rebuilds_the_mark_copy_in_a_fraction_of_the_bytes() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        let base = csv();
        let copy_req = format!(
            r#"{{"op":"mark_copy","key":"production","key_attr":"visit_nbr","attr":"item_nbr","buyer":"globex-reseller","csv":{}}}"#,
            Json::Str(base.clone()).to_text()
        );
        let (copy, _) = service.handle(&mut bound, &request(&copy_req));
        assert_ok(&copy);

        let delta_req = format!(
            r#"{{"op":"mark_delta","key":"production","key_attr":"visit_nbr","attr":"item_nbr","buyer":"globex-reseller","csv":{}}}"#,
            Json::Str(base.clone()).to_text()
        );
        let (delta, _) = service.handle(&mut bound, &request(&delta_req));
        assert_ok(&delta);
        assert_eq!(delta.get("fit"), copy.get("fit"));
        assert_eq!(delta.get("altered"), copy.get("altered"));
        let blob = delta.get("delta").and_then(Json::as_str).unwrap().to_string();
        let delta_bytes = delta.get("delta_bytes").and_then(Json::as_u64).unwrap() as usize;
        assert_eq!(blob.len(), delta_bytes * 2, "hex doubles the byte count");
        assert!(delta_bytes < base.len(), "the patch must be smaller than the CSV");

        let apply_req = format!(
            r#"{{"op":"apply_delta","attr":"item_nbr","delta":{},"csv":{}}}"#,
            Json::Str(blob).to_text(),
            Json::Str(base).to_text()
        );
        let (rebuilt, _) = service.handle(&mut bound, &request(&apply_req));
        assert_ok(&rebuilt);
        assert_eq!(rebuilt.get("csv"), copy.get("csv"), "apply_delta must rebuild the copy");
    }

    #[test]
    fn apply_delta_refuses_malformed_blobs() {
        let mut service = two_tenant_service(ServiceConfig::default());
        let mut bound = None;
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        let ask = |service: &mut Service, bound: &mut Option<String>, blob: &str| {
            let req = format!(
                r#"{{"op":"apply_delta","attr":"item_nbr","delta":{},"csv":{}}}"#,
                Json::Str(blob.to_string()).to_text(),
                Json::Str(csv()).to_text()
            );
            let (resp, _) = service.handle(bound, &request(&req));
            error_of(&resp)
        };
        assert!(ask(&mut service, &mut bound, "abc").contains("odd number"));
        assert!(ask(&mut service, &mut bound, "zz").contains("non-hex"));
        // Valid hex, but not a delta blob.
        assert!(!ask(&mut service, &mut bound, "00112233").is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn worker_pool_interleaves_connections_from_two_tenants() {
        use std::os::unix::net::UnixStream;
        use std::time::Duration;

        struct Client {
            stream: UnixStream,
            reader: BufReader<UnixStream>,
        }
        impl Client {
            fn connect(path: &std::path::Path) -> io::Result<Client> {
                let stream = UnixStream::connect(path)?;
                let reader = BufReader::new(stream.try_clone()?);
                Ok(Client { stream, reader })
            }
            fn ask(&mut self, req: &str) -> Json {
                write_frame(&mut self.stream, req.as_bytes()).unwrap();
                let frame = read_frame(&mut self.reader).unwrap().unwrap();
                json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
            }
        }

        let path =
            std::env::temp_dir().join(format!("catmark-pool-test-{}.sock", std::process::id()));
        let service = two_tenant_service(ServiceConfig::default());
        let sock = path.clone();
        let daemon = std::thread::spawn(move || serve_unix_pool(service, &sock, 2));

        let mut acme = None;
        for _ in 0..400 {
            match Client::connect(&path) {
                Ok(client) => {
                    acme = Some(client);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        let mut acme = acme.expect("daemon socket never came up");
        // A sequential accept loop would block here until the first
        // connection closed; the pool serves both at once.
        let mut globex = Client::connect(&path).unwrap();
        assert_ok(&acme.ask(r#"{"op":"hello","tenant":"acme"}"#));
        assert_ok(&globex.ask(r#"{"op":"hello","tenant":"globex"}"#));
        // Interleaved frames on both live connections.
        let embed = |tenant_csv: String| {
            format!(
                r#"{{"op":"embed","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
                Json::Str(tenant_csv).to_text()
            )
        };
        assert_ok(&acme.ask(&embed(csv())));
        assert_ok(&globex.ask(&embed(csv())));
        // Isolation holds across the shared pool state: globex's
        // connection cannot reach acme's key material.
        let foreign = format!(
            r#"{{"op":"embed","tenant":"acme","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
            Json::Str(csv()).to_text()
        );
        assert!(error_of(&globex.ask(&foreign)).contains("tenant isolation"));
        drop(globex);
        assert_ok(&acme.ask(r#"{"op":"shutdown"}"#));
        drop(acme);
        daemon.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file is removed on shutdown");
    }

    #[test]
    fn versioned_updates_remark_incrementally_and_detect_at_any_version() {
        let mut service =
            two_tenant_service(ServiceConfig { segment_rows: 128, ..ServiceConfig::default() });
        let mut bound = None;
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));

        // First update: full embed, two committed versions (pre-mark
        // and marked).
        let update = |csv: String| {
            format!(
                r#"{{"op":"update","name":"sales","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
                Json::Str(csv).to_text()
            )
        };
        let (first, _) = service.handle(&mut bound, &request(&update(csv())));
        assert_ok(&first);
        assert_eq!(first.get("full_fallback").and_then(Json::as_bool), Some(false));
        assert_eq!(first.get("clean_segments").and_then(Json::as_u64), Some(0));
        let marked_v1 = first.get("marked_version").and_then(Json::as_u64).unwrap();
        let marked_csv = first.get("csv").and_then(Json::as_str).unwrap().to_string();

        // Churn one row of the marked state and update again: only
        // that row's segment is re-embedded.
        let mut churned = parse_csv(&marked_csv, "item_nbr").unwrap();
        let attr = churned.schema().index_of("item_nbr").unwrap();
        churned.update_value(0, attr, Value::Int(10_039)).unwrap();
        let churned_csv = render_csv(&churned).unwrap();
        let (second, _) = service.handle(&mut bound, &request(&update(churned_csv.clone())));
        assert_ok(&second);
        assert_eq!(second.get("full_fallback").and_then(Json::as_bool), Some(false));
        assert_eq!(second.get("dirty_segments").and_then(Json::as_u64), Some(1));
        assert!(second.get("clean_segments").and_then(Json::as_u64).unwrap() >= 3);
        let marked_v2 = second.get("marked_version").and_then(Json::as_u64).unwrap();

        // The incremental re-mark is byte-identical to the plain
        // (full) segmented embed of the same churned state.
        let embed = format!(
            r#"{{"op":"embed","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
            Json::Str(churned_csv).to_text()
        );
        let (full, _) = service.handle(&mut bound, &request(&embed));
        assert_ok(&full);
        assert_eq!(full.get("csv"), second.get("csv"), "incremental re-mark diverged");

        // Version history: 4 versions, blob sharing across them.
        let (versions, _) =
            service.handle(&mut bound, &request(r#"{"op":"versions","name":"sales"}"#));
        assert_ok(&versions);
        let listed = versions.get("versions").unwrap().as_array().unwrap();
        assert_eq!(listed.len(), 4);
        assert!(listed.iter().any(|v| {
            v.get("id").and_then(Json::as_u64) == Some(marked_v2)
                && v.get("marked").and_then(Json::as_bool) == Some(true)
        }));
        let unique = versions.get("unique_blobs").and_then(Json::as_u64).unwrap();
        let dedup = versions.get("dedup_hits").and_then(Json::as_u64).unwrap();
        assert!(dedup > 0, "versions must share unchanged blobs");
        assert!(unique < 4 * listed[0].get("segments").unwrap().as_array().unwrap().len() as u64);

        // Detection works against any committed marked version.
        for v in [marked_v1, marked_v2] {
            let req = format!(
                r#"{{"op":"detect_at","name":"sales","key":"production","key_attr":"visit_nbr","attr":"item_nbr","version":{v},"claim":"101101"}}"#
            );
            let (resp, _) = service.handle(&mut bound, &request(&req));
            assert_ok(&resp);
            assert_eq!(resp.get("matched_bits").and_then(Json::as_u64), Some(6), "{resp:?}");
        }
        // The second detect_at shares every clean segment's tally
        // with the first via the vote cache.
        let req = format!(
            r#"{{"op":"detect_at","name":"sales","key":"production","key_attr":"visit_nbr","attr":"item_nbr","version":{marked_v2},"claim":"101101"}}"#
        );
        let (warm, _) = service.handle(&mut bound, &request(&req));
        assert_ok(&warm);
        assert_eq!(warm.get("accumulated_segments").and_then(Json::as_u64), Some(0));
        assert!(warm.get("cached_segments").and_then(Json::as_u64).unwrap() > 0);

        // Unknown coordinates are errors, not silent empties.
        let (resp, _) = service.handle(&mut bound, &request(r#"{"op":"versions","name":"nope"}"#));
        assert!(error_of(&resp).contains("unknown versioned relation"));
        let bad = r#"{"op":"detect_at","name":"sales","key":"production","key_attr":"visit_nbr","attr":"item_nbr","version":99,"claim":"101101"}"#;
        let (resp, _) = service.handle(&mut bound, &request(bad));
        assert!(error_of(&resp).contains("unknown version"));

        // Versioned tables are tenant-scoped: globex can't see acme's.
        let mut globex = None;
        service.handle(&mut globex, &request(r#"{"op":"hello","tenant":"globex"}"#));
        let (resp, _) =
            service.handle(&mut globex, &request(r#"{"op":"versions","name":"sales"}"#));
        assert!(error_of(&resp).contains("unknown versioned relation"));

        // Hello reports the daemon-wide cache counters, and the vote
        // cache shows the detect_at traffic.
        let (hello, _) = service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        assert_ok(&hello);
        let stats = hello.get("cache_stats").unwrap();
        for family in ["plan", "fingerprint", "votes", "pager"] {
            assert!(stats.get(family).is_some(), "missing {family} stats: {stats:?}");
        }
        let votes = stats.get("votes").unwrap();
        assert!(votes.get("hits").and_then(Json::as_u64).unwrap() > 0);
        assert!(votes.get("misses").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn detect_at_emits_evidence_and_verify_evidence_judges_it_keylessly() {
        let mut service =
            two_tenant_service(ServiceConfig { segment_rows: 128, ..ServiceConfig::default() });
        let mut bound = None;
        service.handle(&mut bound, &request(r#"{"op":"hello","tenant":"acme"}"#));
        let update = format!(
            r#"{{"op":"update","name":"sales","key":"production","key_attr":"visit_nbr","attr":"item_nbr","mark":"101101","csv":{}}}"#,
            Json::Str(csv()).to_text()
        );
        let (first, _) = service.handle(&mut bound, &request(&update));
        assert_ok(&first);
        let marked = first.get("marked_version").and_then(Json::as_u64).unwrap();

        // Certified detect_at: same verdict fields, plus the bundle.
        let req = format!(
            r#"{{"op":"detect_at","name":"sales","key":"production","key_attr":"visit_nbr","attr":"item_nbr","version":{marked},"claim":"101101","evidence":true}}"#
        );
        let (resp, _) = service.handle(&mut bound, &request(&req));
        assert_ok(&resp);
        assert_eq!(resp.get("mark").and_then(Json::as_str), Some("101101"));
        assert_eq!(resp.get("matched_bits").and_then(Json::as_u64), Some(6));
        let bundle = resp.get("evidence").and_then(Json::as_str).unwrap().to_string();

        // The checker op needs no hello: a fresh, unbound connection
        // can re-judge the bundle from its hex alone.
        let mut stranger = None;
        let verify = format!(
            r#"{{"op":"verify_evidence","bundle":{}}}"#,
            Json::Str(bundle.clone()).to_text()
        );
        let (resp, _) = service.handle(&mut stranger, &request(&verify));
        assert_ok(&resp);
        assert_eq!(resp.get("verified").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("mark").and_then(Json::as_str), Some("101101"));
        assert_eq!(resp.get("matched_bits").and_then(Json::as_u64), Some(6));
        assert!(resp.get("relation").and_then(Json::as_str).unwrap().starts_with("version"));

        // A tampered bundle comes back as a clean error envelope.
        let mut evil = from_hex(&bundle).unwrap();
        let mid = evil.len() / 2;
        evil[mid] ^= 0x10;
        let verify = format!(
            r#"{{"op":"verify_evidence","bundle":{}}}"#,
            Json::Str(to_hex(&evil)).to_text()
        );
        let (resp, _) = service.handle(&mut stranger, &request(&verify));
        assert!(error_of(&resp).contains("rejected"), "{resp:?}");
    }

    #[test]
    fn duplicate_tenant_registration_is_refused() {
        let mut service = Service::new(ServiceConfig::default());
        let mut reg = TenantKeyRegistry::new("acme").unwrap();
        reg.insert("production", spec("m")).unwrap();
        service.add_registry(reg.clone()).unwrap();
        assert!(service.add_registry(reg).is_err());
        assert_eq!(service.tenants(), ["acme"]);
    }
}
