//! # catmark — proving ownership over categorical data
//!
//! A production-quality Rust implementation of Radu Sion's ICDE 2004
//! paper *Proving Ownership over Categorical Data* (CERIAS TR
//! 2003-19): blind, resilient watermarking of categorical attributes
//! in relational data, together with every substrate, attack, and
//! analysis the paper describes.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`crypto`] — MD5 / SHA-1 / SHA-256 and the keyed construct
//!   `H(V, k) = hash(k; V; k)` (Section 2.2). Hash inputs implement
//!   `CanonicalInput` and stream their canonical encoding straight
//!   into the digest (`write_canonical`), so the per-tuple hashing
//!   under every operator is allocation-free;
//! * [`relation`] — the relational substrate (schemas, typed tuples,
//!   categorical domains with an interned-code lookup path, borrowing
//!   column access, partition operators), including the segmented
//!   spill-to-disk engine (`relation::segment` / `relation::spill`)
//!   that streams relations larger than RAM through a budgeted pager;
//! * [`datagen`] — synthetic Wal-Mart-`ItemScan`-style workloads;
//! * [`core`] — the watermarking scheme itself: fit-tuple selection,
//!   majority-voting ECC, embedding, blind decoding, multi-attribute
//!   embeddings, frequency-domain encoding, remap recovery, data
//!   addition, quality constraints with rollback. All operators are
//!   built on the shared `core::plan` layer: a `MarkPlan` computes
//!   the per-tuple facts (fitness, `wm_data` position, value base) in
//!   one optionally-parallel pass, and a `PlanCache` shares that pass
//!   across embed, decode, streaming, tracing, and contests —
//!   an embed → blind-decode round trip hashes the key column once.
//!   The public entry point is the typed [`core::session::MarkSession`],
//!   which binds columns once and owns the cache; the per-operator
//!   structs remain underneath as the engine;
//! * [`service`] — the multi-tenant daemon (`catmark serve`): framed
//!   JSON over stdio or a Unix socket, per-tenant key registries with
//!   registry-enforced isolation, and warm cached sessions so
//!   repeated traces and fingerprinted copies skip re-planning;
//! * [`attacks`] — the Section 2.3 adversary (A1–A6) plus collusion
//!   attacks on buyer fingerprints;
//! * [`analysis`] — the Section 4.4 vulnerability theory;
//! * [`mining`] — association rules and classifiers as embedding
//!   constraints (the Section 6 future-work item, implemented).
//!
//! Coming from the historical `Embedder`/`Decoder` per-operator API?
//! The call-site mapping lives in `docs/MIGRATION.md`; the crate and
//! storage layering is described in `ARCHITECTURE.md` at the
//! repository root.
//!
//! ## Sixty-second tour
//!
//! Everything goes through a [`core::session::MarkSession`]: bind the
//! key material and the two columns once, then every paper operation —
//! embed, blind decode, court-time detect, streaming, multi-attribute
//! pairs, buyer fingerprints, ownership contests — is a method on the
//! same handle, sharing one cached per-tuple plan.
//!
//! ```
//! use catmark::prelude::*;
//!
//! // 1. Data: (visit_nbr PRIMARY KEY, item_nbr CATEGORICAL).
//! let gen = SalesGenerator::new(ItemScanConfig { tuples: 3000, ..Default::default() });
//! let mut rel = gen.generate();
//!
//! // 2. Key material.
//! let spec = WatermarkSpec::builder(gen.item_domain())
//!     .master_key("the-owner-secret")
//!     .e(15)
//!     .wm_len(10)
//!     .expected_tuples(rel.len())
//!     .erasure(ErasurePolicy::Abstain)
//!     .build()
//!     .unwrap();
//!
//! // 3. One typed session: columns resolved and validated here, once.
//! let session = MarkSession::builder(spec)
//!     .key_column("visit_nbr")
//!     .target_column("item_nbr")
//!     .bind(&rel)
//!     .unwrap();
//!
//! // 4. Embed a 10-bit ownership mark.
//! let wm = Watermark::from_u64(0b1011001110, 10);
//! session.embed(&mut rel, &wm).unwrap();
//!
//! // 5. Mallory strikes: shuffle + 40% loss.
//! let suspect = Attack::HorizontalLoss { keep: 0.6, seed: 7 }
//!     .apply(&Attack::Shuffle { seed: 7 }.apply(&rel).unwrap())
//!     .unwrap();
//!
//! // 6. Blind detection + court-time odds, on the same handle.
//! let verdict = session.detect(&suspect, &wm).unwrap();
//! assert!(verdict.is_significant(1e-2));
//! println!("{verdict}"); // e.g. "decoded 1011001110 — 10/10 bits match, chance odds 9.77e-4 …"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use catmark_analysis as analysis;
pub use catmark_attacks as attacks;
pub use catmark_core as core;
pub use catmark_crypto as crypto;
pub use catmark_datagen as datagen;
pub use catmark_mining as mining;
pub use catmark_relation as relation;
pub use catmark_service as service;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use catmark_attacks::Attack;
    pub use catmark_core::{
        detect, ColumnRef, Decoder, Detection, EmbedReport, Embedder, ErasurePolicy, MarkPlan,
        MarkSession, Outcome, PlanCache, Verdict, Watermark, WatermarkSpec,
    };
    pub use catmark_crypto::{HashAlgorithm, SecretKey};
    pub use catmark_datagen::{ItemScanConfig, SalesGenerator};
    pub use catmark_relation::{
        AttrType, CategoricalDomain, FrequencyHistogram, Relation, Schema, Value,
    };
}
