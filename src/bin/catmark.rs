//! `catmark` — command-line watermarking for categorical CSV data.
//!
//! ```text
//! catmark keygen --master <secret> --domain-from data.csv --attr item_nbr \
//!                [--e 60] [--wm-len 10] [--tuples N | --wm-data-len L] > key.catmark
//! catmark embed  --key key.catmark --input data.csv --key-attr visit_nbr \
//!                --attr item_nbr --mark 1011001110 --output marked.csv
//! catmark decode --key key.catmark --input suspect.csv --key-attr visit_nbr \
//!                --attr item_nbr [--claim 1011001110]
//! catmark inspect --key key.catmark
//! catmark rules  --input data.csv --attrs dept,aisle [--min-support 0.05]
//!                [--min-confidence 0.8] [--max-len 2] [--top 20]
//! catmark serve  --registries acme.reg,globex.reg [--socket /tmp/catmark.sock]
//!                [--workers N] [--segment-rows N] [--budget-bytes N]
//! catmark gc     --store pile.cmk --log versions.cmk [--keep 3,4]
//! ```
//!
//! CSV schemas are inferred from the header row plus type sniffing
//! (a column is Integer when every sampled value parses as `i64`).
//! The key file format is documented in `catmark::core::keyfile`.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Read};
use std::process::ExitCode;

use catmark::core::keyfile::{from_key_file, to_key_file};
use catmark::mining::apriori::{mine, AprioriConfig};
use catmark::mining::item::Transactions;
use catmark::mining::rules::RuleSet;
use catmark::prelude::*;

/// A CLI failure, split by whose fault it is: usage errors (bad
/// flags, unknown commands) exit 2, operational errors (unreadable
/// files, binding failures, embedding errors) exit 1. Nothing panics
/// on bad input.
#[derive(Debug)]
enum CliError {
    /// The invocation itself was malformed.
    Usage(String),
    /// The invocation was well-formed but the operation failed.
    Run(String),
}

impl CliError {
    fn run(e: impl std::fmt::Display) -> Self {
        CliError::Run(e.to_string())
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Run(m) => m,
        }
    }

    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Run(_) => ExitCode::FAILURE,
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Run(m)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("catmark: {}", err.message());
            err.exit_code()
        }
    }
}

/// Dispatch and execute; returns what should be printed to stdout.
fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage(format!("no command given\n\n{USAGE}")));
    };
    if command == "verify-evidence" {
        // Takes a positional bundle path, not --flag pairs.
        return verify_evidence_cmd(&args[1..]);
    }
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "keygen" => keygen(&flags),
        "embed" => embed(&flags),
        "decode" => decode(&flags),
        "inspect" => inspect(&flags),
        "rules" => rules(&flags),
        "serve" => serve(&flags),
        "gc" => gc(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

const USAGE: &str = "usage:
  catmark keygen  --master <secret> --domain-from <csv> --attr <name>
                  [--e 60] [--wm-len 10] [--tuples N | --wm-data-len L]
                  [--erasure abstain|random-fill|zero-fill]
  catmark embed   --key <file> --input <csv> --key-attr <name> --attr <name>
                  --mark <bits> --output <csv>
  catmark decode  --key <file> --input <csv> --key-attr <name> --attr <name>
                  [--claim <bits>] [--evidence <file>]
  catmark verify-evidence <bundle>
  catmark inspect --key <file>
  catmark rules   --input <csv> --attrs <a,b,…> [--min-support 0.05]
                  [--min-confidence 0.8] [--max-len 2] [--top 20]
  catmark serve   --registries <file,…> [--socket <path>] [--workers N]
                  [--segment-rows N] [--budget-bytes N]
  catmark gc      --store <pile> --log <version-log> [--keep <id,…>]
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| CliError::Usage(format!("expected --flag, got {flag:?}")))?;
        let value =
            iter.next().ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
        if flags.insert(name.to_owned(), value.clone()).is_some() {
            return Err(CliError::Usage(format!("--{name} given twice")));
        }
    }
    Ok(flags)
}

fn require<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, CliError> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
}

/// Bind a [`MarkSession`] for the CLI's `(--key-attr, --attr)` pair;
/// binding failures (missing column, non-categorical target) surface
/// the relation's actual attributes via `CoreError::ColumnBinding`.
fn bind_session(
    spec: WatermarkSpec,
    rel: &Relation,
    key_attr: &str,
    target_attr: &str,
) -> Result<MarkSession, CliError> {
    MarkSession::builder(spec)
        .key_column(key_attr)
        .target_column(target_attr)
        .bind(rel)
        .map_err(CliError::run)
}

/// Parse an optional flag, falling back to `default`; malformed
/// values are usage errors (exit 2).
fn parsed_flag<T>(flags: &HashMap<String, String>, name: &str, default: T) -> Result<T, CliError>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    flags
        .get(name)
        .map_or(Ok(default), |v| v.parse().map_err(|e| CliError::Usage(format!("--{name}: {e}"))))
}

/// Like [`parsed_flag`], but an *explicitly passed* `0` is a usage
/// error (exit 2): zero would silently turn streaming off
/// (`--segment-rows`), starve the pager (`--budget-bytes`), or leave
/// the daemon with no threads (`--workers`). Omit the flag to get the
/// default instead.
fn positive_flag(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, CliError> {
    let value: usize = parsed_flag(flags, name, default)?;
    if value == 0 && flags.contains_key(name) {
        return Err(CliError::Usage(format!(
            "--{name} must be greater than zero (omit the flag for the default)"
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------- keygen

fn keygen(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let master = require(flags, "master")?;
    let csv_path = require(flags, "domain-from")?;
    let attr = require(flags, "attr")?;
    let e: u64 = parsed_flag(flags, "e", 60)?;
    let wm_len: usize = parsed_flag(flags, "wm-len", 10)?;
    let erasure = match flags.get("erasure").map(String::as_str) {
        None | Some("random-fill") => ErasurePolicy::RandomFill,
        Some("abstain") => ErasurePolicy::Abstain,
        Some("zero-fill") => ErasurePolicy::ZeroFill,
        Some(other) => return Err(CliError::Usage(format!("unknown erasure policy {other:?}"))),
    };
    let rel = load_csv(csv_path, attr)?;
    let attr_idx = rel.schema().index_of(attr).map_err(CliError::run)?;
    let domain = CategoricalDomain::from_column(&rel, attr_idx).map_err(CliError::run)?;
    let mut builder =
        WatermarkSpec::builder(domain).master_key(master).e(e).wm_len(wm_len).erasure(erasure);
    builder = match (flags.get("wm-data-len"), flags.get("tuples")) {
        (Some(l), _) => builder
            .wm_data_len(l.parse().map_err(|e| CliError::Usage(format!("--wm-data-len: {e}")))?),
        (None, Some(n)) => builder
            .expected_tuples(n.parse().map_err(|e| CliError::Usage(format!("--tuples: {e}")))?),
        (None, None) => builder.expected_tuples(rel.len()),
    };
    let spec = builder.build().map_err(CliError::run)?;
    Ok(to_key_file(&spec))
}

// ----------------------------------------------------------------- embed

fn embed(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let spec = load_key(require(flags, "key")?)?;
    let key_attr = require(flags, "key-attr")?;
    let attr = require(flags, "attr")?;
    let mark = parse_mark(require(flags, "mark")?, spec.wm_len)?;
    let mut rel = load_csv(require(flags, "input")?, attr)?;
    let session = bind_session(spec, &rel, key_attr, attr)?;
    let report = session.embed(&mut rel, &mark).map_err(CliError::run)?;
    let output_path = require(flags, "output")?;
    let mut out =
        File::create(output_path).map_err(|e| CliError::Run(format!("{output_path}: {e}")))?;
    catmark::relation::csv::write_csv(&rel, &mut out).map_err(CliError::run)?;
    Ok(format!(
        "embedded {} into {}: {} tuples, {} fit, {} altered ({:.2}%)\n",
        mark,
        output_path,
        report.total_tuples,
        report.fit_tuples,
        report.altered,
        report.alteration_rate() * 100.0
    ))
}

// ---------------------------------------------------------------- decode

fn decode(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let spec = load_key(require(flags, "key")?)?;
    let key_attr = require(flags, "key-attr")?;
    let attr = require(flags, "attr")?;
    let rel = load_csv(require(flags, "input")?, attr)?;
    let claimed = flags.get("claim").map(|c| parse_mark(c, spec.wm_len)).transpose()?;
    let session = bind_session(spec, &rel, key_attr, attr)?;
    // With --evidence the certified twin runs instead — same single
    // accumulation pass, same outcome, plus the serialized bundle.
    let evidence_path = flags.get("evidence");
    let (report, detection, bundle) = match (&claimed, evidence_path) {
        (Some(claimed), Some(_)) => {
            let c = session.detect_certified(&rel, claimed).map_err(CliError::run)?;
            (c.outcome.decode, Some(c.outcome.detection), Some(c.bundle))
        }
        (None, Some(_)) => {
            let c = session.decode_certified(&rel).map_err(CliError::run)?;
            (c.outcome, None, Some(c.bundle))
        }
        (Some(claimed), None) => {
            let report = session.decode(&rel).map_err(CliError::run)?;
            // Weigh the decode against the claim — pure arithmetic, no
            // second decode pass.
            let detection = detect(&report.watermark, claimed);
            (report, Some(detection), None)
        }
        (None, None) => (session.decode(&rel).map_err(CliError::run)?, None, None),
    };
    let mut out = format!(
        "decoded mark     {}\nfit tuples       {}\nvotes cast       {}\nforeign values   {}\npositions        {} observed / {} erased / {} conflicting\n",
        report.watermark,
        report.fit_tuples,
        report.votes_cast,
        report.foreign_values,
        report.positions_observed,
        report.positions_erased,
        report.position_conflicts,
    );
    if let Some(verdict) = detection {
        out.push_str(&format!(
            "claim match      {}/{} bits\nfalse positive   {:.3e}\nverdict          {}\n",
            verdict.matched_bits,
            verdict.total_bits,
            verdict.false_positive_probability,
            if verdict.is_significant(1e-2) { "SIGNIFICANT (alpha 1%)" } else { "not significant" },
        ));
    }
    if let (Some(path), Some(bundle)) = (evidence_path, bundle) {
        std::fs::write(path, &bundle).map_err(|e| CliError::Run(format!("{path}: {e}")))?;
        out.push_str(&format!("evidence         {} bytes -> {path}\n", bundle.len()));
    }
    Ok(out)
}

// ------------------------------------------------------- verify-evidence

/// Independently check a serialized `CMKEVD1` evidence bundle — no
/// key file, no relation. Malformed or tampered bundles exit 1 with
/// the first failed check named; verified bundles print the facts
/// they pin.
fn verify_evidence_cmd(args: &[String]) -> Result<String, CliError> {
    let path = match args {
        [single] if !single.starts_with("--") => single.clone(),
        _ => {
            let flags = parse_flags(args)?;
            let path = require(&flags, "bundle")?.to_owned();
            if flags.len() > 1 {
                return Err(CliError::Usage("verify-evidence takes only a bundle path".into()));
            }
            path
        }
    };
    let bytes = std::fs::read(&path).map_err(|e| CliError::Run(format!("{path}: {e}")))?;
    let summary = catmark::core::evidence::verify_evidence(&bytes).map_err(CliError::run)?;
    Ok(format!("{path}: evidence bundle VERIFIED\n{summary}\n"))
}

// --------------------------------------------------------------- inspect

fn inspect(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let spec = load_key(require(flags, "key")?)?;
    Ok(format!(
        "algorithm    {}\ne            {} (≈{:.2}% of tuples altered)\nwm_len       {}\nwm_data_len  {} ({}x redundancy)\nerasure      {:?}\ndomain       {} values ({} bits)\n",
        spec.algo,
        spec.e,
        100.0 / spec.e as f64,
        spec.wm_len,
        spec.wm_data_len,
        spec.wm_data_len / spec.wm_len.max(1),
        spec.erasure,
        spec.domain.len(),
        spec.domain.index_bits(),
    ))
}

// ----------------------------------------------------------------- rules

/// Mine association rules from a CSV — the "know your semantics before
/// you watermark them" companion of `embed` (pipe the strong rules into
/// a constraint program or the `catmark-mining` guards).
fn rules(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let input = require(flags, "input")?;
    let attrs_flag = require(flags, "attrs")?;
    let attrs: Vec<&str> = attrs_flag.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    if attrs.is_empty() {
        return Err(CliError::Usage("--attrs needs at least one attribute name".into()));
    }
    let min_support: f64 = parsed_flag(flags, "min-support", 0.05)?;
    let min_confidence: f64 = parsed_flag(flags, "min-confidence", 0.8)?;
    let max_len: usize = parsed_flag(flags, "max-len", 2)?;
    let top: usize = parsed_flag(flags, "top", 20)?;
    if !(0.0..=1.0).contains(&min_support) || !(0.0..=1.0).contains(&min_confidence) {
        return Err(CliError::Usage(
            "--min-support and --min-confidence are fractions in 0..=1".into(),
        ));
    }

    let rel = load_csv_multi(input, &attrs)?;
    let tx = Transactions::from_relation(&rel, &attrs).map_err(CliError::run)?;
    let frequent = mine(&tx, &AprioriConfig { min_support, max_len });
    let ruleset = RuleSet::derive(&frequent, min_confidence);

    let name_of = |attr_idx: usize| rel.schema().attr(attr_idx).name.clone();
    let fmt_value = |v: &Value| match v {
        Value::Int(i) => i.to_string(),
        Value::Text(s) => format!("{s:?}"),
    };
    let mut out = format!(
        "{} transactions, {} frequent itemsets (support ≥ {:.1}%), {} rules (confidence ≥ {:.1}%)\n",
        tx.len(),
        frequent.len(),
        min_support * 100.0,
        ruleset.len(),
        min_confidence * 100.0
    );
    for r in ruleset.rules().iter().take(top) {
        let lhs: Vec<String> = r
            .antecedent
            .items()
            .iter()
            .map(|it| format!("{}={}", name_of(it.attr), fmt_value(&it.value)))
            .collect();
        out.push_str(&format!(
            "{} => {}={}  sup {:.3}  conf {:.3}  lift {:.2}\n",
            lhs.join(" & "),
            name_of(r.consequent.attr),
            fmt_value(&r.consequent.value),
            r.support,
            r.confidence,
            r.lift
        ));
    }
    if ruleset.len() > top {
        out.push_str(&format!("… and {} more (raise --top)\n", ruleset.len() - top));
    }
    Ok(out)
}

// ----------------------------------------------------------------- serve

/// Run the multi-tenant watermarking daemon. Each `--registries`
/// entry is a tenant key-registry file (see
/// `catmark::core::keyfile::TenantKeyRegistry`); with `--socket` the
/// daemon listens on a Unix socket, otherwise it serves one framed
/// JSON connection over stdin/stdout. The wire protocol is documented
/// in `docs/SERVICE.md`.
fn serve(flags: &HashMap<String, String>) -> Result<String, CliError> {
    use catmark::core::keyfile::TenantKeyRegistry;
    use catmark::service::{Service, ServiceConfig};

    let registries_flag = require(flags, "registries")?;
    let paths: Vec<&str> =
        registries_flag.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    if paths.is_empty() {
        return Err(CliError::Usage("--registries needs at least one file".into()));
    }
    let segment_rows: usize = positive_flag(flags, "segment-rows", 0)?;
    let budget_bytes: usize = positive_flag(flags, "budget-bytes", 64 << 20)?;
    let workers: usize = positive_flag(flags, "workers", catmark::service::default_workers())?;
    let mut service = Service::new(ServiceConfig { segment_rows, budget_bytes });
    for path in paths {
        let mut text = String::new();
        File::open(path)
            .map_err(|e| format!("{path}: {e}"))?
            .read_to_string(&mut text)
            .map_err(|e| format!("{path}: {e}"))?;
        let registry = TenantKeyRegistry::from_registry_file(&text)
            .map_err(|e| CliError::Run(format!("{path}: {e}")))?;
        let tenant = registry.tenant().to_string();
        service
            .add_registry(registry)
            .map_err(|e| CliError::Run(format!("{path} (tenant {tenant:?}): {e}")))?;
    }
    match flags.get("socket") {
        Some(path) => {
            eprintln!(
                "catmark serve: listening on {path} ({} tenants, {workers} workers)",
                service.tenants().len()
            );
            catmark::service::serve_unix_pool(service, std::path::Path::new(path), workers)
                .map_err(|e| CliError::Run(format!("{path}: {e}")))?;
        }
        None => {
            catmark::service::serve_stdio(service).map_err(CliError::run)?;
        }
    }
    Ok(String::new())
}

// -------------------------------------------------------------------- gc

/// Garbage-collect a content-addressed segment pile: rewrite it
/// keeping only the blobs referenced by live version manifests. With
/// `--keep` only the named version ids stay openable (their blobs are
/// retained, including every blob shared with dropped ancestors);
/// without it every version in the log is treated as live, so gc only
/// reclaims blobs orphaned by dirty-segment rewrites. The log file
/// itself is untouched — manifests reference content *hashes*, which
/// survive the rewrite.
fn gc(flags: &HashMap<String, String>) -> Result<String, CliError> {
    use catmark::relation::{ContentStore, VersionLog, VersionManifest};

    let store_path = require(flags, "store")?;
    let log_path = require(flags, "log")?;
    let bytes = std::fs::read(log_path).map_err(|e| format!("{log_path}: {e}"))?;
    let log = VersionLog::decode(&bytes).map_err(|e| CliError::Run(format!("{log_path}: {e}")))?;
    let live: Vec<&VersionManifest> = match flags.get("keep") {
        None => log.manifests().iter().collect(),
        Some(ids) => ids
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|id| {
                let id: u64 =
                    id.parse().map_err(|e| CliError::Usage(format!("--keep: {id:?}: {e}")))?;
                log.get(id).ok_or_else(|| {
                    CliError::Usage(format!("--keep: version {id} is not in {log_path}"))
                })
            })
            .collect::<Result<_, _>>()?,
    };
    if live.is_empty() {
        return Err(CliError::Usage("--keep names no versions; nothing would survive".into()));
    }
    let store = ContentStore::open_file(store_path)
        .map_err(|e| CliError::Run(format!("{store_path}: {e}")))?;
    let tmp = format!("{store_path}.gc-tmp");
    let dest = ContentStore::create_file(&tmp).map_err(|e| CliError::Run(format!("{tmp}: {e}")))?;
    let stats = store.gc_into(live.iter().copied(), &dest).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        CliError::Run(e.to_string())
    })?;
    drop(dest);
    drop(store);
    std::fs::rename(&tmp, store_path).map_err(|e| CliError::Run(format!("{store_path}: {e}")))?;
    Ok(format!(
        "gc {store_path}: kept {} blobs ({} bytes) across {} live versions, dropped {}\n",
        stats.live_blobs,
        stats.live_bytes,
        live.len(),
        stats.dropped_blobs,
    ))
}

// ----------------------------------------------------------- shared bits

fn load_key(path: &str) -> Result<WatermarkSpec, CliError> {
    let mut text = String::new();
    File::open(path)
        .map_err(|e| format!("{path}: {e}"))?
        .read_to_string(&mut text)
        .map_err(|e| format!("{path}: {e}"))?;
    from_key_file(&text).map_err(CliError::run)
}

/// Parse a watermark given as a bit string (`1011…`) or `0x` hex.
fn parse_mark(text: &str, wm_len: usize) -> Result<Watermark, CliError> {
    let value = if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| CliError::Usage(format!("mark: {e}")))?
    } else if text.chars().all(|c| c == '0' || c == '1') && !text.is_empty() {
        if text.len() != wm_len {
            return Err(CliError::Usage(format!(
                "mark has {} bits but the key file declares wm_len {}",
                text.len(),
                wm_len
            )));
        }
        u64::from_str_radix(text, 2).map_err(|e| CliError::Usage(format!("mark: {e}")))?
    } else {
        return Err(CliError::Usage(format!("mark {text:?} is neither a bit string nor 0x-hex")));
    };
    if wm_len < 64 && value >= (1u64 << wm_len) {
        return Err(CliError::Usage(format!("mark {text:?} does not fit in {wm_len} bits")));
    }
    Ok(Watermark::from_u64(value, wm_len))
}

/// Load a CSV with schema inference: the header names the attributes;
/// a column is Integer when every sampled value parses as `i64`. The
/// first column is the primary key; `marked_attr` is flagged
/// categorical.
fn load_csv(path: &str, marked_attr: &str) -> Result<Relation, CliError> {
    load_csv_multi(path, &[marked_attr])
}

/// [`load_csv`] with several categorical attributes (the `rules`
/// subcommand mines more than one).
fn load_csv_multi(path: &str, cat_attrs: &[&str]) -> Result<Relation, CliError> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reader = BufReader::new(file);
    let schema = catmark::relation::csv::infer_schema(&mut reader, cat_attrs)
        .map_err(|e| format!("{path}: {e}"))?;
    // Re-open: inference consumed the stream.
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    catmark::relation::csv::read_csv(schema, &mut BufReader::new(file))
        .map_err(|e| CliError::Run(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> =
            ["--key", "k.txt", "--attr", "item"].iter().map(|s| (*s).to_string()).collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags["key"], "k.txt");
        assert_eq!(flags["attr"], "item");
        assert!(parse_flags(&["--lonely".to_owned()]).is_err());
        assert!(parse_flags(&["naked".to_owned(), "v".to_owned()]).is_err());
        let dup: Vec<String> = ["--a", "1", "--a", "2"].iter().map(|s| (*s).to_string()).collect();
        assert!(parse_flags(&dup).is_err());
    }

    #[test]
    fn serve_rejects_zero_segment_rows_with_a_usage_error() {
        let args: Vec<String> = ["serve", "--registries", "acme.reg", "--segment-rows", "0"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("--segment-rows")), "{err:?}");
    }

    #[test]
    fn serve_rejects_zero_budget_bytes_with_a_usage_error() {
        let args: Vec<String> = ["serve", "--registries", "acme.reg", "--budget-bytes", "0"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("--budget-bytes")), "{err:?}");
    }

    #[test]
    fn serve_rejects_zero_workers_but_defaults_stay_available() {
        let args: Vec<String> = ["serve", "--registries", "acme.reg", "--workers", "0"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("--workers")), "{err:?}");
        // Omitting the flags entirely is not a usage error: the run
        // proceeds past flag validation and fails later on the
        // (nonexistent) registry file with a *run* error instead.
        let args: Vec<String> = ["serve", "--registries", "/nonexistent/acme.reg"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(matches!(&err, CliError::Run(_)), "{err:?}");
    }

    #[test]
    fn mark_parsing() {
        assert_eq!(parse_mark("1011", 4).unwrap(), Watermark::from_u64(0b1011, 4));
        assert_eq!(parse_mark("0x2A", 8).unwrap(), Watermark::from_u64(0x2A, 8));
        assert!(parse_mark("10", 4).is_err(), "length mismatch");
        assert!(parse_mark("0xFFF", 4).is_err(), "overflow");
        assert!(parse_mark("abc", 4).is_err(), "garbage");
    }

    #[test]
    fn rules_subcommand_mines_from_csv() {
        let dir = std::env::temp_dir().join(format!("catmark-rules-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("retail.csv");
        let mut csv = String::from("sku,dept,aisle\n");
        for i in 0..400i64 {
            let dept = i % 4;
            let aisle = if i % 10 == 9 { 99 } else { dept * 10 };
            csv.push_str(&format!("{i},{dept},{aisle}\n"));
        }
        std::fs::write(&data_path, csv).unwrap();

        let arg = |s: &str| s.to_owned();
        let out = run(&[
            arg("rules"),
            arg("--input"),
            arg(data_path.to_str().unwrap()),
            arg("--attrs"),
            arg("dept,aisle"),
            arg("--min-support"),
            arg("0.1"),
            arg("--min-confidence"),
            arg("0.8"),
        ])
        .unwrap();
        assert!(out.contains("400 transactions"), "{out}");
        assert!(out.contains("=>"), "{out}");
        assert!(out.contains("dept=") && out.contains("aisle="), "{out}");

        // Degenerate flags error cleanly.
        assert!(run(&[
            arg("rules"),
            arg("--input"),
            arg(data_path.to_str().unwrap()),
            arg("--attrs"),
            arg(""),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_help() {
        assert!(run(&["frobnicate".to_owned()]).is_err());
        assert!(run(&["help".to_owned()]).unwrap().contains("usage"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn end_to_end_through_temp_files() {
        use catmark::datagen::{ItemScanConfig, SalesGenerator};
        let dir = std::env::temp_dir().join(format!("catmark-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let key_path = dir.join("key.catmark");
        let marked_path = dir.join("marked.csv");

        // Write a data set.
        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 3_000, ..Default::default() }).generate();
        let mut f = File::create(&data_path).unwrap();
        catmark::relation::csv::write_csv(&rel, &mut f).unwrap();

        // keygen → key file.
        let arg = |s: &str| s.to_owned();
        let key_text = run(&[
            arg("keygen"),
            arg("--master"),
            arg("cli-test-secret"),
            arg("--domain-from"),
            arg(data_path.to_str().unwrap()),
            arg("--attr"),
            arg("item_nbr"),
            arg("--e"),
            arg("15"),
            arg("--erasure"),
            arg("abstain"),
        ])
        .unwrap();
        std::fs::write(&key_path, &key_text).unwrap();

        // inspect.
        let info = run(&[arg("inspect"), arg("--key"), arg(key_path.to_str().unwrap())]).unwrap();
        assert!(info.contains("e            15"), "{info}");

        // embed.
        let summary = run(&[
            arg("embed"),
            arg("--key"),
            arg(key_path.to_str().unwrap()),
            arg("--input"),
            arg(data_path.to_str().unwrap()),
            arg("--key-attr"),
            arg("visit_nbr"),
            arg("--attr"),
            arg("item_nbr"),
            arg("--mark"),
            arg("1011001110"),
            arg("--output"),
            arg(marked_path.to_str().unwrap()),
        ])
        .unwrap();
        assert!(summary.contains("embedded 1011001110"), "{summary}");

        // decode with a claim.
        let verdict = run(&[
            arg("decode"),
            arg("--key"),
            arg(key_path.to_str().unwrap()),
            arg("--input"),
            arg(marked_path.to_str().unwrap()),
            arg("--key-attr"),
            arg("visit_nbr"),
            arg("--attr"),
            arg("item_nbr"),
            arg("--claim"),
            arg("1011001110"),
        ])
        .unwrap();
        assert!(verdict.contains("decoded mark     1011001110"), "{verdict}");
        assert!(verdict.contains("SIGNIFICANT"), "{verdict}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_emits_evidence_and_verify_evidence_judges_it() {
        use catmark::datagen::{ItemScanConfig, SalesGenerator};
        let dir = std::env::temp_dir().join(format!("catmark-evd-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let key_path = dir.join("key.catmark");
        let marked_path = dir.join("marked.csv");
        let bundle_path = dir.join("run.evd");

        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 3_000, ..Default::default() }).generate();
        let mut f = File::create(&data_path).unwrap();
        catmark::relation::csv::write_csv(&rel, &mut f).unwrap();

        let arg = |s: &str| s.to_owned();
        let key_text = run(&[
            arg("keygen"),
            arg("--master"),
            arg("cli-evidence-secret"),
            arg("--domain-from"),
            arg(data_path.to_str().unwrap()),
            arg("--attr"),
            arg("item_nbr"),
            arg("--e"),
            arg("15"),
        ])
        .unwrap();
        std::fs::write(&key_path, &key_text).unwrap();
        run(&[
            arg("embed"),
            arg("--key"),
            arg(key_path.to_str().unwrap()),
            arg("--input"),
            arg(data_path.to_str().unwrap()),
            arg("--key-attr"),
            arg("visit_nbr"),
            arg("--attr"),
            arg("item_nbr"),
            arg("--mark"),
            arg("1011001110"),
            arg("--output"),
            arg(marked_path.to_str().unwrap()),
        ])
        .unwrap();

        // Certified decode prints the same verdict text plus the
        // bundle line.
        let verdict = run(&[
            arg("decode"),
            arg("--key"),
            arg(key_path.to_str().unwrap()),
            arg("--input"),
            arg(marked_path.to_str().unwrap()),
            arg("--key-attr"),
            arg("visit_nbr"),
            arg("--attr"),
            arg("item_nbr"),
            arg("--claim"),
            arg("1011001110"),
            arg("--evidence"),
            arg(bundle_path.to_str().unwrap()),
        ])
        .unwrap();
        assert!(verdict.contains("decoded mark     1011001110"), "{verdict}");
        assert!(verdict.contains("SIGNIFICANT"), "{verdict}");
        assert!(verdict.contains("evidence         "), "{verdict}");

        // The checker needs neither the key file nor the CSVs.
        let report = run(&[arg("verify-evidence"), arg(bundle_path.to_str().unwrap())]).unwrap();
        assert!(report.contains("VERIFIED"), "{report}");
        assert!(report.contains("1011001110"), "{report}");

        // A flipped byte is rejected with a run error, not a panic.
        let mut bytes = std::fs::read(&bundle_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let tampered = dir.join("tampered.evd");
        std::fs::write(&tampered, &bytes).unwrap();
        let err = run(&[arg("verify-evidence"), arg(tampered.to_str().unwrap())]).unwrap_err();
        assert!(matches!(&err, CliError::Run(msg) if msg.contains("rejected")), "{err:?}");

        // Missing files and malformed flags are clean errors too.
        assert!(run(&[arg("verify-evidence"), arg("/nonexistent/x.evd")]).is_err());
        assert!(matches!(
            run(&[arg("verify-evidence"), arg("--bundle"), arg("a"), arg("--extra"), arg("b")]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_drops_orphans_but_keeps_blobs_shared_with_ancestors() {
        use catmark::datagen::{ItemScanConfig, SalesGenerator};
        use catmark::relation::{ContentStore, SegmentedRelation, VersionLog};

        let dir = std::env::temp_dir().join(format!("catmark-gc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pile = dir.join("pile.cmk");
        let logf = dir.join("versions.cmk");

        let rel =
            SalesGenerator::new(ItemScanConfig { tuples: 1_000, ..Default::default() }).generate();
        let store = ContentStore::create_file(&pile).unwrap();
        let mut log = VersionLog::new();
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(250)
            .store(Box::new(store.clone()))
            .from_relation(&rel)
            .unwrap();
        let v1 = log.commit(&mut seg, &store).unwrap();
        // Dirty only the first segment; the other three blobs stay
        // shared between v1 and v2.
        let attr = rel.schema().index_of("item_nbr").unwrap();
        let swapped = rel.iter().next().unwrap().values()[attr].clone();
        let other = rel
            .iter()
            .map(|t| t.values()[attr].clone())
            .find(|v| *v != swapped)
            .expect("generator emits more than one item");
        seg.with_segment_mut(0, |r| r.update_value(0, attr, other)).unwrap().unwrap();
        let v2 = log.commit(&mut seg, &store).unwrap();
        std::fs::write(&logf, log.encode()).unwrap();
        drop(seg);
        drop(store);

        // With every logged version live there is nothing to drop —
        // dirty-segment rewrites appended, they never orphaned v1.
        let arg = |s: &str| s.to_owned();
        let out = run(&[
            arg("gc"),
            arg("--store"),
            arg(pile.to_str().unwrap()),
            arg("--log"),
            arg(logf.to_str().unwrap()),
        ])
        .unwrap();
        assert!(out.contains("dropped 0"), "{out}");

        // Keep only v2: v1's dirtied-away first blob is the lone
        // orphan; the three clean blobs v2 shares with its ancestor
        // must survive the rewrite.
        let out = run(&[
            arg("gc"),
            arg("--store"),
            arg(pile.to_str().unwrap()),
            arg("--log"),
            arg(logf.to_str().unwrap()),
            arg("--keep"),
            arg(&v2.to_string()),
        ])
        .unwrap();
        assert!(out.contains("dropped 1"), "{out}");

        let store = ContentStore::open_file(&pile).unwrap();
        let log = VersionLog::decode(&std::fs::read(&logf).unwrap()).unwrap();
        let mut reopened = log.open_version(v2, rel.schema(), &store, None).unwrap();
        assert_eq!(reopened.to_relation().unwrap().len(), 1_000);
        assert!(
            log.open_version(v1, rel.schema(), &store, None).is_err(),
            "v1's unshared blob should be gone"
        );
        drop(store);

        // Usage errors: unknown ids and empty --keep.
        let bad = run(&[
            arg("gc"),
            arg("--store"),
            arg(pile.to_str().unwrap()),
            arg("--log"),
            arg(logf.to_str().unwrap()),
            arg("--keep"),
            arg("99"),
        ]);
        assert!(matches!(bad, Err(CliError::Usage(_))), "{bad:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
