//! Quickstart: embed an ownership mark in a sales relation, attack it,
//! and prove ownership blindly.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use catmark::prelude::*;

fn main() {
    // ---- 1. The data ---------------------------------------------------
    // A synthetic stand-in for the paper's Wal-Mart ItemScan subset:
    // (visit_nbr INTEGER PRIMARY KEY, item_nbr INTEGER CATEGORICAL).
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let mut rel = gen.generate();
    println!("generated {} tuples over {} distinct items", rel.len(), gen.item_domain().len());

    // ---- 2. Key material ------------------------------------------------
    // Two secret keys (derived from one master), the fitness modulus e
    // (~1 in e tuples is altered), and the attribute's value domain.
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("secret-of-the-rights-holder")
        .e(60) // the paper's running example
        .wm_len(10) // the paper's experimental watermark size
        .expected_tuples(rel.len())
        .build()
        .expect("valid parameters");

    // ---- 3. One session, bound once ---------------------------------------
    // Columns are resolved and validated here; every operation below is
    // a method on this handle and shares one cached per-tuple plan.
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .expect("columns bind");

    // ---- 4. Embed -------------------------------------------------------
    let wm = Watermark::from_identity(
        "© DataCorp 2004 — all rights reserved",
        &SecretKey::from_bytes(b"secret-of-the-rights-holder".to_vec()),
        10,
    );
    let report = session.embed(&mut rel, &wm).expect("embedding succeeds");
    println!(
        "embedded wm={wm} into {} fit tuples ({} altered = {:.2}% of the data)",
        report.fit_tuples,
        report.altered,
        report.alteration_rate() * 100.0
    );

    // ---- 5. Mallory -----------------------------------------------------
    // Re-sort, steal half the rows, and randomly alter 10% of items.
    let stolen = Attack::Shuffle { seed: 42 }.apply(&rel).expect("shuffle");
    let stolen = Attack::HorizontalLoss { keep: 0.5, seed: 43 }.apply(&stolen).expect("loss");
    let stolen = Attack::RandomAlteration { attr: "item_nbr".into(), fraction: 0.10, seed: 44 }
        .apply(&stolen)
        .expect("alteration");
    println!("Mallory kept {} tuples, shuffled, and altered 10% of items", stolen.len());

    // ---- 6. Blind detection ----------------------------------------------
    // Only the session (keys + parameters) is needed — not the original
    // data. `detect` decodes blindly and weighs the court-time odds.
    let verdict = session.detect(&stolen, &wm).expect("decoding runs on any suspect data");
    println!("{verdict}");
    if verdict.is_significant(1e-2) {
        println!("=> ownership PROVEN (chance match below 1%)");
    } else {
        println!("=> evidence insufficient");
    }
}
