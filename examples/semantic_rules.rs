//! Semantic-consistency-aware watermarking: mine the association rules
//! and decision model your buyers depend on, then embed an ownership
//! mark that provably cannot damage them beyond declared tolerances —
//! the paper's Section 6 future-work item, end to end.
//!
//! ```sh
//! cargo run --release --example semantic_rules
//! ```

use catmark::core::quality::{AlterationBudget, QualityGuard};
use catmark::datagen::{BasketConfig, BasketGenerator};
use catmark::mining::apriori::{mine, AprioriConfig};
use catmark::mining::classify::{accuracy, NaiveBayes, OneR};
use catmark::mining::constraints::{AssociationRulePreserved, ClassifierAccuracyPreserved};
use catmark::mining::item::Transactions;
use catmark::mining::rules::RuleSet;
use catmark::prelude::*;

fn main() {
    // ---- 1. Retail data with real semantics ------------------------------
    // dept determines aisle for 95% of rows — the kind of structure a
    // data-mining buyer pays for.
    let gen = BasketGenerator::new(BasketConfig {
        tuples: 12_000,
        depts: 16,
        noise_rate: 0.05,
        seed: 2004,
    });
    let original = gen.generate();
    let aisle_domain = gen.aisle_domain();

    // ---- 2. Mine the semantics before touching anything ------------------
    let tx = Transactions::from_relation(&original, &["dept", "aisle"]).expect("attrs exist");
    let freq = mine(&tx, &AprioriConfig { min_support: 0.01, max_len: 2 });
    let rules = RuleSet::derive(&freq, 0.85);
    println!("mined {} frequent itemsets → {} rules (conf ≥ 85%)", freq.len(), rules.len());
    for r in rules.rules().iter().take(3) {
        println!("  strongest: {r}");
    }
    let nb = NaiveBayes::train(&original, "aisle", &["dept"]).expect("trainable");
    let baseline_acc = accuracy(&nb, &original);
    println!("naive-Bayes dept→aisle baseline accuracy: {:.1}%", baseline_acc * 100.0);

    // ---- 3. Embed under semantic guards -----------------------------------
    let spec = WatermarkSpec::builder(aisle_domain)
        .master_key("semantic-owner-key")
        .e(20)
        .wm_len(10)
        .expected_tuples(original.len())
        .build()
        .expect("valid parameters");
    let wm = Watermark::from_u64(0b1001110110, 10);

    let session = MarkSession::builder(spec)
        .key_column("sku")
        .target_column("aisle")
        .bind(&original)
        .expect("columns bind");
    let mut marked = original.clone();
    let mut guard = QualityGuard::new(vec![
        Box::new(AlterationBudget::fraction_of(original.len(), 0.06)),
        Box::new(AssociationRulePreserved::new(&original, &rules, 0.08)),
        Box::new(ClassifierAccuracyPreserved::new(
            &original,
            Box::new(NaiveBayes::train(&original, "aisle", &["dept"]).expect("trainable")),
            baseline_acc - 0.04,
        )),
    ]);
    let report = session.embed_guarded(&mut marked, &wm, &mut guard).expect("embedding succeeds");
    println!(
        "\nembedded: {} fit tuples, {} altered, {} vetoed by semantic guards",
        report.fit_tuples,
        report.altered,
        guard.vetoes()
    );

    // ---- 4. The buyer's view: semantics intact ----------------------------
    let tx_after = Transactions::from_relation(&marked, &["dept", "aisle"]).expect("attrs exist");
    let drift = rules.drift_against(&tx_after);
    println!(
        "rule survival: {}/{} ({:.1}%), max confidence drop {:.3}",
        drift.surviving,
        drift.total_rules,
        drift.survival_rate() * 100.0,
        drift.max_confidence_drop
    );
    let frozen = OneR::train(&original, "aisle", &["dept"]).expect("trainable");
    println!(
        "frozen OneR accuracy on the marked copy: {:.1}% (floor was {:.1}%)",
        accuracy(&frozen, &marked) * 100.0,
        (baseline_acc - 0.04) * 100.0
    );

    // ---- 5. The court's view: ownership still provable --------------------
    let suspect = Attack::HorizontalLoss { keep: 0.5, seed: 11 }
        .apply(&Attack::Shuffle { seed: 11 }.apply(&marked).expect("attack applies"))
        .expect("attack applies");
    let verdict = session.detect(&suspect, &wm).expect("blind decode");
    println!(
        "\nafter shuffle + 50% loss: {}/{} watermark bits match, false-positive odds {:.2e}",
        verdict.detection.matched_bits,
        verdict.detection.total_bits,
        verdict.detection.false_positive_probability
    );
    assert!(verdict.is_significant(1e-2), "ownership must remain provable");
    println!("ownership: PROVEN — and the buyer's rules never moved.");
}
