//! Court day: the full evidentiary story of Section 4.4 — positive
//! detection, the wrong-key control, the exhaustive-search defense,
//! and watermark reinforcement by data addition (Section 4.6).
//!
//! ```sh
//! cargo run --release --example court_day
//! ```

use catmark::prelude::*;
use catmark_analysis::bounds::false_positive_exact_match;
use catmark_core::addition::{inject_fit_tuples, InjectionParams, IntKeySynthesizer};

fn main() {
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let mut rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("plaintiff-master-key")
        .e(60)
        .wm_len(10)
        .expected_tuples(rel.len())
        .erasure(catmark_core::decode::ErasurePolicy::Abstain)
        .build()
        .expect("valid parameters");
    let wm = Watermark::from_identity(
        "DataCorp v. Mallory, exhibit A",
        &SecretKey::from_bytes(b"plaintiff-master-key".to_vec()),
        10,
    );
    let session = MarkSession::builder(spec.clone())
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .expect("columns bind");
    session.embed(&mut rel, &wm).expect("embed");

    // Reinforce before publication: inject 2% synthetic fit tuples
    // (Section 4.6 — additions cost no alterations).
    let mut synth = IntKeySynthesizer::new(500_000_000, 600_000_000, 7);
    let added = inject_fit_tuples(
        &spec,
        &mut rel,
        "visit_nbr",
        "item_nbr",
        &wm,
        InjectionParams::new(120, 7),
        &mut synth,
    )
    .expect("injection succeeds");
    println!(
        "pre-publication reinforcement: {} tuples injected ({} candidates tested)",
        added.added, added.attempts
    );

    // Escrow the detection material: the key file is everything a
    // future (possibly third-party) detector needs — the original
    // data is NOT retained (blind detection, §4.3).
    let key_file = catmark_core::keyfile::to_key_file(&spec);
    println!(
        "key material escrowed: {} lines, {} bytes (keys + parameters + domain)",
        key_file.lines().count(),
        key_file.len()
    );

    // Mallory publishes a cut-down copy.
    let pirated = Attack::HorizontalLoss { keep: 0.4, seed: 11 }
        .apply(&Attack::Shuffle { seed: 11 }.apply(&rel).expect("shuffle"))
        .expect("loss");
    println!("pirated copy: {} of {} tuples survive", pirated.len(), rel.len());

    // Exhibit 1: detection with the plaintiff's keys — restored from
    // escrow, not from memory, and bound into a fresh session against
    // the pirated copy.
    let restored_spec =
        catmark_core::keyfile::from_key_file(&key_file).expect("escrowed key file parses");
    let restored_session = MarkSession::builder(restored_spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&pirated)
        .expect("columns bind");
    let exhibit1 = restored_session.detect(&pirated, &wm).expect("decode");
    let verdict = exhibit1.detection.clone();
    println!(
        "exhibit 1 — plaintiff keys: {}/{} bits, chance odds {:.2e}",
        verdict.matched_bits, verdict.total_bits, verdict.false_positive_probability
    );

    // Exhibit 2: the wrong-key control. A defendant claiming "any key
    // finds a mark" must contend with chance-level matches under
    // random keys.
    let mut chance_hits = 0;
    let trials = 200;
    for i in 0..trials {
        let control = WatermarkSpec::builder(gen.item_domain())
            .master_key(format!("defendant-guess-{i}").as_str())
            .e(60)
            .wm_len(10)
            .expected_tuples(6_000)
            .build()
            .expect("valid parameters");
        let control_session = MarkSession::builder(control)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&pirated)
            .expect("columns bind");
        if control_session.detect(&pirated, &wm).expect("decode").is_significant(1e-2) {
            chance_hits += 1;
        }
    }
    println!(
        "exhibit 2 — wrong-key control: {chance_hits}/{trials} random keys reach significance \
         (expected ≈ {:.1})",
        trials as f64 * 1e-2
    );

    // Exhibit 3: the theory. Exhaustive key search is foreclosed by
    // hash one-wayness; the chance-match bound is:
    println!(
        "exhibit 3 — a priori false-positive bound for a {}-bit mark: {:.2e}",
        wm.len(),
        false_positive_exact_match(wm.len() as u32)
    );

    if verdict.is_significant(1e-2) && chance_hits <= trials / 20 {
        println!("=> the court finds for the plaintiff");
    } else {
        println!("=> the evidence needs work");
    }
}
