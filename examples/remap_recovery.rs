//! Surviving bijective attribute remapping (A6, Section 4.5): Mallory
//! relabels every item code; the rights holder reconstructs the
//! mapping from the value-frequency fingerprint and decodes anyway.
//!
//! ```sh
//! cargo run --release --example remap_recovery
//! ```

use catmark::prelude::*;
use catmark_attacks::remap::bijective_remap;
use catmark_core::remap::{apply_inverse, recover_mapping};

fn main() {
    // Skewed data: the frequency fingerprint the recovery relies on.
    let gen = SalesGenerator::new(ItemScanConfig {
        tuples: 40_000,
        items: 120,
        zipf_exponent: 1.1,
        ..Default::default()
    });
    let mut rel = gen.generate();
    let domain = gen.item_domain();

    let spec = WatermarkSpec::builder(domain.clone())
        .master_key("remap-recovery-master")
        .e(20)
        .wm_len(10)
        .expected_tuples(rel.len())
        .build()
        .expect("valid parameters");
    let wm = Watermark::from_u64(0b1110001011, 10);
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .expect("columns bind");
    session.embed(&mut rel, &wm).expect("embed");

    // The rights holder archives the post-embedding histogram as part
    // of the key material.
    let reference = FrequencyHistogram::from_relation(&rel, 1, &domain).expect("histogram");
    println!(
        "archived reference fingerprint: {} values, entropy {:.2} bits",
        domain.len(),
        reference.entropy_bits()
    );

    // Mallory remaps all item codes through a secret bijection.
    let (suspect, _secret_mapping) = bijective_remap(&rel, "item_nbr", 999).expect("remap");
    println!("Mallory remapped every item code into a fresh 9xx-million range");

    // Naïve decode: total abstention.
    let naive = session.decode(&suspect).expect("decode");
    println!(
        "naive decode: {} votes cast, {} foreign values — useless",
        naive.votes_cast, naive.foreign_values
    );

    // Frequency-rank recovery.
    let recovery = recover_mapping(&reference, &suspect, "item_nbr").expect("recovery");
    println!(
        "recovered {} value pairs (mean frequency gap {:.5}, {} unmatched)",
        recovery.len(),
        recovery.mean_frequency_gap,
        recovery.unmatched
    );
    let restored = apply_inverse(&suspect, "item_nbr", &recovery).expect("inverse applies");

    let verdict = session.detect(&restored, &wm).expect("decode");
    println!(
        "decode after recovery: {}/{} bits, fp odds {:.2e} => {}",
        verdict.detection.matched_bits,
        verdict.detection.total_bits,
        verdict.detection.false_positive_probability,
        if verdict.is_significant(1e-3) { "ownership proven" } else { "inconclusive" }
    );
}
