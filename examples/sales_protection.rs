//! Sales-data protection with quality guarantees — the Section 4.1
//! workflow: watermark under explicit usability constraints, verify
//! the constraints held, survive a realistic composite attack, and
//! keep an undo log.
//!
//! ```sh
//! cargo run --release --example sales_protection
//! ```

use catmark::prelude::*;
use catmark_attacks::composite;
use catmark_core::quality::{AlterationBudget, FrequencyDriftLimit, ImmutableRows, QualityGuard};

fn main() {
    // The data product: a quarter of Zipf-skewed item scans.
    let gen = SalesGenerator::new(ItemScanConfig {
        tuples: 20_000,
        items: 500,
        zipf_exponent: 1.0,
        ..Default::default()
    });
    let mut rel = gen.generate();
    let domain = gen.item_domain();
    let baseline = FrequencyHistogram::from_relation(&rel, 1, &domain).expect("clean column");
    println!(
        "data product: {} tuples, {} items, entropy {:.2} bits",
        rel.len(),
        domain.len(),
        baseline.entropy_bits()
    );

    let spec = WatermarkSpec::builder(domain.clone())
        .master_key("sales-protection-master")
        .e(40)
        .wm_len(10)
        .expected_tuples(rel.len())
        // Abstain: only observed votes reach the majority — the
        // statistically cleanest decoder (see the erasure ablation).
        .erasure(catmark_core::decode::ErasurePolicy::Abstain)
        .build()
        .expect("valid parameters");
    let wm = Watermark::from_u64(0b0111010110, 10);

    // Usability contract, Section 4.1 style:
    //  * alter at most 3% of tuples,
    //  * keep the item-frequency histogram within 0.02 L1 of baseline,
    //  * never touch the first 100 rows (flagship accounts).
    let mut guard = QualityGuard::new(vec![
        Box::new(AlterationBudget::fraction_of(rel.len(), 0.03)),
        Box::new(FrequencyDriftLimit::new(&rel, 1, &domain, 0.02).expect("histogram")),
        Box::new(ImmutableRows::new(0..100)),
    ]);
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .expect("columns bind");
    let report = session.embed_guarded(&mut rel, &wm, &mut guard).expect("embedding succeeds");
    println!(
        "embedded: {} fit, {} altered, {} vetoed by constraints, rollback log holds {} entries",
        report.fit_tuples,
        report.altered,
        report.vetoed,
        guard.log().len()
    );

    // Verify the contract held.
    let after = FrequencyHistogram::from_relation(&rel, 1, &domain).expect("clean column");
    println!("frequency drift after marking: {:.4} L1 (limit 0.02)", baseline.l1_distance(&after));
    assert!(baseline.l1_distance(&after) <= 0.02 + 1e-9);

    // A realistic composite adversary.
    let steps = composite::determined_adversary("item_nbr", 2024);
    for s in &steps {
        println!("attack step: {}", s.label());
    }
    let suspect = composite::pipeline(&rel, &steps).expect("attack pipeline");

    let verdict = session.detect(&suspect, &wm).expect("blind decode");
    println!(
        "after attack: {}/{} bits recovered, false-positive odds {:.2e} => {}",
        verdict.detection.matched_bits,
        verdict.detection.total_bits,
        verdict.detection.false_positive_probability,
        if verdict.is_significant(1e-2) { "ownership proven" } else { "inconclusive" }
    );

    // And if the publication deal falls through: full undo.
    let mut restored = rel.clone();
    let undone = guard.undo_all(&mut restored).expect("undo succeeds");
    let residual = session.detect(&restored, &wm).expect("decode");
    println!(
        "rollback: {undone} alterations undone; residual mark match {}/{} (expected ~chance)",
        residual.detection.matched_bits,
        wm.len()
    );
}
