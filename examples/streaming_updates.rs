//! Living data: watermarking an insert stream (§4.3), expressing
//! quality rules in the constraint language (§6), and settling an
//! additive-attack ownership dispute (§6).
//!
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use catmark::prelude::*;
use catmark_core::constraint_lang;
use catmark_core::contest::{additive_attack, Claim, ContestOutcome};

fn main() {
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 9_000, ..Default::default() });
    let source = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("streaming-owner")
        .e(15)
        .wm_len(10)
        .expected_tuples(source.len())
        .erasure(ErasurePolicy::Abstain)
        .build()
        .expect("valid parameters");
    let wm = Watermark::from_u64(0b1101100101, 10);

    // One session drives everything: the stream marker, the guarded
    // batch re-pass, the blind decode, and the ownership contest.
    let session = MarkSession::builder(spec.clone())
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&source)
        .expect("columns bind");

    // ---- 1. Stream ingestion (§4.3) --------------------------------------
    // New sales arrive one at a time; fit tuples are marked on the fly.
    let marker = session.stream(&wm).expect("marker configures");
    let mut live = Relation::new(source.schema().clone());
    let mut marked_count = 0usize;
    for tuple in source.iter() {
        let outcome = marker.ingest(&mut live, tuple.values().to_vec()).expect("ingest");
        if outcome.marked {
            marked_count += 1;
        }
    }
    println!(
        "ingested {} tuples; {} marked on the fly (≈1/{} as configured)",
        live.len(),
        marked_count,
        spec.e
    );
    let decoded = session.decode(&live).expect("decode");
    println!("streamed relation decodes to {} (expected {wm})", decoded.watermark);

    // ---- 2. The constraint language (§6) ----------------------------------
    // A second batch pass over the same data, governed by a textual
    // usability contract.
    let program = r#"
        # usability contract for the quarterly drop
        budget 2%            # alter at most 2% of tuples
        drift <= 0.05        # histogram stays within 0.05 L1
        immutable 0..500     # first 500 rows are contractual samples
    "#;
    let mut guard =
        constraint_lang::compile(program, &live, 1, &gen.item_domain()).expect("program compiles");
    let mut governed = live.clone();
    let report = session.embed_guarded(&mut governed, &wm, &mut guard).expect("guarded embed");
    println!(
        "constraint-governed re-pass: {} altered, {} vetoed (log {} entries) — \
         0 alterations confirms stream marking left nothing for the batch pass (idempotence)",
        report.altered,
        report.vetoed,
        guard.log().len()
    );

    // ---- 3. The additive attack and its resolution (§6) -------------------
    let owner = session.claim("owner", &wm);
    let mallory_spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("mallory-keys")
        .e(15)
        .wm_len(10)
        .expected_tuples(live.len())
        .erasure(ErasurePolicy::Abstain)
        .build()
        .expect("valid parameters");
    let mallory = Claim {
        claimant: "mallory".into(),
        spec: mallory_spec,
        watermark: Watermark::from_u64(0b0010011110, 10),
    };
    let mut disputed = live.clone();
    additive_attack(&mut disputed, &mallory, "visit_nbr", "item_nbr").expect("attack");
    println!("\nMallory additively embedded her own mark over the owner's data");

    let (outcome, ev_owner, ev_mallory) =
        session.contest(&owner, &mallory, &disputed, 1e-2, 0.01).expect("contest resolves");
    println!(
        "owner evidence: {}/{} bits, vote unanimity {:.3}",
        ev_owner.detection.matched_bits, ev_owner.detection.total_bits, ev_owner.vote_unanimity
    );
    println!(
        "mallory evidence: {}/{} bits, vote unanimity {:.3}",
        ev_mallory.detection.matched_bits,
        ev_mallory.detection.total_bits,
        ev_mallory.vote_unanimity
    );
    match outcome {
        ContestOutcome::EarlierClaim(who) => {
            println!("=> contest verdict: {who} marked FIRST (overwrite damage asymmetry)");
        }
        other => println!("=> contest verdict: {other:?}"),
    }
}
