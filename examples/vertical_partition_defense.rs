//! Defense in depth against vertical partitioning (A5) — Sections 3.3
//! and 4.2: multi-attribute pair embeddings plus the frequency-domain
//! channel for the extreme single-attribute case.
//!
//! ```sh
//! cargo run --release --example vertical_partition_defense
//! ```

use std::collections::HashMap;

use catmark::prelude::*;
use catmark_attacks::vertical;
use catmark_core::freq::FreqCodec;
use catmark_core::multiattr::aggregate_verdict;

fn main() {
    // Schema (visit_nbr, item_nbr, store_city): two categorical
    // attributes so three pair channels exist.
    let gen = SalesGenerator::new(ItemScanConfig {
        tuples: 12_000,
        items: 600,
        with_city: true,
        ..Default::default()
    });
    let mut rel = gen.generate();
    let wm = Watermark::from_u64(0b1010011001, 10);

    // ---- Pair embeddings (Section 3.3) ----------------------------------
    let base = WatermarkSpec::builder(gen.item_domain())
        .master_key("partition-defense-master")
        .e(10)
        .wm_len(10)
        .expected_tuples(rel.len())
        .erasure(catmark_core::decode::ErasurePolicy::Abstain)
        .build()
        .expect("valid parameters");
    let mut domains = HashMap::new();
    domains.insert("item_nbr".to_owned(), gen.item_domain());
    domains.insert("store_city".to_owned(), gen.city_domain());
    // The session's multiattr handle shares its plan cache: the embed
    // below and the per-partition decodes plan each pair's pseudo-key
    // column once.
    let session = MarkSession::builder(base)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .expect("columns bind");
    let multi = session.multiattr(&rel, &domains).expect("plan builds");
    println!("pair plan:");
    for p in multi.plan().pairs() {
        println!(
            "  {} (wm_data {} bits, pseudo-key {})",
            p.label(),
            p.spec.wm_data_len,
            p.pseudo_key
        );
    }
    let outcomes = multi.embed(&mut rel, &wm).expect("embedding succeeds");
    for o in &outcomes {
        println!(
            "  embedded {}: {} altered, {} interference skips",
            o.label, o.report.altered, o.skipped_interference
        );
    }

    // ---- Frequency-domain channel (Section 4.2) --------------------------
    let codec = FreqCodec::new(
        HashAlgorithm::Sha256,
        SecretKey::from_bytes(b"freq-channel-key".to_vec()),
        60,
        10,
    )
    .expect("valid codec");
    let freq_report = codec
        .embed(&mut rel, "item_nbr", &gen.item_domain(), &wm)
        .expect("frequency embedding succeeds");
    println!(
        "frequency channel: moved {} tuples ({} groups already matched)",
        freq_report.moved, freq_report.groups_unchanged
    );

    // ---- Attack: three escalating vertical partitions --------------------
    for keep in [
        vec!["visit_nbr", "item_nbr"],
        vec!["item_nbr", "store_city"],
        vec!["item_nbr"], // the extreme case
    ] {
        let suspect = vertical::keep_attributes(&rel, &keep).expect("projection");
        println!("\nA5 partition keeps {:?} ({} tuples):", keep, suspect.len());

        // Pair witnesses that survive the partition.
        let witnesses = multi.decode(&suspect, &wm).expect("decode runs");
        let verdict = aggregate_verdict(&witnesses, 1e-2);
        for w in &witnesses {
            println!(
                "  witness {}: {}/{} bits, fp {:.2e}",
                w.label,
                w.detection.matched_bits,
                w.detection.total_bits,
                w.detection.false_positive_probability
            );
        }
        println!(
            "  pair verdict: {}/{} significant witnesses",
            verdict.significant_witnesses, verdict.witnesses
        );
        if verdict.witnesses > 0 && verdict.significant_witnesses == 0 {
            // The paper's own caveat (§3.3 note): a low-cardinality
            // categorical attribute makes a weak primary-key
            // place-holder — 40 cities / e carriers is thin bandwidth.
            println!("  (weak witnesses: low-cardinality pseudo-key, as §3.3 cautions)");
        }

        // The frequency channel needs only the single attribute.
        if keep.contains(&"item_nbr") {
            let freq_wm =
                codec.decode(&suspect, "item_nbr", &gen.item_domain()).expect("frequency decode");
            let freq_verdict = detect(&freq_wm, &wm);
            println!(
                "  frequency witness: {}/{} bits, fp {:.2e}",
                freq_verdict.matched_bits,
                freq_verdict.total_bits,
                freq_verdict.false_positive_probability
            );
        }
    }
}
