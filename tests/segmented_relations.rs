//! Segment-boundary properties: a [`SegmentedRelation`] must be an
//! invisible re-packaging of a [`Relation`]. For random data, random
//! segment sizes (including size 1, sizes that leave tuples straddling
//! segment edges, and sizes larger than the relation) and explicit
//! empty trailing segments, every streaming operator and the
//! out-of-core embed/decode drivers must produce output identical to
//! their whole-relation counterparts — under a resident-byte budget a
//! quarter of the columnar footprint, with the enforced ceiling
//! asserted.

use catmark::core::{MarkSession, Watermark, WatermarkSpec};
use catmark::relation::spill::FileStore;
use catmark::relation::{join, ops, Predicate, Relation, SegmentedRelation, Value};
use catmark::relation::{AttrType, Schema};
use proptest::prelude::*;

/// Deterministic xorshift closure for structure generation.
fn rng_from(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

const TEXT_POOL: &[&str] = &["red", "green", "blue", "cyan", "violet", "umber"];

/// A relation with an integer key, an integer categorical and a text
/// categorical, driven entirely by the seed.
fn relation_for(seed: u64, tuples: usize) -> Relation {
    let schema = Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("a", AttrType::Integer)
        .categorical_attr("c", AttrType::Text)
        .build()
        .unwrap();
    let mut next = rng_from(seed);
    let mut rel = Relation::with_capacity(schema, tuples);
    for i in 0..tuples as i64 {
        let a = (next() % 9) as i64 - 2;
        let c = TEXT_POOL[(next() % TEXT_POOL.len() as u64) as usize];
        rel.push(vec![
            Value::Int(i * 7 + (next() % 5) as i64),
            Value::Int(a),
            Value::Text(c.into()),
        ])
        .unwrap();
    }
    rel
}

/// Segment `rel` with a quarter-of-footprint budget, optionally with
/// trailing empty segments.
fn segmented(rel: &Relation, segment_rows: usize, empty_tail: bool) -> SegmentedRelation {
    let budget = (rel.resident_bytes() / 4).max(1);
    let mut seg = SegmentedRelation::builder(rel.schema().clone())
        .segment_rows(segment_rows)
        .budget_bytes(budget)
        .from_relation(rel)
        .unwrap();
    if empty_tail {
        seg.seal_tail().unwrap();
        seg.seal_tail().unwrap(); // stacking empty segments is legal too
    }
    seg
}

fn assert_same(a: &Relation, b: &Relation, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y), "{what}: rows differ");
}

/// The sales-shaped fixture the watermarking proptest uses.
fn marked_fixture(tuples: usize) -> (Relation, MarkSession, Watermark) {
    let gen = catmark::datagen::SalesGenerator::new(catmark::datagen::ItemScanConfig {
        tuples,
        ..Default::default()
    });
    let rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("segment-boundary-proptests")
        .e(8)
        .wm_len(10)
        .expected_tuples(tuples)
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    (rel, session, Watermark::from_u64(0b1001110011, 10))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming select/join/distinct/group-bys over random segment
    /// sizes equal the monolithic operators — including segment sizes
    /// of 1 (every tuple straddles an edge) and sizes larger than the
    /// relation (a single segment).
    #[test]
    fn streaming_ops_are_segmentation_invariant(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let tuples = 40 + (next() % 160) as usize;
        let rel = relation_for(next(), tuples);
        let segment_rows = 1 + (next() % (tuples as u64 + 20)) as usize;
        let empty_tail = next().is_multiple_of(2);
        let mut seg = segmented(&rel, segment_rows, empty_tail);

        let pred = Predicate::eq("c", TEXT_POOL[(next() % 4) as usize])
            .or(Predicate::Gt("a".into(), Value::Int((next() % 5) as i64 - 1)));
        assert_same(&ops::select(&rel, &pred).unwrap(), &seg.select(&pred).unwrap(), "select");

        let mut right = Relation::new(
            Schema::builder()
                .key_attr("a", AttrType::Integer)
                .categorical_attr("tag", AttrType::Text)
                .build()
                .unwrap(),
        );
        for i in -2..7i64 {
            if next().is_multiple_of(3) { continue; }
            right.push(vec![Value::Int(i), Value::Text(format!("t{i}"))]).unwrap();
        }
        assert_same(
            &join::hash_join(&rel, &right, "a", "a").unwrap(),
            &seg.hash_join(&right, "a", "a").unwrap(),
            "hash_join",
        );

        // Distinct over a projection with repeated rows.
        let proj = ops::project(&rel, &[1, 2], 0, false).unwrap();
        let mut seg_proj = segmented(&proj, segment_rows, empty_tail);
        assert_same(&join::distinct(&proj), &seg_proj.distinct().unwrap(), "distinct");

        prop_assert_eq!(seg.group_count("c").unwrap(), join::group_count(&rel, "c").unwrap());
        prop_assert_eq!(seg.group_count("a").unwrap(), join::group_count(&rel, "a").unwrap());
        prop_assert_eq!(
            seg.group_count_distinct("c", "a").unwrap(),
            join::group_count_distinct(&rel, "c", "a").unwrap()
        );

        // The pager's exact contract: the working set never exceeds
        // the budget except for the one pinned segment in flight
        // (random segmentation may make a single segment bigger than
        // the whole quarter budget).
        let budget = (rel.resident_bytes() / 4).max(1);
        let ceiling = budget.max(seg.peak_segment_bytes());
        prop_assert!(seg.peak_pageable_bytes() <= ceiling,
            "peak {} > ceiling {}", seg.peak_pageable_bytes(), ceiling);
        assert_same(&rel, &seg.to_relation().unwrap(), "round trip");
    }

    /// Out-of-core embed + decode over random segment sizes is
    /// byte-identical to the in-memory session path — reports, marked
    /// bytes, and decoded bits — with the quarter budget enforced.
    #[test]
    fn out_of_core_embed_decode_is_segmentation_invariant(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let tuples = 300 + (next() % 900) as usize;
        let (rel, session, wm) = marked_fixture(tuples);
        let segment_rows = 1 + (next() % (tuples as u64)) as usize;
        let mut seg = segmented(&rel, segment_rows, next().is_multiple_of(2));

        let mut mono = rel.clone();
        let mono_report = session.embed(&mut mono, &wm).unwrap();
        let seg_report = session.embed_segmented(&mut seg, &wm).unwrap();
        prop_assert_eq!(&seg_report, &mono_report);

        let mono_decode = session.decode(&mono).unwrap();
        let seg_decode = session.decode_segmented(&mut seg).unwrap();
        prop_assert_eq!(&seg_decode, &mono_decode);

        let budget = (rel.resident_bytes() / 4).max(1);
        let ceiling = budget.max(seg.peak_segment_bytes());
        prop_assert!(seg.peak_pageable_bytes() <= ceiling,
            "peak {} > ceiling {}", seg.peak_pageable_bytes(), ceiling);
        assert_same(&mono, &seg.to_relation().unwrap(), "marked relation");
    }

    /// The pipelined out-of-core drivers (plan prefetched one segment
    /// ahead on a worker thread) are byte-identical to the sequential
    /// reference drivers over random segment sizes, and their memory
    /// contract holds: the pager's ceiling is unchanged, and the
    /// pipeline's only addition is a single in-flight segment clone —
    /// never larger than the largest segment.
    #[test]
    fn pipelined_drivers_match_sequential_segmented(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let tuples = 300 + (next() % 900) as usize;
        let (rel, session, wm) = marked_fixture(tuples);
        let segment_rows = 1 + (next() % (tuples as u64)) as usize;
        let empty_tail = next().is_multiple_of(2);

        let mut seq = segmented(&rel, segment_rows, empty_tail);
        let seq_report = session.embed_segmented_sequential(&mut seq, &wm).unwrap();
        let seq_decode = session.decode_segmented_sequential(&mut seq).unwrap();

        let mut piped = segmented(&rel, segment_rows, empty_tail);
        let (pipe_report, embed_stats) =
            session.embed_segmented_pipelined_with_stats(&mut piped, &wm).unwrap();
        prop_assert_eq!(&pipe_report, &seq_report);
        let (pipe_decode, decode_stats) =
            session.decode_segmented_pipelined_with_stats(&mut piped).unwrap();
        prop_assert_eq!(&pipe_decode, &seq_decode);
        assert_same(
            &seq.to_relation().unwrap(),
            &piped.to_relation().unwrap(),
            "pipelined marked relation",
        );

        // Ceiling contract: resident segments still bounded by the
        // pager budget (modulo the one pinned segment, as always) plus
        // at most one off-pager clone in flight.
        let budget = (rel.resident_bytes() / 4).max(1);
        let ceiling = budget.max(piped.peak_segment_bytes());
        prop_assert!(piped.peak_pageable_bytes() <= ceiling,
            "pipelined peak {} > ceiling {}", piped.peak_pageable_bytes(), ceiling);
        for stats in [embed_stats, decode_stats] {
            prop_assert_eq!(stats.segments, piped.segment_count());
            prop_assert!(stats.peak_inflight_bytes <= piped.peak_segment_bytes(),
                "in-flight clone {} > largest segment {}",
                stats.peak_inflight_bytes, piped.peak_segment_bytes());
        }
    }
}

/// A file-backed spill store round-trips the whole pipeline; the
/// spill file lives under `target/` (hermetic to the build tree).
#[test]
fn out_of_core_round_trip_through_a_file_store() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("segmented-relations");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round-trip.spill");

    let (rel, session, wm) = marked_fixture(3_000);
    let budget = rel.resident_bytes() / 4;
    let mut seg = SegmentedRelation::builder(rel.schema().clone())
        .segment_rows(150)
        .budget_bytes(budget)
        .store(Box::new(FileStore::create(&path).unwrap()))
        .from_relation(&rel)
        .unwrap();

    let mut mono = rel.clone();
    session.embed(&mut mono, &wm).unwrap();
    session.embed_segmented(&mut seg, &wm).unwrap();
    let verdict = session.detect_segmented(&mut seg, &wm).unwrap();
    assert!(verdict.is_significant(1e-3));
    assert_eq!(session.decode_segmented(&mut seg).unwrap(), session.decode(&mono).unwrap());
    assert!(seg.peak_pageable_bytes() <= budget, "budget not honored via the file store");
    assert!(seg.spilled_bytes() > 0);
    assert_same(&mono, &seg.to_relation().unwrap(), "file-store marked relation");

    let _ = std::fs::remove_file(&path);
}

/// Tuples pushed one by one (the streaming ingest path) land in the
/// same segments `from_relation` produces, and ops agree.
#[test]
fn push_and_from_relation_agree() {
    let rel = relation_for(42, 137);
    let mut pushed = SegmentedRelation::builder(rel.schema().clone()).segment_rows(25).build();
    for t in rel.iter() {
        pushed.push(t.values().to_vec()).unwrap();
    }
    pushed.seal_tail().unwrap();
    let mut gathered = SegmentedRelation::builder(rel.schema().clone())
        .segment_rows(25)
        .from_relation(&rel)
        .unwrap();
    assert_eq!(pushed.segment_count(), gathered.segment_count());
    assert_same(&pushed.to_relation().unwrap(), &gathered.to_relation().unwrap(), "ingest paths");
    assert_eq!(
        pushed.group_count("c").unwrap(),
        join::group_count(&rel, "c").unwrap(),
        "pushed segments disagree with monolithic group-by"
    );
}
