//! Manifest round-trip properties for the content-addressed versioned
//! store: seal → commit → reopen must rebuild relations byte-identical
//! to the monolithic original across random geometries (segment sizes
//! of 1, sizes that straddle segment edges, explicit empty trailing
//! segments), the `CMKVER1` log must survive encode/decode, and a
//! reopen → mutate → commit must share every clean segment blob with
//! its ancestor manifest while both versions stay independently
//! rebuildable.

use catmark::relation::{
    AttrType, ContentStore, Relation, Schema, SegmentedRelation, Value, VersionLog,
};
use proptest::prelude::*;

/// Deterministic xorshift closure for structure generation.
fn rng_from(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

const TEXT_POOL: &[&str] = &["red", "green", "blue", "cyan", "violet", "umber"];

/// A relation with an integer key, an integer categorical and a text
/// categorical, driven entirely by the seed.
fn relation_for(seed: u64, tuples: usize) -> Relation {
    let schema = Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("a", AttrType::Integer)
        .categorical_attr("c", AttrType::Text)
        .build()
        .unwrap();
    let mut next = rng_from(seed);
    let mut rel = Relation::with_capacity(schema, tuples);
    for i in 0..tuples as i64 {
        let a = (next() % 9) as i64 - 2;
        let c = TEXT_POOL[(next() % TEXT_POOL.len() as u64) as usize];
        rel.push(vec![
            Value::Int(i * 7 + (next() % 5) as i64),
            Value::Int(a),
            Value::Text(c.into()),
        ])
        .unwrap();
    }
    rel
}

/// Segment `rel` into the content-addressed pile, optionally sealing
/// empty trailing segments.
fn versioned(
    rel: &Relation,
    segment_rows: usize,
    empty_tail: bool,
    store: &ContentStore,
) -> SegmentedRelation {
    let mut seg = SegmentedRelation::builder(rel.schema().clone())
        .segment_rows(segment_rows)
        .store(Box::new(store.clone()))
        .from_relation(rel)
        .unwrap();
    if empty_tail {
        seg.seal_tail().unwrap();
        seg.seal_tail().unwrap(); // stacking empty segments is legal too
    }
    seg
}

fn assert_same(a: &Relation, b: &Relation, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y), "{what}: rows differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// seal → commit → encode → decode → reopen rebuilds the original
    /// relation byte-for-byte under random geometry, including
    /// segment sizes of 1, sizes larger than the relation, and empty
    /// trailing segments.
    #[test]
    fn commit_reopen_is_byte_identical(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let tuples = 30 + (next() % 120) as usize;
        let rel = relation_for(next(), tuples);
        let segment_rows = 1 + (next() % (tuples as u64 + 10)) as usize;
        let empty_tail = next().is_multiple_of(2);
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = versioned(&rel, segment_rows, empty_tail, &store);
        let v1 = log.commit(&mut seg, &store).unwrap();

        let log = VersionLog::decode(&log.encode()).unwrap();
        prop_assert_eq!(log.manifests().len(), 1);
        let manifest = log.get(v1).unwrap();
        prop_assert_eq!(manifest.rows() as usize, tuples);
        prop_assert_eq!(manifest.segments.len(), seg.segment_count());

        let mut reopened = log.open_version(v1, rel.schema(), &store, None).unwrap();
        prop_assert_eq!(reopened.segment_count(), seg.segment_count());
        assert_same(&rel, &reopened.to_relation().unwrap(), "reopened v1");
    }

    /// reopen → mutate one segment → commit: the child manifest shares
    /// every clean blob hash with its ancestor, `dirty_against` names
    /// at most the mutated segment, and both versions keep rebuilding
    /// their own bytes from the shared pile.
    #[test]
    fn mutated_commit_shares_clean_blobs_with_ancestor(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let tuples = 40 + (next() % 120) as usize;
        let rel = relation_for(next(), tuples);
        // Keep at least two segments so "clean" is non-empty.
        let segment_rows = 1 + (next() % (tuples as u64 / 2)) as usize;
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = versioned(&rel, segment_rows, false, &store);
        let v1 = log.commit(&mut seg, &store).unwrap();

        let mut child = log.open_version(v1, rel.schema(), &store, None).unwrap();
        let victim = (next() as usize) % child.segment_count();
        let new_a = Value::Int((next() % 9) as i64 - 2);
        child
            .with_segment_mut(victim, |r| r.update_value(0, 1, new_a.clone()))
            .unwrap()
            .unwrap();
        let v2 = log.commit(&mut child, &store).unwrap();

        let m1 = log.get(v1).unwrap().clone();
        let m2 = log.get(v2).unwrap().clone();
        prop_assert_eq!(m2.parent, Some(v1));
        let dirty = m2.dirty_against(&m1).expect("same geometry diffs");
        prop_assert!(dirty.iter().all(|&i| i == victim), "only the victim may dirty");
        for (i, (a, b)) in m1.segments.iter().zip(&m2.segments).enumerate() {
            if i != victim {
                prop_assert_eq!(a.hash, b.hash, "clean segment {} must share its blob", i);
            }
        }
        // The pile holds at most one extra blob for the mutation.
        prop_assert!(store.unique_blobs() <= (m1.segments.len() + 1) as u64);

        let mut expected = rel.clone();
        expected.update_value(victim * segment_rows, 1, new_a).unwrap();
        assert_same(
            &expected,
            &log.open_version(v2, rel.schema(), &store, None).unwrap().to_relation().unwrap(),
            "reopened v2",
        );
        assert_same(
            &rel,
            &log.open_version(v1, rel.schema(), &store, None).unwrap().to_relation().unwrap(),
            "reopened v1 after the mutated commit",
        );
    }
}

/// Single-row segments: every tuple is its own blob and the manifest
/// still round-trips, with duplicate rows deduplicating to one blob.
#[test]
fn segment_rows_one_round_trips() {
    let rel = relation_for(7, 23);
    let store = ContentStore::in_memory();
    let mut log = VersionLog::new();
    let mut seg = versioned(&rel, 1, false, &store);
    let v1 = log.commit(&mut seg, &store).unwrap();
    let manifest = log.get(v1).unwrap();
    assert_eq!(manifest.segments.len(), 23);
    assert!(manifest.segments.iter().all(|s| s.rows == 1));
    let mut reopened = log.open_version(v1, rel.schema(), &store, None).unwrap();
    assert_same(&rel, &reopened.to_relation().unwrap(), "single-row segments");
}

/// Empty trailing segments survive commit and reopen: the manifest
/// records the zero-row geometry, the identical empty blobs dedup to
/// one pile entry, and the rebuilt relation is unchanged.
#[test]
fn empty_trailing_segments_survive_the_round_trip() {
    let rel = relation_for(11, 37);
    let store = ContentStore::in_memory();
    let mut log = VersionLog::new();
    let mut seg = versioned(&rel, 10, true, &store);
    let v1 = log.commit(&mut seg, &store).unwrap();
    let manifest = log.get(v1).unwrap();
    assert_eq!(manifest.segments.len(), 6, "4 data segments + 2 sealed empties");
    assert_eq!(manifest.segments[4].rows, 0);
    assert_eq!(manifest.segments[5].rows, 0);
    assert_eq!(
        manifest.segments[4].hash, manifest.segments[5].hash,
        "identical empty blobs content-address to one hash"
    );
    let mut reopened = log.open_version(v1, rel.schema(), &store, None).unwrap();
    assert_eq!(reopened.segment_count(), 6);
    assert_same(&rel, &reopened.to_relation().unwrap(), "empty-tail round trip");
}

/// A file-backed pile round-trips across process-style reopen: write
/// two versions, drop every handle, reopen pile and log from bytes,
/// and rebuild both versions byte-identically.
#[test]
fn file_backed_pile_reopens_every_version() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let pile = dir.join("versioned_store_pile.blob");
    let _ = std::fs::remove_file(&pile);

    let rel = relation_for(19, 64);
    let log_bytes;
    {
        let store = ContentStore::create_file(&pile).unwrap();
        let mut log = VersionLog::new();
        let mut seg = versioned(&rel, 9, false, &store);
        let v1 = log.commit(&mut seg, &store).unwrap();
        let mut child = log.open_version(v1, rel.schema(), &store, None).unwrap();
        child.with_segment_mut(2, |r| r.update_value(0, 1, Value::Int(5))).unwrap().unwrap();
        log.commit(&mut child, &store).unwrap();
        log_bytes = log.encode();
    }

    let store = ContentStore::open_file(&pile).unwrap();
    let log = VersionLog::decode(&log_bytes).unwrap();
    assert_eq!(log.manifests().len(), 2);
    let mut expected = rel.clone();
    expected.update_value(18, 1, Value::Int(5)).unwrap();
    let mut v1 = log.open_version(0, rel.schema(), &store, None).unwrap();
    let mut v2 = log.open_version(1, rel.schema(), &store, None).unwrap();
    assert_same(&rel, &v1.to_relation().unwrap(), "file-backed v1");
    assert_same(&expected, &v2.to_relation().unwrap(), "file-backed v2");

    let _ = std::fs::remove_file(&pile);
}

/// Certified detection over a committed version must produce
/// byte-identical `CMKEVD1` evidence no matter which execution path
/// walked the data: segmented streaming, the incremental vote cache
/// (cold and warm), or a monolithic rebuild of the same version. One
/// (version, key, spec) triple → one bundle.
mod certified_cross_path {
    use catmark::core::evidence::verify_evidence;
    use catmark::core::{MarkSession, VoteCache, Watermark, WatermarkSpec};
    use catmark::relation::CategoricalDomain;

    use super::*;

    /// The domain `relation_for` draws attribute `a` from.
    fn domain() -> CategoricalDomain {
        CategoricalDomain::new((-2..=6).map(Value::Int).collect()).unwrap()
    }

    fn session_over(rel: &Relation, master_key: &str, tuples: usize) -> MarkSession {
        let spec = WatermarkSpec::builder(domain())
            .master_key(master_key)
            .e(4)
            .wm_len(8)
            .expected_tuples(tuples)
            .build()
            .unwrap();
        MarkSession::builder(spec).key_column("k").target_column("a").bind(rel).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random relation, random mark, random segment geometry
        /// (including empty trailing segments): the four certified
        /// paths agree byte-for-byte and the bundle verifies keylessly.
        #[test]
        fn certified_bundles_are_path_independent(seed in any::<u64>()) {
            let mut next = rng_from(seed);
            let tuples = 300 + (next() % 400) as usize;
            let mut rel = relation_for(next(), tuples);
            let session = session_over(&rel, "cross-path", tuples);
            let wm = Watermark::from_u64(next() & 0xFF, 8);
            session.embed(&mut rel, &wm).unwrap();

            let segment_rows = 1 + (next() % (tuples as u64 / 2 + 1)) as usize;
            let store = ContentStore::in_memory();
            let mut log = VersionLog::new();
            let mut seg = versioned(&rel, segment_rows, next().is_multiple_of(2), &store);
            let v = log.commit(&mut seg, &store).unwrap();
            let manifest = log.get(v).unwrap().clone();

            let segmented =
                session.detect_certified_segmented(&mut seg, &wm, &manifest).unwrap();
            let mut cache = VoteCache::new();
            let cold = session
                .detect_certified_incremental(&mut seg, &wm, &manifest, &mut cache)
                .unwrap();
            let warm = session
                .detect_certified_incremental(&mut seg, &wm, &manifest, &mut cache)
                .unwrap();
            let mono = log
                .open_version(v, rel.schema(), &store, None)
                .unwrap()
                .to_relation()
                .unwrap();
            let monolithic = session.detect_certified_version(&mono, &wm, &manifest).unwrap();

            prop_assert_eq!(&segmented.bundle, &cold.bundle, "segmented vs cold incremental");
            prop_assert_eq!(&cold.bundle, &warm.bundle, "cold vs warm incremental");
            prop_assert_eq!(&segmented.bundle, &monolithic.bundle, "segmented vs monolithic");

            // The certified verdict is the fast path's verdict.
            let fast = session.detect(&mono, &wm).unwrap();
            prop_assert_eq!(&segmented.outcome, &fast);
            prop_assert_eq!(&monolithic.outcome, &fast);

            // And the bundle stands alone: no relation, no keys.
            let summary = verify_evidence(&segmented.bundle).unwrap();
            prop_assert_eq!(summary.segments, seg.segment_count());
            prop_assert!(summary.relation.starts_with(&format!("version {v}")));
        }

        /// Same version, two different owner keys: both certify and
        /// verify, but the bundles commit to different key material
        /// and are not interchangeable.
        #[test]
        fn certified_bundles_commit_to_the_key(seed in any::<u64>()) {
            let mut next = rng_from(seed);
            let tuples = 240 + (next() % 160) as usize;
            let mut rel = relation_for(next(), tuples);
            let alice = session_over(&rel, "alice-key", tuples);
            let wm = Watermark::from_u64(next() & 0xFF, 8);
            alice.embed(&mut rel, &wm).unwrap();

            let store = ContentStore::in_memory();
            let mut log = VersionLog::new();
            let mut seg = versioned(&rel, 64, false, &store);
            let v = log.commit(&mut seg, &store).unwrap();
            let manifest = log.get(v).unwrap().clone();

            let bob = session_over(&rel, "bob-key", tuples);
            let a = alice.detect_certified_segmented(&mut seg, &wm, &manifest).unwrap();
            let b = bob.detect_certified_segmented(&mut seg, &wm, &manifest).unwrap();
            let sa = verify_evidence(&a.bundle).unwrap();
            let sb = verify_evidence(&b.bundle).unwrap();
            prop_assert!(sa.key_commitment != sb.key_commitment);
            prop_assert!(a.bundle != b.bundle);
        }
    }
}
