//! Property-based tests over the substrate extensions: relational
//! join/grouping operators, Apriori mining, collusion merges, the pair
//! closure, and count-query preservation.

use std::collections::HashSet;

use catmark::core::closure::build_closure;
use catmark::core::quality::{Alteration, QualityConstraint};
use catmark::core::query_preserve::{CountQuery, CountQueryPreservation, Tolerance, ValueSet};
use catmark::mining::apriori::{mine, AprioriConfig};
use catmark::mining::item::Transactions;
use catmark::prelude::*;
use catmark::relation::join;
use proptest::prelude::*;

/// A two-categorical-attribute relation driven entirely by the seed.
fn relation_for(seed: u64, tuples: usize, a_card: i64, b_card: i64) -> Relation {
    let schema = Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("a", AttrType::Integer)
        .categorical_attr("b", AttrType::Integer)
        .build()
        .unwrap();
    let mut rel = Relation::with_capacity(schema, tuples);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..tuples as i64 {
        let a = (next() % a_card as u64) as i64;
        let b = (next() % b_card as u64) as i64;
        rel.push(vec![Value::Int(i), Value::Int(a), Value::Int(100 + b)]).unwrap();
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Group-by counts always partition the relation: counts sum to N
    /// and are sorted descending.
    #[test]
    fn group_count_partitions(seed in any::<u64>(), card in 2i64..40) {
        let rel = relation_for(seed, 500, card, 5);
        let groups = join::group_count(&rel, "a").unwrap();
        let total: u64 = groups.iter().map(|g| g.count).sum();
        prop_assert_eq!(total, 500);
        prop_assert!(groups.windows(2).all(|w| w[0].count >= w[1].count));
        prop_assert!(groups.len() <= card as usize);
    }

    /// A self-join on the primary key is the identity on row count,
    /// and every joined row agrees on the join attribute.
    #[test]
    fn self_join_on_key_is_identity_sized(seed in any::<u64>()) {
        let rel = relation_for(seed, 300, 10, 10);
        let joined = join::hash_join(&rel, &rel, "k", "k").unwrap();
        prop_assert_eq!(joined.len(), rel.len());
    }

    /// distinct() is idempotent and never grows.
    #[test]
    fn distinct_is_idempotent(seed in any::<u64>(), card in 1i64..8) {
        let rel = relation_for(seed, 200, card, card);
        let d1 = join::distinct(&rel);
        let d2 = join::distinct(&d1);
        prop_assert!(d1.len() <= rel.len());
        prop_assert_eq!(d1.len(), d2.len());
    }

    /// Key-difference and key-intersection partition the left input.
    #[test]
    fn difference_intersection_partition(seed in any::<u64>(), cut in 1usize..290) {
        let rel = relation_for(seed, 300, 10, 10);
        let mut sub = rel.clone();
        let mut i = 0;
        sub.retain(|_| { i += 1; i <= cut });
        let diff = join::difference_by_key(&rel, &sub).unwrap();
        let inter = join::intersect_by_key(&rel, &sub).unwrap();
        prop_assert_eq!(diff.len() + inter.len(), rel.len());
        prop_assert_eq!(inter.len(), cut);
    }

    /// Apriori respects downward closure and min-support on random
    /// data, at every level.
    #[test]
    fn apriori_invariants(seed in any::<u64>(), min_support in 0.02f64..0.3) {
        let rel = relation_for(seed, 400, 6, 6);
        let tx = Transactions::from_relation(&rel, &["a", "b"]).unwrap();
        let freq = mine(&tx, &AprioriConfig { min_support, max_len: 2 });
        let min_count = (min_support * 400.0).ceil() as u64;
        for f in freq.iter() {
            prop_assert!(f.count >= min_count.max(1));
            // Recount from scratch: the miner's count is exact.
            prop_assert_eq!(f.count, tx.support_count(&f.set));
            for i in 0..f.set.len() {
                if f.set.len() >= 2 {
                    let sub = f.set.without(i);
                    let sub_count = freq.count_of(&sub).expect("downward closure");
                    prop_assert!(sub_count >= f.count);
                }
            }
        }
    }

    /// Majority-merging identical copies is the identity, regardless
    /// of the tie-break seed (there are never ties).
    #[test]
    fn collusion_of_clones_is_identity(seed in any::<u64>(), merge_seed in any::<u64>()) {
        let rel = relation_for(seed, 200, 10, 10);
        let merged =
            catmark::attacks::collusion::majority_merge(&[&rel, &rel, &rel], merge_seed)
                .unwrap();
        prop_assert_eq!(merged.len(), rel.len());
        prop_assert!(merged.iter().zip(rel.iter()).all(|(m, o)| m == o));
    }

    /// The closure always covers every unordered attribute pair
    /// exactly once (nothing dropped when every attribute has ≥ 2
    /// values), and never targets the key.
    #[test]
    fn closure_covers_all_pairs(seed in any::<u64>()) {
        let rel = relation_for(seed, 300, 5, 7);
        let c = build_closure(&rel).unwrap();
        prop_assert!(c.dropped.is_empty());
        prop_assert_eq!(c.len(), 3); // (k,a), (k,b), (a,b)
        prop_assert!(c.pairs.iter().all(|p| p.target != "k"));
        let unordered: HashSet<(String, String)> = c
            .pairs
            .iter()
            .map(|p| {
                let mut v = [p.pseudo_key.clone(), p.target.clone()];
                v.sort();
                (v[0].clone(), v[1].clone())
            })
            .collect();
        prop_assert_eq!(unordered.len(), 3);
    }

    /// Hamming ECC: clean round trip for arbitrary watermark lengths
    /// and bandwidths, and correction of any single wiped position
    /// class per block.
    #[test]
    fn hamming_ecc_invariants(
        wm_bits in any::<u64>(),
        wm_len in 4usize..=16,
        copies in 3usize..=12,
        wiped_class in 0usize..7,
    ) {
        use catmark::core::ecc::{ErrorCorrectingCode, HammingMajorityEcc};
        let ecc = HammingMajorityEcc;
        let wm = Watermark::from_u64(wm_bits & ((1 << wm_len) - 1), wm_len);
        let l = HammingMajorityEcc::codeword_len(wm_len);
        let out_len = l * copies;
        let data = ecc.encode(&wm, out_len);
        let mut no_ties = |_: usize| false;
        // Clean round trip.
        let positions: Vec<Option<bool>> = data.iter().copied().map(Some).collect();
        prop_assert_eq!(ecc.decode(&positions, wm_len, &mut no_ties), wm.clone());
        // Wipe one position class in every block (all copies flipped):
        // still decodes exactly.
        let flipped: Vec<Option<bool>> = data
            .iter()
            .enumerate()
            .map(|(i, &b)| Some(if (i % l) % 7 == wiped_class { !b } else { b }))
            .collect();
        prop_assert_eq!(ecc.decode(&flipped, wm_len, &mut no_ties), wm);
    }

    /// OneR's training accuracy is never below the majority-class
    /// baseline: a per-value rule can only refine the global majority.
    #[test]
    fn oner_beats_majority_baseline(seed in any::<u64>(), card in 2i64..10) {
        use catmark::mining::classify::{accuracy, OneR};
        let rel = relation_for(seed, 300, card, 4);
        let clf = OneR::train(&rel, "b", &["a"]).unwrap();
        let acc = accuracy(&clf, &rel);
        // Majority baseline over attribute b.
        let groups = join::group_count(&rel, "b").unwrap();
        let baseline = groups[0].count as f64 / rel.len() as f64;
        prop_assert!(acc >= baseline - 1e-12, "acc {acc} < baseline {baseline}");
    }

    /// Count-query tracking: any sequence of commits followed by
    /// rollbacks in reverse order restores the baseline exactly.
    #[test]
    fn count_query_rollback_is_exact(seed in any::<u64>(), moves in 1usize..30) {
        let rel = relation_for(seed, 300, 8, 8);
        let q = CountQuery::new(
            "a-low",
            1,
            ValueSet::Range(Value::Int(0), Value::Int(3)),
            Tolerance::Absolute(u64::MAX), // tracking only, never veto
        );
        let mut c = CountQueryPreservation::from_relation(&rel, vec![q]);
        let baseline = c.baseline(0);
        let mut log = Vec::new();
        let mut state = seed | 3;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..moves {
            let row = (next() % 300) as usize;
            let old = rel.tuple(row).unwrap().get(1).clone();
            let new = Value::Int((next() % 8) as i64);
            let change = Alteration { row, attr: 1, old, new };
            c.commit(&change);
            log.push(change);
        }
        for change in log.iter().rev() {
            c.rollback(change);
        }
        prop_assert_eq!(c.current(0), baseline);
    }
}

/// Non-proptest integration: the full semantic pipeline survives an
/// attack chain while preserving mined rules.
#[test]
fn guarded_embedding_survives_attacks_and_preserves_rules() {
    use catmark::core::quality::QualityGuard;
    use catmark::mining::constraints::AssociationRulePreserved;
    use catmark::mining::rules::RuleSet;

    // Strong a ⇒ b structure.
    let schema = Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("a", AttrType::Integer)
        .categorical_attr("b", AttrType::Integer)
        .build()
        .unwrap();
    let mut rel = Relation::with_capacity(schema, 8_000);
    for i in 0..8_000i64 {
        let a = i % 8;
        let b = if i % 25 == 24 { (a + 3) % 8 } else { a };
        rel.push(vec![Value::Int(i), Value::Int(a), Value::Int(100 + b)]).unwrap();
    }
    let domain =
        CategoricalDomain::new((0..8).map(|v| Value::Int(100 + v)).collect::<Vec<_>>()).unwrap();

    let tx = Transactions::from_relation(&rel, &["a", "b"]).unwrap();
    let freq = mine(&tx, &AprioriConfig { min_support: 0.02, max_len: 2 });
    let rules = RuleSet::derive(&freq, 0.9);
    assert!(!rules.is_empty());

    let spec = WatermarkSpec::builder(domain)
        .master_key("integration")
        .e(25)
        .wm_len(10)
        .expected_tuples(rel.len())
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let wm = Watermark::from_u64(0b1101001011, 10);
    let mut guard =
        QualityGuard::new(vec![Box::new(AssociationRulePreserved::new(&rel, &rules, 0.06))]);
    let session = MarkSession::builder(spec).key_column("k").target_column("b").bind(&rel).unwrap();
    session.embed_guarded(&mut rel, &wm, &mut guard).unwrap();

    // Rules hold on the marked copy.
    let tx_after = Transactions::from_relation(&rel, &["a", "b"]).unwrap();
    let drift = rules.drift_against(&tx_after);
    assert!(
        drift.max_confidence_drop <= 0.06 + 1e-9,
        "drop {} exceeds guard",
        drift.max_confidence_drop
    );

    // Mark survives shuffle + 40% loss.
    let suspect = Attack::HorizontalLoss { keep: 0.6, seed: 5 }
        .apply(&Attack::Shuffle { seed: 5 }.apply(&rel).unwrap())
        .unwrap();
    assert!(session.detect(&suspect, &wm).unwrap().is_significant(1e-2));
}
