//! The paper's quantitative claims, pinned as tests (scaled-down pass
//! counts; the full sweeps live in the `catmark-bench` binaries).

use catmark_analysis::bounds::{false_positive_exact_match, residual_alteration};
use catmark_analysis::vulnerability::attack_success_clt;
use catmark_bench::figures::{fig4, fig7};
use catmark_bench::ExperimentConfig;

fn quick() -> ExperimentConfig {
    ExperimentConfig { tuples: 6_000, passes: 5, ..Default::default() }
}

/// Abstract / §5: "tolerating up to 80% data loss with a watermark
/// alteration of only 25%". We accept the paper's ~25% with slack for
/// key-averaging noise.
#[test]
fn headline_80_percent_loss_tolerance() {
    let rows = fig7(&quick(), &[80], 65);
    let measured = rows[0].alteration_pct;
    assert!(measured <= 35.0, "80% loss should cost ≤ ~25-35% alteration, measured {measured:.1}%");
    assert!(measured > 0.0, "80% loss cannot be free");
}

/// Figure 7's shape: monotone, graceful.
#[test]
fn data_loss_degradation_is_graceful() {
    let rows = fig7(&quick(), &[20, 50, 80], 65);
    assert!(rows[0].alteration_pct <= rows[1].alteration_pct + 5.0);
    assert!(rows[1].alteration_pct <= rows[2].alteration_pct + 5.0);
    // 20% loss is cheap.
    assert!(rows[0].alteration_pct < 15.0, "{rows:?}");
}

/// Figure 4's headline: graceful degradation under alteration attacks,
/// bandwidth helps.
#[test]
fn alteration_degradation_is_graceful_and_bandwidth_helps() {
    let rows = fig4(&quick(), &[20, 80]);
    // Both series degrade with attack size.
    assert!(rows[1].y1 >= rows[0].y1, "{rows:?}");
    // At the light end, e=35 (twice the bandwidth) is at least as
    // resilient as e=65.
    assert!(rows[0].y2 <= rows[0].y1 + 2.5, "{rows:?}");
    // Even the 80% attack leaves the majority of bits intact on
    // average (the paper measures ≤ ~40%).
    assert!(rows[1].y1 <= 50.0, "{rows:?}");
}

/// §4.4: the false-positive examples.
#[test]
fn false_positive_examples() {
    // (1/2)^|wm| for a 10-bit mark.
    assert!((false_positive_exact_match(10) - 2f64.powi(-10)).abs() < 1e-15);
    // "For example, in the case of a data set with N = 6000 tuples and
    // with e = 60, this probability is approximately 7.8 · 10⁻³¹."
    let p = false_positive_exact_match(100);
    assert!(p < 1e-30 && p > 1e-31, "p={p:e}");
}

/// §4.4: "we get P(15, 1200) ≈ 31.6%."
#[test]
fn attack_success_example() {
    let p = attack_success_clt(15, 1200, 60, 0.7);
    assert!((p - 0.316).abs() < 0.02, "P(15,1200)={p}");
}

/// §4.4: "the final watermark is going to incur only an average
/// fraction of … 1.0%."
#[test]
fn residual_alteration_example() {
    let v = residual_alteration(15, 100, 0.05, 10, 100);
    assert!((v - 0.01).abs() < 1e-12, "residual={v}");
}

/// §4.4's qualitative claim behind Figure 5: "as e increases
/// (decreasing number of encoding alterations) the vulnerability to
/// random alteration attacks increases accordingly."
#[test]
fn vulnerability_grows_with_e_in_theory() {
    use catmark_analysis::surface::expected_mark_alteration;
    // redundancy = (N/e)/|wm| falls as e grows.
    let damage_at = |e: u64| {
        let redundancy = (6_000 / e / 10).max(1);
        expected_mark_alteration(0.55, 0.5, redundancy)
    };
    assert!(damage_at(20) < damage_at(60));
    assert!(damage_at(60) < damage_at(180));
}

/// Every detection claim above is argued from in-process numbers. In
/// court the paper's scenario is different: the verdict travels as a
/// serialized evidence bundle and is re-judged by a party holding
/// neither the relation nor the keys. Replay the two headline
/// detections — the §4.4 false-positive example and the §5 data-loss
/// tolerance — through their `CMKEVD1` bundles and require the
/// independent verifier to reach the same numbers.
#[test]
fn detection_claims_replay_through_evidence_bundles() {
    use catmark::attacks::horizontal::subset_selection;
    use catmark::core::{verify_evidence, MarkSession, Watermark, WatermarkSpec};
    use catmark::datagen::{ItemScanConfig, SalesGenerator};

    // "a data set with N = 6000 tuples and with e = 60": the paper's
    // own false-positive setting, with a 10-bit mark.
    let tuples = 6_000;
    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let mut rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("paper-claims-replay")
        .e(60)
        .wm_len(10)
        .expected_tuples(tuples)
        .build()
        .unwrap();
    let wm = Watermark::from_u64(0b10_0111_0101, 10);
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    session.embed(&mut rel, &wm).unwrap();

    // Clean detection: full match, and the bundle's recorded odds are
    // exactly the paper's (1/2)^|wm| exact-match probability.
    let certified = session.detect_certified(&rel, &wm).unwrap();
    let summary = verify_evidence(&certified.bundle).unwrap();
    let claim = summary.claim.expect("detection evidence carries a claim");
    assert_eq!(claim.matched_bits, certified.outcome.detection.matched_bits);
    assert_eq!(claim.matched_bits, 10, "clean detection must match every bit");
    let paper_fpp = false_positive_exact_match(10);
    assert!(
        (claim.false_positive_probability - paper_fpp).abs() < 1e-15,
        "bundle odds {} vs paper formula {paper_fpp}",
        claim.false_positive_probability
    );
    assert!(claim.is_significant(1e-2));

    // §5 headline: 80% data loss. At the bandwidth-heavy end (e = 15,
    // ~40 copies per mark bit) the surviving 20% must still carry a
    // court-significant mark, and the replayed bundle must agree with
    // the in-process verdict bit for bit.
    let mut rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("paper-claims-replay")
        .e(15)
        .wm_len(10)
        .expected_tuples(tuples)
        .build()
        .unwrap();
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    session.embed(&mut rel, &wm).unwrap();
    let survivors = subset_selection(&rel, 0.20, 7);
    let session = MarkSession::builder(session.spec().clone())
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&survivors)
        .unwrap();
    let certified = session.detect_certified(&survivors, &wm).unwrap();
    let replayed = verify_evidence(&certified.bundle).unwrap();
    let claim = replayed.claim.expect("detection evidence carries a claim");
    assert_eq!(claim.matched_bits, certified.outcome.detection.matched_bits);
    assert_eq!(claim.total_bits, 10);
    assert!(
        claim.matched_bits >= 8,
        "80% loss should alter ≤ ~25% of the mark, matched {}/10",
        claim.matched_bits
    );
    assert!(claim.is_significant(0.1), "the surviving mark must stay court-significant");
    assert_eq!(replayed.fit_tuples, certified.outcome.decode.fit_tuples as u64);
}
