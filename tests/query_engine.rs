//! Property tests for the column-native query engine: the compiled
//! predicate/selection path must be observationally identical to the
//! interpreted row-tuple path, and the code-space quality-guard fast
//! path must admit and veto exactly like the value-space path.

use catmark::core::quality::{
    AllowedReplacements, Alteration, AlterationBudget, CodedAlteration, FrequencyDriftLimit,
    ImmutableRows, QualityConstraint, QualityGuard,
};
use catmark::core::query_preserve::{CountQuery, CountQueryPreservation, Tolerance, ValueSet};
use catmark::prelude::*;
use catmark::relation::join;
use catmark::relation::ops;
use catmark::relation::{CompiledPredicate, Predicate};
use proptest::prelude::*;

/// Deterministic xorshift closure for structure generation.
fn rng_from(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

const TEXT_POOL: &[&str] = &["red", "green", "blue", "cyan", "violet"];

/// A relation with an integer key, an integer categorical and a text
/// categorical, driven entirely by the seed.
fn relation_for(seed: u64, tuples: usize) -> Relation {
    let schema = Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("a", AttrType::Integer)
        .categorical_attr("c", AttrType::Text)
        .build()
        .unwrap();
    let mut next = rng_from(seed);
    let mut rel = Relation::with_capacity(schema, tuples);
    for i in 0..tuples as i64 {
        let a = (next() % 12) as i64 - 3;
        let c = TEXT_POOL[(next() % 3) as usize]; // only the first 3 appear in rows
        rel.push(vec![Value::Int(i), Value::Int(a), Value::Text(c.into())]).unwrap();
    }
    rel
}

/// A random literal: integers straddling the column range, text both
/// interned and foreign.
fn literal_for(next: &mut impl FnMut() -> u64) -> Value {
    if next().is_multiple_of(2) {
        Value::Int((next() % 16) as i64 - 5)
    } else {
        Value::Text(TEXT_POOL[(next() % TEXT_POOL.len() as u64) as usize].into())
    }
}

/// A random predicate tree of bounded depth over attributes `k`, `a`,
/// `c` — every leaf kind (all six comparisons, IN-lists with mixed
/// types, True) and every connective.
fn predicate_for(next: &mut impl FnMut() -> u64, depth: usize) -> Predicate {
    let attr = ["k", "a", "c"][(next() % 3) as usize];
    if depth > 0 && next().is_multiple_of(3) {
        let l = predicate_for(next, depth - 1);
        match next() % 3 {
            0 => l.and(predicate_for(next, depth - 1)),
            1 => l.or(predicate_for(next, depth - 1)),
            _ => l.negate(),
        }
    } else {
        match next() % 8 {
            0 => Predicate::Eq(attr.into(), literal_for(next)),
            1 => Predicate::Ne(attr.into(), literal_for(next)),
            2 => Predicate::Lt(attr.into(), literal_for(next)),
            3 => Predicate::Le(attr.into(), literal_for(next)),
            4 => Predicate::Gt(attr.into(), literal_for(next)),
            5 => Predicate::Ge(attr.into(), literal_for(next)),
            6 => {
                let n = next() % 6;
                Predicate::is_in(attr, (0..n).map(|_| literal_for(next)))
            }
            _ => Predicate::True,
        }
    }
}

/// The interpreted row-tuple reference: per-row `Predicate::eval`.
fn interpreted_rows(rel: &Relation, pred: &Predicate) -> Vec<u32> {
    (0..rel.len())
        .filter(|&row| pred.eval(rel.schema(), &rel.tuple(row).unwrap()).unwrap())
        .map(|row| row as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled evaluation selects exactly the rows the interpreted
    /// predicate selects, on random relations and predicate trees.
    #[test]
    fn compiled_predicate_matches_interpreter(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let rel = relation_for(next(), 200);
        for _ in 0..8 {
            let pred = predicate_for(&mut next, 3);
            let compiled = CompiledPredicate::compile(&pred, &rel).unwrap();
            prop_assert_eq!(
                compiled.select(&rel).unwrap(),
                interpreted_rows(&rel, &pred),
                "predicate {:?}",
                pred
            );
        }
    }

    /// `ops::select` output equals the gather of the interpreted row
    /// set — same rows, same order, logically equal columns.
    #[test]
    fn select_output_is_row_identical(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let rel = relation_for(next(), 150);
        let pred = predicate_for(&mut next, 2);
        let selected = ops::select(&rel, &pred).unwrap();
        let reference: Vec<usize> =
            interpreted_rows(&rel, &pred).iter().map(|&r| r as usize).collect();
        let expected = rel.gather(&reference);
        prop_assert_eq!(selected.len(), expected.len());
        prop_assert!(selected.iter().zip(expected.iter()).all(|(x, y)| x == y));
    }

    /// The code-space hash join produces exactly the rows (and row
    /// order) of a naive nested-loop tuple join.
    #[test]
    fn hash_join_matches_nested_loop(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let left = relation_for(next(), 80);
        // Right side: its own schema, text key joined on text attr.
        let schema = Schema::builder()
            .key_attr("color", AttrType::Text)
            .categorical_attr("w", AttrType::Integer)
            .build()
            .unwrap();
        let mut right = Relation::new(schema);
        for (i, color) in TEXT_POOL.iter().enumerate() {
            if !next().is_multiple_of(4) {
                right
                    .push_unchecked_key(vec![Value::Text((*color).into()), Value::Int(i as i64)])
                    .unwrap();
            }
        }
        // Duplicate right row: one-to-many fan-out.
        if !right.is_empty() {
            let dup = right.tuple(0).unwrap().values().to_vec();
            right.push_unchecked_key(dup).unwrap();
        }
        let joined = join::hash_join(&left, &right, "c", "color").unwrap();
        // Nested-loop reference in the same left-major, right-ascending
        // order the build/probe join emits.
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for lt in left.iter() {
            for rt in right.iter() {
                if lt.get(2) == rt.get(0) {
                    let mut row = lt.values().to_vec();
                    row.extend_from_slice(rt.values());
                    expected.push(row);
                }
            }
        }
        prop_assert_eq!(joined.len(), expected.len());
        for (got, want) in joined.iter().zip(&expected) {
            prop_assert_eq!(got.values(), &want[..]);
        }
    }

    /// Code-space `distinct` keeps exactly the first occurrence of
    /// every distinct tuple, in row order.
    #[test]
    fn distinct_matches_value_semantics(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        // Low-cardinality relation with duplicate rows (duplicate keys
        // included via push_unchecked_key).
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("c", AttrType::Text)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for _ in 0..120 {
            let k = (next() % 10) as i64;
            let c = TEXT_POOL[(next() % 3) as usize];
            rel.push_unchecked_key(vec![Value::Int(k), Value::Text(c.into())]).unwrap();
        }
        let got = join::distinct(&rel);
        let mut seen = std::collections::HashSet::new();
        let expected: Vec<usize> = (0..rel.len())
            .filter(|&row| seen.insert(rel.tuple(row).unwrap().values().to_vec()))
            .collect();
        let want = rel.gather(&expected);
        prop_assert_eq!(got.len(), want.len());
        prop_assert!(got.iter().zip(want.iter()).all(|(x, y)| x == y));
    }

    /// The guard's coded fast path and the value path make identical
    /// admit/veto decisions and leave identical rollback logs, over a
    /// full constraint stack (budget, immutable rows, allow-list,
    /// frequency drift, count-query preservation).
    #[test]
    fn coded_guard_decides_like_value_guard(seed in any::<u64>()) {
        let mut next = rng_from(seed);
        let rel = relation_for(next(), 300);
        let domain = CategoricalDomain::new((-3..9).map(Value::Int).collect()).unwrap();
        let attr = 1; // the integer categorical "a"
        let build_stack = || -> Vec<Box<dyn QualityConstraint>> {
            vec![
                Box::new(AlterationBudget::new(40)),
                Box::new(ImmutableRows::new([2, 3, 5, 8, 13])),
                Box::new(AllowedReplacements::new((-3..6).map(Value::Int))),
                Box::new(FrequencyDriftLimit::new(&rel, attr, &domain, 0.15).unwrap()),
                Box::new(CountQueryPreservation::from_relation(
                    &rel,
                    vec![
                        CountQuery::new(
                            "low",
                            attr,
                            ValueSet::Range(Value::Int(-3), Value::Int(1)),
                            Tolerance::Absolute(4),
                        ),
                        CountQuery::new(
                            "pair",
                            attr,
                            ValueSet::In([Value::Int(4), Value::Int(7)].into_iter().collect()),
                            Tolerance::Relative(0.05),
                        ),
                    ],
                )),
            ]
        };
        let mut value_guard = QualityGuard::new(build_stack());
        let mut coded_guard = QualityGuard::new(build_stack());
        coded_guard.bind_codes(attr, &domain);
        prop_assert!(coded_guard.fully_coded());
        for _ in 0..120 {
            let row = (next() % 300) as usize;
            let old = rel.value(row, attr).unwrap();
            let old_code = domain.index_of(&old).unwrap() as u32;
            let new_code = (next() % domain.len() as u64) as u32;
            let value_admitted = value_guard.propose(Alteration {
                row,
                attr,
                old: old.clone(),
                new: domain.value_at(new_code as usize).clone(),
            });
            let coded_admitted = coded_guard.propose_coded(CodedAlteration {
                row,
                attr,
                old: old_code,
                new: new_code,
            });
            prop_assert_eq!(value_admitted, coded_admitted, "row {} {:?}", row, old);
        }
        prop_assert_eq!(value_guard.vetoes(), coded_guard.vetoes());
        prop_assert_eq!(value_guard.log().entries(), coded_guard.log().entries());
    }
}

/// One deterministic end-to-end check: a guarded session embed with a
/// mixed constraint stack (some coded-capable, mining constraints
/// bridging through decoded values) equals the same embed driven
/// through value-space-only constraints.
#[test]
fn guarded_embed_is_representation_independent() {
    use catmark::mining::apriori::{mine, AprioriConfig};
    use catmark::mining::constraints::AssociationRulePreserved;
    use catmark::mining::item::Transactions;
    use catmark::mining::rules::RuleSet;

    let gen = SalesGenerator::new(ItemScanConfig { tuples: 4_000, ..Default::default() });
    let rel = gen.generate();
    let domain = gen.item_domain();
    let spec = WatermarkSpec::builder(domain.clone())
        .master_key("query-engine-tests")
        .e(25)
        .wm_len(10)
        .expected_tuples(rel.len())
        .build()
        .unwrap();
    let wm = Watermark::from_u64(0b01_1011_0100, 10);
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();

    let tx = Transactions::from_relation(&rel, &["item_nbr"]).unwrap();
    let freq = mine(&tx, &AprioriConfig { min_support: 0.01, max_len: 1 });
    let rules = RuleSet::derive(&freq, 0.0);
    let stack = |rel: &Relation| -> Vec<Box<dyn QualityConstraint>> {
        vec![
            Box::new(AlterationBudget::new(100)),
            Box::new(AssociationRulePreserved::new(rel, &rules, 0.5)),
            Box::new(CountQueryPreservation::from_relation(
                rel,
                vec![CountQuery::new(
                    "top",
                    1,
                    ValueSet::Range(Value::Int(10_000), Value::Int(10_050)),
                    Tolerance::Absolute(3),
                )],
            )),
        ]
    };

    let mut a = rel.clone();
    let mut guard_a = QualityGuard::new(stack(&rel));
    let report_a = session.embed_guarded(&mut a, &wm, &mut guard_a).unwrap();

    // The same stack with every constraint wrapped to *decline* code
    // binding: the guard must decode each coded proposal and drive
    // the wrapped constraints' value-space methods, so this run
    // exercises `admits`/`commit` where run A exercised
    // `admits_coded`/`commit_coded` — a divergence between a
    // constraint's two representations shows up as a report or
    // content mismatch.
    struct ValueOnly(Box<dyn QualityConstraint>);
    impl QualityConstraint for ValueOnly {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admits(&self, c: &Alteration) -> bool {
            self.0.admits(c)
        }
        fn commit(&mut self, c: &Alteration) {
            self.0.commit(c)
        }
        fn rollback(&mut self, c: &Alteration) {
            self.0.rollback(c)
        }
        // bind_codes keeps the default `false`: never coded.
    }
    let mut b = rel.clone();
    let constraints: Vec<Box<dyn QualityConstraint>> = stack(&rel)
        .into_iter()
        .map(|c| Box::new(ValueOnly(c)) as Box<dyn QualityConstraint>)
        .collect();
    let mut guard_b = QualityGuard::new(constraints);
    let report_b = session.embed_guarded(&mut b, &wm, &mut guard_b).unwrap();

    assert_eq!(report_a.altered, report_b.altered);
    assert_eq!(report_a.vetoed, report_b.vetoed);
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    assert_eq!(guard_a.log().entries(), guard_b.log().entries());
    assert!(report_a.vetoed > 0, "the stack should veto something to make this meaningful");
}
