//! Columnar storage-engine tests: CSV round trips through the
//! dictionary-encoded columns (including duplicate-key data), and
//! properties pinning that the storage layout is invisible — logical
//! content, key indexing, and keyed hashing never depend on how the
//! dictionaries happen to be laid out.

use std::io::BufReader;

use catmark::core::{MarkSession, Watermark, WatermarkSpec};
use catmark::prelude::*;
use catmark::relation::column::{Column, Dictionary};
use catmark::relation::csv::{read_csv, write_csv};
use proptest::prelude::*;

fn text_schema() -> Schema {
    Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("city", AttrType::Text)
        .categorical_attr("qty", AttrType::Integer)
        .build()
        .unwrap()
}

#[test]
fn csv_round_trips_columnar_storage_with_duplicate_keys() {
    let mut rel = Relation::new(text_schema());
    // Duplicate keys via push_unchecked_key — attacked data shape.
    for (k, city, qty) in [
        (1, "boston", 10),
        (2, "austin", 20),
        (1, "chicago", 30),
        (3, "boston", 40),
        (2, "austin", 50),
    ] {
        rel.push_unchecked_key(vec![Value::Int(k), Value::Text(city.into()), Value::Int(qty)])
            .unwrap();
    }
    assert_eq!(rel.len(), 5);
    assert_eq!(rel.distinct_keys(), 3);

    let mut csv = Vec::new();
    write_csv(&rel, &mut csv).unwrap();
    let parsed = read_csv(text_schema(), &mut BufReader::new(csv.as_slice())).unwrap();

    // Row-for-row logical equality, duplicate rows included.
    assert_eq!(parsed.len(), rel.len());
    for (a, b) in rel.iter().zip(parsed.iter()) {
        assert_eq!(a, b);
    }
    // First-occurrence key indexing survives the round trip.
    assert_eq!(parsed.distinct_keys(), 3);
    assert_eq!(parsed.find_by_key(&Value::Int(1)), Some(0));
    assert_eq!(parsed.find_by_key(&Value::Int(2)), Some(1));
    // The columnar views agree too (text compared logically).
    for attr in 0..rel.schema().arity() {
        assert!(rel.column(attr) == parsed.column(attr), "column {attr} drifted");
    }
    // And a second serialization is byte-identical.
    let mut csv2 = Vec::new();
    write_csv(&parsed, &mut csv2).unwrap();
    assert_eq!(csv, csv2);
}

#[test]
fn dictionary_layout_is_invisible_to_hashing() {
    // Two relations with identical logical content but *different*
    // dictionary layouts: one built by row pushes (codes in
    // first-seen order), one from columns with a pre-seeded dictionary
    // in reverse order plus a stale entry no row references.
    let schema = Schema::builder()
        .key_attr("k", AttrType::Integer)
        .categorical_attr("city", AttrType::Text)
        .build()
        .unwrap();
    let rows = [(1, "chicago"), (2, "austin"), (3, "boston"), (4, "austin"), (5, "chicago")];
    let mut pushed = Relation::new(schema.clone());
    for (k, city) in rows {
        pushed.push(vec![Value::Int(k), Value::Text(city.into())]).unwrap();
    }
    let mut dict = Dictionary::new();
    let stale = dict.intern("never-used");
    for city in ["boston", "austin", "chicago"] {
        dict.intern(city);
    }
    let codes: Vec<u32> = rows.iter().map(|(_, c)| dict.code_of(c).unwrap()).collect();
    assert!(codes.iter().all(|&c| c != stale));
    let seeded = Relation::from_columns(
        schema,
        vec![Column::Int(rows.iter().map(|&(k, _)| k).collect()), Column::Text { codes, dict }],
    )
    .unwrap();

    // Logically equal despite different code assignments.
    assert!(pushed.column(1) == seeded.column(1));

    // And the watermarking pipeline cannot tell them apart: embedding
    // under the same spec produces identical marked *content*.
    let domain = CategoricalDomain::new(vec![
        Value::Text("austin".into()),
        Value::Text("boston".into()),
        Value::Text("chicago".into()),
    ])
    .unwrap();
    let spec = WatermarkSpec::builder(domain)
        .master_key("layout-invariance")
        .e(1)
        .wm_len(4)
        .wm_data_len(8)
        .build()
        .unwrap();
    let wm = Watermark::from_u64(0b1010, 4);
    let bind = |rel: &Relation| {
        MarkSession::builder(spec.clone()).key_column("k").target_column("city").bind(rel).unwrap()
    };
    let mut a = pushed.clone();
    let mut b = seeded.clone();
    let ra = bind(&a).embed(&mut a, &wm).unwrap();
    let rb = bind(&b).embed(&mut b, &wm).unwrap();
    assert_eq!(ra, rb);
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    assert_eq!(bind(&a).decode(&a).unwrap(), bind(&b).decode(&b).unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSV → columnar → CSV is the identity for arbitrary content,
    /// including duplicated keys and text needing quoting.
    #[test]
    fn csv_columnar_round_trip(
        rows in prop::collection::vec((0i64..20, "[a-z ,\"]{0,12}", any::<i64>()), 1..40),
    ) {
        let mut rel = Relation::new(text_schema());
        for (k, city, qty) in &rows {
            rel.push_unchecked_key(vec![
                Value::Int(*k),
                Value::Text(city.clone()),
                Value::Int(*qty),
            ])
            .unwrap();
        }
        let mut csv = Vec::new();
        write_csv(&rel, &mut csv).unwrap();
        let parsed = read_csv(text_schema(), &mut BufReader::new(csv.as_slice())).unwrap();
        prop_assert_eq!(parsed.len(), rel.len());
        for (a, b) in rel.iter().zip(parsed.iter()) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(parsed.distinct_keys(), rel.distinct_keys());
        // First occurrence wins in both stores.
        for (k, _, _) in &rows {
            prop_assert_eq!(parsed.find_by_key(&Value::Int(*k)), rel.find_by_key(&Value::Int(*k)));
        }
    }

    /// Clones (which drop the lazy key index) and gathers are
    /// indistinguishable from the original through every read API.
    #[test]
    fn clone_and_gather_preserve_logical_content(
        rows in prop::collection::vec((0i64..50, 0i64..8), 1..60),
    ) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("a", AttrType::Integer)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for (k, a) in &rows {
            rel.push_unchecked_key(vec![Value::Int(*k), Value::Int(*a)]).unwrap();
        }
        // Force the original's index, then clone (clone starts lazy).
        let _ = rel.distinct_keys();
        let cloned = rel.clone();
        prop_assert_eq!(cloned.len(), rel.len());
        prop_assert_eq!(cloned.distinct_keys(), rel.distinct_keys());
        for (k, _) in &rows {
            prop_assert_eq!(cloned.find_by_key(&Value::Int(*k)), rel.find_by_key(&Value::Int(*k)));
        }
        prop_assert!(cloned.iter().zip(rel.iter()).all(|(a, b)| a == b));
        // An identity gather is also the identity.
        let identity: Vec<usize> = (0..rel.len()).collect();
        let gathered = rel.gather(&identity);
        prop_assert!(gathered.iter().zip(rel.iter()).all(|(a, b)| a == b));
        prop_assert_eq!(gathered.distinct_keys(), rel.distinct_keys());
    }
}
