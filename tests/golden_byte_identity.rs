//! Byte-identity pins: embed / decode / detect outputs against golden
//! values captured from the pre-columnar (row-store) implementation.
//!
//! The columnar storage engine must be an *invisible* substrate swap:
//! with a fixed master key and a fixed datagen seed, the marked
//! relation's bytes, the decoded watermark bits, and the detection
//! statistics are pinned here bit for bit. Any drift in the canonical
//! value encoding, the keyed-hash inputs, the fit-tuple selection, or
//! the vote aggregation shows up as a golden mismatch.

use catmark::core::{detect, MarkSession, Watermark, WatermarkSpec};
use catmark::datagen::{ItemScanConfig, SalesGenerator};
use catmark::relation::Relation;

/// FNV-1a over every value's canonical bytes in row-major order — a
/// storage-independent content fingerprint of a relation.
fn content_fnv(rel: &Relation) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
    };
    for tuple in rel.iter() {
        for value in tuple.values() {
            write(&value.canonical_bytes());
        }
    }
    h
}

fn wm_bits(wm: &Watermark) -> String {
    (0..wm.len()).map(|i| if wm.bit(i) { '1' } else { '0' }).collect()
}

struct GoldenRun {
    marked_fnv: u64,
    decoded_bits: String,
    fit_tuples: usize,
    altered: usize,
    matched_bits: usize,
}

fn run(tuples: usize, e: u64, wm_pattern: u64, with_city: bool, target: &str) -> GoldenRun {
    let gen = SalesGenerator::new(ItemScanConfig { tuples, with_city, ..Default::default() });
    let mut rel = gen.generate();
    let domain = if target == "store_city" { gen.city_domain() } else { gen.item_domain() };
    let spec = WatermarkSpec::builder(domain)
        .master_key("golden-byte-identity")
        .e(e)
        .wm_len(10)
        .expected_tuples(tuples)
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let wm = Watermark::from_u64(wm_pattern, 10);
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column(target)
        .bind(&rel)
        .unwrap();
    let report = session.embed(&mut rel, &wm).unwrap();
    let decode = session.decode(&rel).unwrap();
    let detection = detect(&decode.watermark, &wm);
    GoldenRun {
        marked_fnv: content_fnv(&rel),
        decoded_bits: wm_bits(&decode.watermark),
        fit_tuples: report.fit_tuples,
        altered: report.altered,
        matched_bits: detection.matched_bits,
    }
}

/// `(tuples, e, wm, with_city, target, marked_fnv, decoded, fit, altered)`
/// — captured from the pre-columnar row-store implementation.
#[allow(clippy::type_complexity)]
const GOLDENS: &[(usize, u64, u64, bool, &str, u64, &str, usize, usize)] = &[
    (3_000, 15, 0b10_1100_1110, false, "item_nbr", 0x1b05_60c6_c681_fbfd, "1011001110", 200, 200),
    (3_000, 30, 0b01_0011_0001, false, "item_nbr", 0x8457_665b_c259_d39e, "0100110001", 95, 95),
    (6_000, 10, 0b11_1111_1111, false, "item_nbr", 0xc185_cb37_53bd_eaf1, "1111111111", 598, 598),
    (6_000, 60, 0b00_0000_0001, false, "item_nbr", 0x55e4_af5c_3549_37d0, "0000000001", 112, 112),
    (2_000, 10, 0b10_1010_1010, true, "store_city", 0xe8e1_6542_daa2_e43f, "1010101010", 204, 200),
    (2_000, 20, 0b01_1001_0110, true, "item_nbr", 0xc2b8_aec1_b073_f0bb, "0110010110", 110, 110),
];

#[test]
fn embed_decode_detect_match_pre_refactor_goldens() {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for &(tuples, e, wm, with_city, target, ..) in GOLDENS {
            let g = run(tuples, e, wm, with_city, target);
            println!(
                "    ({tuples}, {e}, {wm:#012b}, {with_city}, {target:?}, {:#018x}, {:?}, {}, {}),",
                g.marked_fnv, g.decoded_bits, g.fit_tuples, g.altered
            );
        }
        return;
    }
    for &(tuples, e, wm, with_city, target, marked_fnv, decoded, fit, altered) in GOLDENS {
        let g = run(tuples, e, wm, with_city, target);
        let label = format!("tuples={tuples} e={e} wm={wm:#b} target={target}");
        assert_eq!(g.marked_fnv, marked_fnv, "content drift: {label}");
        assert_eq!(g.decoded_bits, decoded, "decode drift: {label}");
        assert_eq!(g.fit_tuples, fit, "fitness drift: {label}");
        assert_eq!(g.altered, altered, "alteration drift: {label}");
        // Every golden config decodes its own mark completely.
        assert_eq!(g.matched_bits, 10, "detection drift: {label}");
    }
}

/// Out-of-core golden: every pinned configuration re-run through the
/// segmented pipeline — the relation split into segments behind a
/// spill store with a resident budget of **1/4 of its columnar
/// footprint** — must reproduce the exact golden bytes the in-memory
/// path is pinned to, while the pager honors the budget.
#[test]
fn out_of_core_embed_decode_matches_the_same_goldens() {
    use catmark::relation::SegmentedRelation;
    for &(tuples, e, wm_pattern, with_city, target, marked_fnv, decoded, fit, altered) in GOLDENS {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, with_city, ..Default::default() });
        let rel = gen.generate();
        let domain = if target == "store_city" { gen.city_domain() } else { gen.item_domain() };
        let spec = WatermarkSpec::builder(domain)
            .master_key("golden-byte-identity")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(wm_pattern, 10);
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column(target)
            .bind(&rel)
            .unwrap();
        let budget = rel.resident_bytes() / 4;
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(tuples.div_ceil(16))
            .budget_bytes(budget)
            .from_relation(&rel)
            .unwrap();
        let report = session.embed_segmented(&mut seg, &wm).unwrap();
        let decode = session.decode_segmented(&mut seg).unwrap();
        let label = format!("out-of-core tuples={tuples} e={e} wm={wm_pattern:#b} target={target}");
        assert_eq!(content_fnv(&seg.to_relation().unwrap()), marked_fnv, "content drift: {label}");
        assert_eq!(wm_bits(&decode.watermark), decoded, "decode drift: {label}");
        assert_eq!(report.fit_tuples, fit, "fitness drift: {label}");
        assert_eq!(report.altered, altered, "alteration drift: {label}");
        assert!(
            seg.peak_pageable_bytes() <= budget,
            "budget violated: peak {} > {budget} ({label})",
            seg.peak_pageable_bytes()
        );
        assert!(seg.spilled_bytes() > 0, "nothing spilled under a quarter budget ({label})");
    }
}

/// Incremental golden: for every pinned configuration, mark the
/// relation inside the content-addressed versioned store, churn a few
/// segments, and re-mark with `embed_incremental` (clean segments
/// skipped, dirty segments re-embedded). The result must be
/// byte-identical to the monolithic in-memory `embed` of the same
/// churned rows — the pinned paths and the incremental path may never
/// diverge, and the cached-vote decode must report the same bits as
/// the monolithic decode.
#[test]
fn incremental_remark_matches_the_monolithic_path_on_goldens() {
    use catmark::core::VoteCache;
    use catmark::relation::{ContentStore, SegmentedRelation, VersionLog};
    for &(tuples, e, wm_pattern, with_city, target, ..) in GOLDENS {
        let gen = SalesGenerator::new(ItemScanConfig { tuples, with_city, ..Default::default() });
        let rel = gen.generate();
        let domain = if target == "store_city" { gen.city_domain() } else { gen.item_domain() };
        let values = domain.values().to_vec();
        let spec = WatermarkSpec::builder(domain)
            .master_key("golden-byte-identity")
            .e(e)
            .wm_len(10)
            .expected_tuples(tuples)
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(wm_pattern, 10);
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column(target)
            .bind(&rel)
            .unwrap();
        let attr = rel.schema().index_of(target).unwrap();
        let segment_rows = tuples.div_ceil(16);
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(segment_rows)
            .store(Box::new(store.clone()))
            .from_relation(&rel)
            .unwrap();
        session.embed_segmented_sequential(&mut seg, &wm).unwrap();
        let marked = log.commit(&mut seg, &store).unwrap();

        // Churn two segments, mirrored row-for-row onto a monolithic
        // twin of the marked bytes.
        let mut mono = seg.to_relation().unwrap();
        for (victim, step) in [(2usize, 3usize), (9, 5)] {
            for k in 0..20 {
                let row = k * step;
                let value = values[(victim + k) % values.len()].clone();
                seg.with_segment_mut(victim, |r| r.update_value(row, attr, value.clone()))
                    .unwrap()
                    .unwrap();
                mono.update_value(victim * segment_rows + row, attr, value).unwrap();
            }
        }
        let current = log.commit(&mut seg, &store).unwrap();

        let marked_m = log.get(marked).unwrap().clone();
        let current_m = log.get(current).unwrap().clone();
        let inc = session.embed_incremental(&mut seg, &wm, &marked_m, &current_m).unwrap();
        let label = format!("incremental tuples={tuples} e={e} wm={wm_pattern:#b} target={target}");
        assert!(!inc.full_fallback, "fell back: {label}");
        assert_eq!(inc.dirty_segments, 2, "dirty drift: {label}");
        assert!(inc.clean_segments >= 14, "clean drift: {label}");

        // The monolithic re-embed of the same churned relation is the
        // reference for byte identity.
        session.embed(&mut mono, &wm).unwrap();
        assert_eq!(
            content_fnv(&seg.to_relation().unwrap()),
            content_fnv(&mono),
            "incremental re-mark diverged from the monolithic embed: {label}"
        );

        let remarked = log.commit(&mut seg, &store).unwrap();
        let remarked_m = log.get(remarked).unwrap().clone();
        let mut votes = VoteCache::new();
        let inc_decode = session.decode_incremental(&mut seg, &remarked_m, &mut votes).unwrap();
        let mono_decode = session.decode(&mono).unwrap();
        assert_eq!(
            wm_bits(&inc_decode.report.watermark),
            wm_bits(&mono_decode.watermark),
            "cached-vote decode drift: {label}"
        );
    }
}

/// The unmarked generator output itself is pinned: datagen must stay
/// seed-deterministic across storage layouts or every golden above
/// would drift for the wrong reason.
#[test]
fn datagen_content_is_pinned() {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        let plain = SalesGenerator::new(ItemScanConfig { tuples: 3_000, ..Default::default() });
        let city = SalesGenerator::new(ItemScanConfig {
            tuples: 2_000,
            with_city: true,
            ..Default::default()
        });
        println!("plain: {:#018x}", content_fnv(&plain.generate()));
        println!("city:  {:#018x}", content_fnv(&city.generate()));
        return;
    }
    let plain = SalesGenerator::new(ItemScanConfig { tuples: 3_000, ..Default::default() });
    assert_eq!(content_fnv(&plain.generate()), GOLDEN_DATAGEN_PLAIN);
    let city = SalesGenerator::new(ItemScanConfig {
        tuples: 2_000,
        with_city: true,
        ..Default::default()
    });
    assert_eq!(content_fnv(&city.generate()), GOLDEN_DATAGEN_CITY);
}

const GOLDEN_DATAGEN_PLAIN: u64 = 0x2211_08da_077a_8d0e;
const GOLDEN_DATAGEN_CITY: u64 = 0xce18_0b2b_394e_b3bd;

/// FNV-1a over a raw byte string — pins serialized artifacts (delta
/// blobs) the same way `content_fnv` pins relation content.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// `(buyer, blob_fnv, blob_len, patches, rebuilt_fnv)` — the
/// serialized `MarkDelta` wire bytes and the rebuilt copy's content,
/// captured when delta distribution landed. Blob drift means the wire
/// format changed (readers in the field break); rebuilt drift means
/// `apply_delta` no longer reproduces `mark_copy`.
const DELTA_GOLDENS: &[(&str, u64, usize, usize, u64)] = &[
    ("alice", 0x6793_fa9a_fe72_2e9b, 3089, 153, 0x0132_40ed_c3d6_74b4),
    ("bob", 0x1524_588c_612c_1075, 3009, 149, 0x13ca_4633_cf09_3482),
    ("carol", 0x7b29_4b29_2c09_d321, 3009, 149, 0xe52c_c9ad_43ba_881a),
];

#[test]
fn delta_blobs_and_rebuilt_copies_match_goldens() {
    use catmark::core::fingerprint::FingerprintRegistry;
    let tuples = 3_000;
    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("golden-byte-identity")
        .e(20)
        .wm_len(10)
        .expected_tuples(tuples)
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let mut registry = FingerprintRegistry::new(spec);
    let buyers: Vec<&str> = DELTA_GOLDENS.iter().map(|g| g.0).collect();
    let deltas = registry.mark_deltas(&rel, &buyers, "visit_nbr", "item_nbr").unwrap();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (buyer, (delta, _)) in buyers.iter().zip(&deltas) {
            let blob = delta.encode();
            let rebuilt = rel.apply_delta(delta).unwrap();
            println!(
                "    ({buyer:?}, {:#018x}, {}, {}, {:#018x}),",
                fnv64(&blob),
                blob.len(),
                delta.patch_count(),
                content_fnv(&rebuilt)
            );
        }
        return;
    }
    for (&(buyer, blob_fnv, blob_len, patches, rebuilt_fnv), (delta, _)) in
        DELTA_GOLDENS.iter().zip(&deltas)
    {
        let blob = delta.encode();
        assert_eq!(fnv64(&blob), blob_fnv, "wire-format drift: buyer {buyer}");
        assert_eq!(blob.len(), blob_len, "blob size drift: buyer {buyer}");
        assert_eq!(delta.patch_count(), patches, "patch-set drift: buyer {buyer}");
        let rebuilt = rel.apply_delta(delta).unwrap();
        assert_eq!(content_fnv(&rebuilt), rebuilt_fnv, "rebuilt-copy drift: buyer {buyer}");
        // The delta rebuild and the full-copy API stay in lockstep.
        let (copy, _) = registry.mark_copy(&rel, buyer, "visit_nbr", "item_nbr").unwrap();
        assert_eq!(content_fnv(&copy), rebuilt_fnv, "mark_copy drift: buyer {buyer}");
    }
}

struct GoldenGuardedRun {
    marked_fnv: u64,
    altered: usize,
    vetoed: usize,
    decoded_bits: String,
}

/// Guarded embed through the constraint language: budgets, frequency
/// drift, and the `preserve count` queries of
/// `core::query_preserve`. Pinned from the value-space (row-tuple)
/// constraint path so the code-space port must admit and veto the
/// exact same alterations.
fn run_guarded(tuples: usize, e: u64, wm_pattern: u64, program: &str) -> GoldenGuardedRun {
    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let mut rel = gen.generate();
    let domain = gen.item_domain();
    let spec = WatermarkSpec::builder(domain.clone())
        .master_key("golden-byte-identity")
        .e(e)
        .wm_len(10)
        .expected_tuples(tuples)
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let wm = Watermark::from_u64(wm_pattern, 10);
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    let mut guard = catmark::core::constraint_lang::compile(program, &rel, 1, &domain).unwrap();
    let report = session.embed_guarded(&mut rel, &wm, &mut guard).unwrap();
    let decode = session.decode(&rel).unwrap();
    GoldenGuardedRun {
        marked_fnv: content_fnv(&rel),
        altered: report.altered,
        vetoed: report.vetoed,
        decoded_bits: wm_bits(&decode.watermark),
    }
}

/// Constraint programs exercised by the guarded golden: every clause
/// kind the language compiles (budget, drift, immutable, allow,
/// preserve-count in/range forms).
const GUARDED_PROGRAMS: &[&str] = &[
    "budget 3%\n\
     drift <= 0.08\n\
     preserve count in (10005, 10017, 10042) tolerance 2\n\
     preserve count range 10100..10160 tolerance 1%\n",
    "budget 150\n\
     immutable 0..500\n\
     allow in (10003, 10010, 10011, 10024, 10101, 10102, 10500, 10501, 10502, 10777)\n\
     preserve count in (10003) tolerance 0\n",
];

/// `(tuples, e, wm, program_idx, marked_fnv, altered, vetoed, decoded)`
/// — captured from the value-space (pre-query-engine) guarded path.
#[allow(clippy::type_complexity)]
const GUARDED_GOLDENS: &[(usize, u64, u64, usize, u64, usize, usize, &str)] = &[
    (6_000, 20, 0b10_1100_1110, 0, 0x358b_9c26_5f49_9aad, 180, 144, "1011001110"),
    (6_000, 20, 0b10_1100_1110, 1, 0x434f_9275_9020_dd3b, 1, 323, "0100000000"),
    (4_000, 40, 0b01_0011_0001, 0, 0x1a36_bde1_b270_dce1, 94, 0, "0100110001"),
];

#[test]
fn guarded_embed_matches_pre_query_engine_goldens() {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for &(tuples, e, wm, prog, ..) in GUARDED_GOLDENS {
            let g = run_guarded(tuples, e, wm, GUARDED_PROGRAMS[prog]);
            println!(
                "    ({tuples}, {e}, {wm:#012b}, {prog}, {:#018x}, {}, {}, {:?}),",
                g.marked_fnv, g.altered, g.vetoed, g.decoded_bits
            );
        }
        return;
    }
    for &(tuples, e, wm, prog, marked_fnv, altered, vetoed, decoded) in GUARDED_GOLDENS {
        let g = run_guarded(tuples, e, wm, GUARDED_PROGRAMS[prog]);
        let label = format!("tuples={tuples} e={e} wm={wm:#b} program={prog}");
        assert_eq!(g.marked_fnv, marked_fnv, "guarded content drift: {label}");
        assert_eq!(g.altered, altered, "guarded alteration drift: {label}");
        assert_eq!(g.vetoed, vetoed, "guarded veto drift: {label}");
        assert_eq!(g.decoded_bits, decoded, "guarded decode drift: {label}");
    }
}

/// `(name, tuples, e, wm, bundle_fnv, bundle_len)` — certified
/// detection evidence pinned the same way the delta blobs are: the
/// `CMKEVD1` bundle is a wire format, so its exact bytes are golden.
/// The `tests/golden/<name>.evd` files hold those bytes verbatim; CI
/// feeds them to `catmark verify-evidence` as an external, keyless
/// auditor would. Both SHA dispatch backends must produce these exact
/// bytes — the `CATMARK_SHA_BACKEND=soft` CI pass re-runs this test.
const EVIDENCE_GOLDENS: &[(&str, usize, u64, u64, u64, usize)] = &[
    ("detect_e15", 3_000, 15, 0b10_1100_1110, 0xcf83_7b5a_1c11_84a7, 2018),
    ("detect_e30", 3_000, 30, 0b01_0011_0001, 0xf3fc_15be_3eac_257f, 1118),
    ("detect_e60", 6_000, 60, 0b00_0000_0001, 0x0c76_f166_25e4_0dcc, 1118),
];

/// The certified detection for one pinned configuration, plus the
/// fast-path verdict it must stay in lockstep with.
fn certified_run(
    tuples: usize,
    e: u64,
    wm_pattern: u64,
) -> (catmark::core::Certified<catmark::core::Verdict>, catmark::core::Verdict) {
    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let mut rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("golden-byte-identity")
        .e(e)
        .wm_len(10)
        .expected_tuples(tuples)
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let wm = Watermark::from_u64(wm_pattern, 10);
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    session.embed(&mut rel, &wm).unwrap();
    let fast = session.detect(&rel, &wm).unwrap();
    (session.detect_certified(&rel, &wm).unwrap(), fast)
}

/// Byte offset flipped to fabricate `corrupted.evd` — inside the
/// payload, past the framing, so the checksum is what catches it.
const CORRUPT_AT: usize = 100;

#[test]
fn certified_detection_bundles_match_goldens() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    if std::env::var("GOLDEN_PRINT").is_ok() {
        std::fs::create_dir_all(&dir).unwrap();
        for &(name, tuples, e, wm, ..) in EVIDENCE_GOLDENS {
            let (certified, _) = certified_run(tuples, e, wm);
            std::fs::write(dir.join(format!("{name}.evd")), &certified.bundle).unwrap();
            println!(
                "    ({name:?}, {tuples}, {e}, {wm:#012b}, {:#018x}, {}),",
                fnv64(&certified.bundle),
                certified.bundle.len()
            );
        }
        // The negative fixture: the first golden with one payload byte
        // flipped, which `catmark verify-evidence` must refuse.
        let (certified, _) =
            certified_run(EVIDENCE_GOLDENS[0].1, EVIDENCE_GOLDENS[0].2, EVIDENCE_GOLDENS[0].3);
        let mut corrupted = certified.bundle;
        corrupted[CORRUPT_AT] ^= 0x01;
        std::fs::write(dir.join("corrupted.evd"), &corrupted).unwrap();
        return;
    }
    for &(name, tuples, e, wm, bundle_fnv, bundle_len) in EVIDENCE_GOLDENS {
        let (certified, fast) = certified_run(tuples, e, wm);
        let label = format!("evidence {name}: tuples={tuples} e={e} wm={wm:#b}");
        assert_eq!(fnv64(&certified.bundle), bundle_fnv, "bundle drift: {label}");
        assert_eq!(certified.bundle.len(), bundle_len, "bundle size drift: {label}");
        // Certified and fast-path verdicts stay in lockstep.
        assert_eq!(certified.outcome, fast, "verdict drift: {label}");
        // The checked-in court copy is the exact regenerated bytes.
        let on_disk = std::fs::read(dir.join(format!("{name}.evd")))
            .unwrap_or_else(|e| panic!("{label}: missing tests/golden/{name}.evd ({e})"));
        assert_eq!(on_disk, certified.bundle, "stale checked-in bundle: {label}");
        // And it verifies keylessly, agreeing with the fast path.
        let summary = catmark::core::verify_evidence(&certified.bundle).unwrap();
        let claim = summary.claim.as_ref().expect("detect evidence carries a claim");
        assert_eq!(claim.matched_bits, fast.detection.matched_bits, "claim drift: {label}");
        assert_eq!(claim.total_bits, 10, "claim width drift: {label}");
    }
    // The corrupted twin must be refused, not reinterpreted.
    let corrupted = std::fs::read(dir.join("corrupted.evd")).unwrap();
    let err = catmark::core::verify_evidence(&corrupted).unwrap_err();
    assert!(
        matches!(err, catmark::core::CoreError::EvidenceInvalid { .. }),
        "corrupted.evd must be EvidenceInvalid, got {err}"
    );
}
