//! Adversarial tamper suite for `CMKEVD1` evidence bundles.
//!
//! The promise under test: a serialized evidence bundle either verifies
//! exactly as produced, or any mutation — a single flipped byte, a
//! truncation, a tally record spliced in from a different bundle (even
//! with a freshly recomputed checksum) — is rejected with the typed
//! `CoreError::EvidenceInvalid`. `verify_evidence` must never accept a
//! tampered bundle and must never panic on one.

use std::sync::OnceLock;

use catmark::core::evidence::verify_evidence;
use catmark::core::{CoreError, MarkSession, VoteCache, Watermark, WatermarkSpec};
use catmark::crypto::HashAlgorithm;
use catmark::datagen::{ItemScanConfig, SalesGenerator};
use catmark::relation::{ContentStore, Relation, SegmentedRelation, VersionLog};
use proptest::prelude::*;

const TUPLES: usize = 3_000;
const E: u64 = 10;
const WM_LEN: usize = 10;
const WM_DATA_LEN: usize = 120;
const SEGMENT_ROWS: usize = 500;
const SEGMENTS: usize = TUPLES / SEGMENT_ROWS;

/// `CMKEVD1` framing: magic (8) + payload SHA-256 (32) + length (8).
const HEADER: usize = 48;
/// Payload bytes before the relation identity: key commitment (32) +
/// algo (1) + e (8) + wm_len (4) + wm_data_len (4) + erasure (1) +
/// ecc (1).
const SPEC_BYTES: usize = 51;
/// Whole-relation identity: tag (1) + rows (8) + content hash (32).
const WHOLE_IDENTITY: usize = 41;
/// Versioned identity: tag (1) + version (8) + segment count (4) +
/// per-segment hash (32) + rows (8).
const VERSIONED_IDENTITY: usize = 13 + SEGMENTS * 40;
/// One tally record: fit (8) + votes (8) + foreign (8) + per-position
/// ones (4) and zeros (4).
const TALLY_BYTES: usize = 24 + 8 * WM_DATA_LEN;

struct Fixtures {
    /// Label + bundle, every one of which verifies as produced.
    bundles: Vec<(&'static str, Vec<u8>)>,
    /// Whole-relation detect bundles for the mark and its complement,
    /// over the same base relation — identical layout, opposite votes.
    whole: Vec<u8>,
    whole_flipped: Vec<u8>,
    /// Segmented detect bundles for the same pair of marks.
    segmented: Vec<u8>,
    segmented_flipped: Vec<u8>,
}

fn spec_for(gen: &SalesGenerator) -> WatermarkSpec {
    WatermarkSpec::builder(gen.item_domain())
        .master_key("tamper-suite")
        .e(E)
        .wm_len(WM_LEN)
        .wm_data_len(WM_DATA_LEN)
        .build()
        .unwrap()
}

fn session_for(gen: &SalesGenerator, rel: &Relation) -> MarkSession {
    MarkSession::builder(spec_for(gen))
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(rel)
        .unwrap()
}

/// Embed `wm`, segment, commit and produce the certified segmented
/// detection for a fresh copy of the base relation.
fn segmented_bundle(gen: &SalesGenerator, base: &Relation, wm: &Watermark) -> Vec<u8> {
    let mut rel = base.clone();
    let session = session_for(gen, &rel);
    session.embed(&mut rel, wm).unwrap();
    let store = ContentStore::in_memory();
    let mut log = VersionLog::new();
    let mut seg = SegmentedRelation::builder(rel.schema().clone())
        .segment_rows(SEGMENT_ROWS)
        .store(Box::new(store.clone()))
        .from_relation(&rel)
        .unwrap();
    let v = log.commit(&mut seg, &store).unwrap();
    let manifest = log.get(v).unwrap().clone();
    session.detect_certified_segmented(&mut seg, wm, &manifest).unwrap().bundle
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let gen = SalesGenerator::new(ItemScanConfig { tuples: TUPLES, ..Default::default() });
        let base = gen.generate();
        let wm = Watermark::from_u64(0b1011001110, WM_LEN);
        let flipped = Watermark::from_u64(0b1011001110 ^ 0x3FF, WM_LEN);

        let mut marked = base.clone();
        let session = session_for(&gen, &marked);
        session.embed(&mut marked, &wm).unwrap();
        let whole = session.detect_certified(&marked, &wm).unwrap().bundle;
        let decode = session.decode_certified(&marked).unwrap().bundle;

        let mut marked_flipped = base.clone();
        let session_flipped = session_for(&gen, &marked_flipped);
        session_flipped.embed(&mut marked_flipped, &flipped).unwrap();
        let whole_flipped = session_flipped.detect_certified(&marked_flipped, &wm).unwrap().bundle;

        let segmented = segmented_bundle(&gen, &base, &wm);
        let segmented_flipped = segmented_bundle(&gen, &base, &flipped);

        // An incremental (vote-cache) bundle rides along for byte-flip
        // and truncation coverage of the warm path's output.
        let store = ContentStore::in_memory();
        let mut log = VersionLog::new();
        let mut seg = SegmentedRelation::builder(marked.schema().clone())
            .segment_rows(SEGMENT_ROWS)
            .store(Box::new(store.clone()))
            .from_relation(&marked)
            .unwrap();
        let v = log.commit(&mut seg, &store).unwrap();
        let manifest = log.get(v).unwrap().clone();
        let mut cache = VoteCache::new();
        session.detect_certified_incremental(&mut seg, &wm, &manifest, &mut cache).unwrap();
        let warm =
            session.detect_certified_incremental(&mut seg, &wm, &manifest, &mut cache).unwrap();

        let bundles = vec![
            ("whole detect", whole.clone()),
            ("whole decode", decode),
            ("whole detect (complement mark)", whole_flipped.clone()),
            ("segmented detect", segmented.clone()),
            ("segmented detect (complement mark)", segmented_flipped.clone()),
            ("incremental detect", warm.bundle),
        ];
        for (label, bundle) in &bundles {
            verify_evidence(bundle).unwrap_or_else(|err| panic!("{label} fixture invalid: {err}"));
        }
        assert_eq!(whole.len(), whole_flipped.len(), "complement bundles must share layout");
        assert_eq!(segmented.len(), segmented_flipped.len());

        Fixtures { bundles, whole, whole_flipped, segmented, segmented_flipped }
    })
}

/// Re-frame a payload with a correct checksum, so a tampered payload
/// reaches the semantic consistency checks instead of dying on the
/// digest comparison.
fn reframe(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(b"CMKEVD1\0");
    out.extend_from_slice(&HashAlgorithm::Sha256.digest(payload));
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn assert_rejected(bytes: &[u8], what: &str) -> Result<(), TestCaseError> {
    match verify_evidence(bytes) {
        Err(CoreError::EvidenceInvalid { .. }) => Ok(()),
        Err(other) => {
            prop_assert!(false, "{what}: rejected with untyped error {other}");
            Ok(())
        }
        Ok(summary) => {
            prop_assert!(false, "{what}: tampered bundle ACCEPTED ({summary})");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single byte — header, identity, tallies, decoded
    /// bits, claim, contest — must yield `EvidenceInvalid`, never a
    /// verified summary, never a panic.
    #[test]
    fn single_byte_flips_never_verify(seed in any::<u64>()) {
        for (i, (label, bundle)) in fixtures().bundles.iter().enumerate() {
            let salt = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let at = (salt % bundle.len() as u64) as usize;
            let mask = ((salt >> 24) % 255 + 1) as u8; // never a no-op
            let mut tampered = bundle.clone();
            tampered[at] ^= mask;
            assert_rejected(&tampered, &format!("{label}: byte {at} ^ {mask:#04x}"))?;
        }
    }

    /// Every strict prefix of a bundle must be rejected, from the empty
    /// slice up to one byte short of the full frame.
    #[test]
    fn truncations_never_verify(seed in any::<u64>()) {
        for (i, (label, bundle)) in fixtures().bundles.iter().enumerate() {
            let salt = seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let keep = (salt % bundle.len() as u64) as usize;
            assert_rejected(&bundle[..keep], &format!("{label}: truncated to {keep} bytes"))?;
        }
    }

    /// Appending trailing garbage must be rejected even when the frame
    /// is re-checksummed over the padded payload.
    #[test]
    fn trailing_bytes_never_verify(seed in any::<u64>()) {
        let fx = fixtures();
        let extra = (seed % 64 + 1) as usize;
        let mut padded = fx.whole[HEADER..].to_vec();
        padded.extend(std::iter::repeat_n(seed as u8, extra));
        assert_rejected(&reframe(&padded), &format!("{extra} trailing bytes"))?;
        let mut raw = fx.whole.clone();
        raw.extend(std::iter::repeat_n(seed as u8, extra));
        assert_rejected(&raw, "trailing bytes without reframing")?;
    }

    /// Splicing the tally record of one bundle into another — with the
    /// checksum honestly recomputed over the forged payload — must trip
    /// the semantic re-derivation: the foreign votes contradict the
    /// recorded per-position slots, conflict counters, decoded bits, or
    /// claim recount. The two donor bundles embed complementary marks
    /// over the same relation, so every vote disagrees.
    #[test]
    fn spliced_tallies_never_verify(seed in any::<u64>()) {
        let fx = fixtures();

        // Whole-relation bundles carry exactly one tally; swap it.
        let range = SPEC_BYTES + WHOLE_IDENTITY + 4..SPEC_BYTES + WHOLE_IDENTITY + 4 + TALLY_BYTES;
        let (dst, src) = if seed.is_multiple_of(2) {
            (&fx.whole, &fx.whole_flipped)
        } else {
            (&fx.whole_flipped, &fx.whole)
        };
        let mut payload = dst[HEADER..].to_vec();
        payload[range.clone()].copy_from_slice(&src[HEADER + range.start..HEADER + range.end]);
        assert_rejected(&reframe(&payload), "whole-relation tally splice")?;

        // Segmented bundles carry one tally per segment; swap segment k.
        let k = (seed >> 8) as usize % SEGMENTS;
        let base = SPEC_BYTES + VERSIONED_IDENTITY + 4 + k * TALLY_BYTES;
        let range = base..base + TALLY_BYTES;
        let (dst, src) = if seed.is_multiple_of(2) {
            (&fx.segmented, &fx.segmented_flipped)
        } else {
            (&fx.segmented_flipped, &fx.segmented)
        };
        let mut payload = dst[HEADER..].to_vec();
        payload[range.clone()].copy_from_slice(&src[HEADER + range.start..HEADER + range.end]);
        assert_rejected(&reframe(&payload), &format!("segment {k} tally splice"))?;
    }
}

/// A tally spliced across bundle *shapes* — a segmented bundle's tally
/// section pasted into a whole-relation bundle — must be rejected on
/// the structural invariant (whole-relation evidence carries exactly
/// one tally) before any vote arithmetic runs.
#[test]
fn cross_shape_tally_splice_is_rejected() {
    let fx = fixtures();
    let mut payload = fx.whole[HEADER..].to_vec();
    let whole_tail = SPEC_BYTES + WHOLE_IDENTITY + 4 + TALLY_BYTES..payload.len();
    let seg_payload = &fx.segmented[HEADER..];
    let seg_tallies = SPEC_BYTES + VERSIONED_IDENTITY
        ..SPEC_BYTES + VERSIONED_IDENTITY + 4 + SEGMENTS * TALLY_BYTES;
    let tail = payload[whole_tail].to_vec();
    payload.truncate(SPEC_BYTES + WHOLE_IDENTITY);
    payload.extend_from_slice(&seg_payload[seg_tallies]);
    payload.extend_from_slice(&tail);
    let err = verify_evidence(&reframe(&payload)).unwrap_err();
    assert!(
        matches!(err, CoreError::EvidenceInvalid { .. }),
        "cross-shape splice must be EvidenceInvalid, got {err}"
    );
}

/// The rejection reason is carried in the typed error and is specific
/// enough to name the failed check.
#[test]
fn rejection_reasons_name_the_failed_check() {
    let fx = fixtures();

    let mut bad_magic = fx.whole.clone();
    bad_magic[0] ^= 0x20;
    let err = verify_evidence(&bad_magic).unwrap_err();
    assert!(err.to_string().contains("magic"), "magic tamper said: {err}");

    let mut bad_sum = fx.whole.clone();
    bad_sum[8] ^= 0x01; // inside the stored checksum
    let err = verify_evidence(&bad_sum).unwrap_err();
    assert!(err.to_string().contains("checksum"), "checksum tamper said: {err}");

    let err = verify_evidence(&fx.whole[..HEADER - 1]).unwrap_err();
    assert!(
        matches!(err, CoreError::EvidenceInvalid { .. }),
        "short header must be EvidenceInvalid, got {err}"
    );
}
