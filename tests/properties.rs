//! Property-based tests over the core invariants, spanning crates.

use catmark::prelude::*;
use proptest::prelude::*;

/// Generate a relation deterministically from a seed.
fn relation_for(seed: u64, tuples: usize) -> (Relation, CategoricalDomain) {
    let gen =
        SalesGenerator::new(ItemScanConfig { tuples, items: 200, seed, ..Default::default() });
    (gen.generate(), gen.item_domain())
}

/// Fresh per-operator calls (the pre-session usage pattern): every
/// helper binds a brand-new session, so each step re-resolves columns
/// and replans. The byte-identity properties below pin the reused
/// session API against these.
mod legacy {
    use super::*;
    use catmark::core::{DecodeReport, EmbedReport};

    fn fresh(spec: &WatermarkSpec, rel: &Relation) -> MarkSession {
        MarkSession::builder(spec.clone())
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(rel)
            .unwrap()
    }

    pub fn embed(spec: &WatermarkSpec, rel: &mut Relation, wm: &Watermark) -> EmbedReport {
        fresh(spec, rel).embed(rel, wm).unwrap()
    }

    pub fn decode(spec: &WatermarkSpec, rel: &Relation) -> DecodeReport {
        fresh(spec, rel).decode(rel).unwrap()
    }

    pub fn stream_marker(
        spec: &WatermarkSpec,
        template: &Relation,
        wm: &Watermark,
    ) -> catmark::core::stream::StreamMarker {
        fresh(spec, template).stream(wm).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Embed → blind decode is the identity for any watermark, key,
    /// and modulus, given adequate carrier density (fit ≈ 8 × |wm_data|
    /// keeps the erasure probability negligible).
    #[test]
    fn embed_decode_round_trip(
        wm_bits in 1u64..=0xFFFF,
        wm_len in 4usize..=16,
        e in 4u64..=8,
        master in any::<u64>(),
    ) {
        let (mut rel, domain) = relation_for(0xCAFE, 2_000);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(e)
            .wm_len(wm_len)
            .wm_data_len(32.max(wm_len))
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(wm_bits & ((1 << wm_len) - 1), wm_len);
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        session.embed(&mut rel, &wm).unwrap();
        let decoded = session.decode(&rel).unwrap();
        prop_assert_eq!(decoded.watermark, wm);
    }

    /// Re-sorting never changes the decode result (A4 immunity is
    /// structural, not statistical).
    #[test]
    fn decode_is_order_invariant(shuffle_seed in any::<u64>()) {
        let (mut rel, domain) = relation_for(0xBEEF, 1_500);
        let spec = WatermarkSpec::builder(domain)
            .master_key("order-invariance")
            .e(10)
            .wm_len(8)
            .expected_tuples(1_500)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0xA5, 8);
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        session.embed(&mut rel, &wm).unwrap();
        let shuffled = catmark::relation::ops::shuffle(&rel, shuffle_seed);
        let a = session.decode(&rel).unwrap();
        let b = session.decode(&shuffled).unwrap();
        prop_assert_eq!(a.watermark, b.watermark);
        prop_assert_eq!(a.votes_cast, b.votes_cast);
    }

    /// Fit-tuple density tracks 1/e for any key.
    #[test]
    fn fitness_density_tracks_e(e in 5u64..=50, master in any::<u64>()) {
        let (rel, domain) = relation_for(0xF00D, 5_000);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(e)
            .wm_len(8)
            .expected_tuples(5_000)
            .build()
            .unwrap();
        let fit = catmark::core::FitnessSelector::new(&spec).fit_rows(&rel, 0).len() as f64;
        let expected = 5_000.0 / e as f64;
        // Binomial noise: allow 5 standard deviations.
        let sd = (5_000.0 * (1.0 / e as f64) * (1.0 - 1.0 / e as f64)).sqrt();
        prop_assert!((fit - expected).abs() <= 5.0 * sd + 1.0,
            "e={}, fit={}, expected={}", e, fit, expected);
    }

    /// Majority-vote ECC tolerates any corruption strictly below half
    /// of every bit's copies.
    #[test]
    fn ecc_tolerates_minority_corruption(
        wm_bits in 0u64..=0x3FF,
        corrupt in prop::collection::vec(0usize..10, 0..=4),
    ) {
        use catmark::core::ecc::{ErrorCorrectingCode, MajorityVotingEcc};
        let ecc = MajorityVotingEcc;
        let wm = Watermark::from_u64(wm_bits, 10);
        let mut data = ecc.encode(&wm, 100);
        // Corrupt ≤ 4 copies (of 10) of each listed bit index.
        for (round, &bit) in corrupt.iter().enumerate() {
            data[bit + 10 * round] = !data[bit + 10 * round];
        }
        let positions: Vec<Option<bool>> = data.into_iter().map(Some).collect();
        let decoded = ecc.decode(&positions, 10, &mut |_| unreachable!("no ties possible"));
        prop_assert_eq!(decoded, wm);
    }

    /// Watermark `from_u64` and bit accessors agree.
    #[test]
    fn watermark_bit_representation(value in any::<u64>(), len in 1usize..=64) {
        let masked = if len == 64 { value } else { value & ((1u64 << len) - 1) };
        let wm = Watermark::from_u64(masked, len);
        prop_assert_eq!(wm.len(), len);
        let reconstructed = wm
            .bits()
            .iter()
            .fold(0u64, |acc, &b| (acc << 1) | u64::from(b));
        prop_assert_eq!(reconstructed, masked);
    }

    /// Hamming distance is a metric (symmetry, identity, triangle).
    #[test]
    fn hamming_is_a_metric(a in 0u64..=0xFFF, b in 0u64..=0xFFF, c in 0u64..=0xFFF) {
        let (wa, wb, wc) = (
            Watermark::from_u64(a, 12),
            Watermark::from_u64(b, 12),
            Watermark::from_u64(c, 12),
        );
        prop_assert_eq!(wa.hamming_distance(&wb), wb.hamming_distance(&wa));
        prop_assert_eq!(wa.hamming_distance(&wa), 0);
        prop_assert!(
            wa.hamming_distance(&wc) <= wa.hamming_distance(&wb) + wb.hamming_distance(&wc)
        );
    }

    /// Horizontal loss never corrupts surviving tuples, only removes.
    #[test]
    fn subset_selection_is_pure_erasure(keep in 0.1f64..=1.0, seed in any::<u64>()) {
        let (rel, _) = relation_for(7, 1_000);
        let kept = catmark::attacks::horizontal::subset_selection(&rel, keep, seed);
        for tuple in kept.iter() {
            let row = rel.find_by_key(tuple.get(0)).expect("survivor from original");
            prop_assert_eq!(rel.tuple(row).unwrap(), tuple);
        }
    }

    /// Random alteration changes exactly the requested fraction and
    /// nothing else.
    #[test]
    fn alteration_budget_is_exact(fraction in 0.0f64..=1.0, seed in any::<u64>()) {
        let (rel, _) = relation_for(8, 800);
        let attacked =
            catmark::attacks::alteration::random_alteration(&rel, "item_nbr", fraction, seed)
                .unwrap();
        let changed = rel
            .iter()
            .zip(attacked.iter())
            .filter(|(a, b)| a != b)
            .count();
        let expected = ((800.0 * fraction).round() as usize).min(800);
        prop_assert_eq!(changed, expected);
        prop_assert_eq!(rel.column(0), attacked.column(0));
    }

    /// CSV round-trips arbitrary text content, including separators,
    /// quotes and unicode.
    #[test]
    fn csv_round_trips_arbitrary_text(values in prop::collection::vec("[^\r\n]{0,30}", 1..20)) {
        let schema = Schema::builder()
            .key_attr("k", AttrType::Integer)
            .categorical_attr("text", AttrType::Text)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema.clone());
        for (i, v) in values.iter().enumerate() {
            rel.push(vec![Value::Int(i as i64), Value::Text(v.clone())]).unwrap();
        }
        let mut buf = Vec::new();
        catmark::relation::csv::write_csv(&rel, &mut buf).unwrap();
        let parsed = catmark::relation::csv::read_csv(
            schema,
            &mut std::io::BufReader::new(buf.as_slice()),
        )
        .unwrap();
        prop_assert_eq!(parsed.len(), rel.len());
        for (a, b) in rel.iter().zip(parsed.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Hex encoding round-trips arbitrary bytes.
    #[test]
    fn hex_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let hex = catmark::crypto::hex::to_hex(&bytes);
        prop_assert_eq!(catmark::crypto::hex::from_hex(&hex).unwrap(), bytes);
    }

    /// Categorical domains are order-insensitive bijections.
    #[test]
    fn domain_is_a_bijection(mut values in prop::collection::hash_set(any::<i64>(), 2..50)) {
        let vec: Vec<Value> = values.drain().map(Value::Int).collect();
        let domain = CategoricalDomain::new(vec.clone()).unwrap();
        prop_assert_eq!(domain.len(), vec.len());
        for t in 0..domain.len() {
            prop_assert_eq!(domain.index_of(domain.value_at(t)).unwrap(), t);
        }
    }

    /// Frequency-domain codec round-trips arbitrary watermarks for
    /// any key and reasonable step size.
    #[test]
    fn freq_codec_round_trip(
        wm_bits in 0u64..=0xFF,
        key in any::<u64>(),
        step in 20u64..=80,
    ) {
        use catmark::core::freq::FreqCodec;
        let (mut rel, domain) = relation_for(0xFEED, 8_000);
        let codec = FreqCodec::new(
            HashAlgorithm::Sha256,
            SecretKey::from_u64(key),
            step,
            8,
        )
        .unwrap();
        let wm = Watermark::from_u64(wm_bits, 8);
        codec.embed(&mut rel, "item_nbr", &domain, &wm).unwrap();
        prop_assert_eq!(codec.decode(&rel, "item_nbr", &domain).unwrap(), wm);
    }

    /// Key files round-trip arbitrary spec parameters.
    #[test]
    fn keyfile_round_trip(
        master in any::<u64>(),
        e in 1u64..=500,
        wm_len in 1usize..=32,
        extra in 0usize..=64,
    ) {
        use catmark::core::keyfile::{from_key_file, to_key_file};
        let domain = CategoricalDomain::new((0..40).map(Value::Int).collect()).unwrap();
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(e)
            .wm_len(wm_len)
            .wm_data_len(wm_len + extra)
            .build()
            .unwrap();
        let restored = from_key_file(&to_key_file(&spec)).unwrap();
        prop_assert_eq!(restored.k1, spec.k1);
        prop_assert_eq!(restored.k2, spec.k2);
        prop_assert_eq!(restored.e, spec.e);
        prop_assert_eq!(restored.wm_len, spec.wm_len);
        prop_assert_eq!(restored.wm_data_len, spec.wm_data_len);
        prop_assert_eq!(restored.domain, spec.domain);
    }

    /// The binomial tail used for court-time odds is a valid
    /// complementary CDF: within [0,1] and monotone in k.
    #[test]
    fn detection_tail_is_a_ccdf(n in 1usize..=64) {
        use catmark::core::detect::binomial_tail_half;
        let mut prev = 1.0f64;
        for k in 0..=n {
            let p = binomial_tail_half(n, k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-12);
            prev = p;
        }
        prop_assert_eq!(binomial_tail_half(n, 0), 1.0);
    }

    /// MarkPlan-driven embedding and decoding — sequential, parallel
    /// at any thread count, and cache-served — are byte-identical to
    /// the seed sequential path for any key, modulus, and watermark.
    #[test]
    fn plan_paths_are_byte_identical(
        master in any::<u64>(),
        e in 4u64..=40,
        wm_bits in 0u64..=0x3FF,
        threads in 2usize..=8,
    ) {
        use catmark::core::{MarkPlan, PlanCache};
        let (rel, domain) = relation_for(0xD1CE, 2_000);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(e)
            .wm_len(10)
            .expected_tuples(2_000)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(wm_bits, 10);
        // Seed path: name-resolved per-operator embed + decode, no
        // shared plan.
        let mut seed_marked = rel.clone();
        let seed_report = legacy::embed(&spec, &mut seed_marked, &wm);
        let seed_decode = legacy::decode(&spec, &seed_marked);
        // Plan paths.
        let sequential = MarkPlan::build_sequential(&spec, &rel, 0);
        let parallel = MarkPlan::build_with_threads(&spec, &rel, 0, threads);
        prop_assert_eq!(sequential.fit(), parallel.fit());
        let cache = PlanCache::new();
        let cached = cache.plan_for(&spec, &rel, 0).unwrap();
        let session = MarkSession::builder(spec.clone())
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        for plan in [&sequential, &parallel, &*cached] {
            let mut marked = rel.clone();
            let report = session.embed_planned(&mut marked, &wm, plan).unwrap();
            prop_assert_eq!(&report, &seed_report);
            prop_assert!(seed_marked.iter().zip(marked.iter()).all(|(a, b)| a == b));
            let plan_after = cache.plan_for(&spec, &marked, 0).unwrap();
            let decode = session.decode_planned(&marked, &plan_after).unwrap();
            prop_assert_eq!(&decode, &seed_decode);
        }
    }

    /// The satellite pin: a reused `MarkSession` — embed, blind
    /// decode, court-time detect, and a two-party contest all on one
    /// handle — is byte-identical to fresh per-operator calls, for
    /// any key, modulus, and watermark.
    #[test]
    fn session_reuse_is_byte_identical_to_fresh_operators(
        master in any::<u64>(),
        e in 4u64..=40,
        wm_bits in 0u64..=0x3FF,
    ) {
        use catmark::core::contest::{resolve, Claim};
        let (rel, domain) = relation_for(0xAB1E, 2_000);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(e)
            .wm_len(10)
            .expected_tuples(2_000)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(wm_bits, 10);
        let rival_wm = Watermark::from_u64(!wm_bits & 0x3FF, 10);
        let rival_spec = spec.derived("rival");

        // Fresh per-operator calls: every step re-resolves columns
        // and replans.
        let mut op_marked = rel.clone();
        let op_report = legacy::embed(&spec, &mut op_marked, &wm);
        let op_decode = legacy::decode(&spec, &op_marked);
        let op_detect = detect(&op_decode.watermark, &wm);

        // One session handle for the same run.
        let session = MarkSession::builder(spec.clone())
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        let mut s_marked = rel.clone();
        let s_report = session.embed(&mut s_marked, &wm).unwrap();
        prop_assert_eq!(&s_report, &op_report);
        prop_assert!(op_marked.iter().zip(s_marked.iter()).all(|(a, b)| a == b));
        let s_verdict = session.detect(&s_marked, &wm).unwrap();
        prop_assert_eq!(&s_verdict.decode, &op_decode);
        prop_assert_eq!(&s_verdict.detection, &op_detect);

        // Contest: session-cached vs free-function resolution.
        let mine = session.claim("owner", &wm);
        let rival = Claim {
            claimant: "rival".into(),
            spec: rival_spec,
            watermark: rival_wm,
        };
        let (s_outcome, s_ev_a, s_ev_b) =
            session.contest(&mine, &rival, &s_marked, 1e-2, 0.01).unwrap();
        let (op_outcome, op_ev_a, op_ev_b) =
            resolve(&mine, &rival, &op_marked, "visit_nbr", "item_nbr", 1e-2, 0.01).unwrap();
        prop_assert_eq!(s_outcome, op_outcome);
        prop_assert_eq!(s_ev_a.vote_unanimity, op_ev_a.vote_unanimity);
        prop_assert_eq!(s_ev_b.vote_unanimity, op_ev_b.vote_unanimity);
        prop_assert_eq!(s_ev_a.decode, op_ev_a.decode);
        prop_assert_eq!(s_ev_b.decode, op_ev_b.decode);
    }

    /// Streaming ingestion through a StreamMarker matches a batch
    /// Embedder pass tuple for tuple, for any key and modulus.
    #[test]
    fn stream_ingest_matches_batch_embed(master in any::<u64>(), e in 4u64..=40) {
        let (rel, domain) = relation_for(0xFACE, 1_500);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(e)
            .wm_len(10)
            .expected_tuples(1_500)
            .build()
            .unwrap();
        let wm = Watermark::from_u64(0b1001101011, 10);
        let mut batch = rel.clone();
        legacy::embed(&spec, &mut batch, &wm);
        let marker = legacy::stream_marker(&spec, &rel, &wm);
        let mut streamed = Relation::new(rel.schema().clone());
        for tuple in rel.iter() {
            marker.ingest(&mut streamed, tuple.values().to_vec()).unwrap();
        }
        prop_assert_eq!(streamed.len(), batch.len());
        prop_assert!(batch.iter().zip(streamed.iter()).all(|(a, b)| a == b));
    }

    /// A batched `fingerprint_batch` call (multi-key plans: four
    /// recipient keys hashed per tuple scan) produces copies
    /// byte-identical to N sequential `mark_copy` calls, across the
    /// awkward shapes: a single recipient, batch sizes that are not a
    /// multiple of the 4-lane width, duplicate buyer ids, and
    /// watermark lengths from 1 bit up.
    #[test]
    fn fingerprint_batch_matches_sequential_mark_copies(
        n_buyers in 1usize..=9,
        dup in any::<bool>(),
        wm_len in 1usize..=16,
        master in any::<u64>(),
    ) {
        let (rel, domain) = relation_for(0xF1B, 1_200);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(4)
            .wm_len(wm_len)
            .wm_data_len(64.max(wm_len))
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let session = MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(&rel)
            .unwrap();
        let mut buyers: Vec<String> = (0..n_buyers).map(|i| format!("buyer-{i}")).collect();
        if dup && n_buyers > 1 {
            buyers[n_buyers - 1] = buyers[0].clone();
        }
        let buyer_refs: Vec<&str> = buyers.iter().map(String::as_str).collect();

        let (_, batch) = session.fingerprint_batch(&rel, &buyer_refs).unwrap();
        prop_assert_eq!(batch.len(), buyer_refs.len());

        // The per-recipient reference: one sequential mark_copy per
        // buyer on a fresh fingerprint session.
        let mut sequential = session.fingerprint();
        for (buyer, (copy, report)) in buyer_refs.iter().zip(&batch) {
            let (expected, expected_report) = sequential.mark_copy(&rel, buyer).unwrap();
            prop_assert_eq!(report, &expected_report);
            prop_assert_eq!(copy.len(), expected.len());
            prop_assert!(copy.iter().zip(expected.iter()).all(|(a, b)| a == b));
        }
    }

    /// Delta distribution pin: `apply_delta(extract_delta(...))` is
    /// byte-identical to embedding the buyer's derived mark on a full
    /// clone — the pre-delta `mark_copy` semantics — across watermark
    /// length edges, duplicate buyers, and the wire encoding.
    #[test]
    fn mark_deltas_rebuild_copies_byte_identically(
        n_buyers in 1usize..=6,
        dup in any::<bool>(),
        wm_len in 1usize..=16,
        master in any::<u64>(),
    ) {
        use catmark::core::fingerprint::FingerprintRegistry;
        use catmark::relation::MarkDelta;
        let (rel, domain) = relation_for(0xDE17A, 1_200);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(4)
            .wm_len(wm_len)
            .wm_data_len(64.max(wm_len))
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let mut buyers: Vec<String> = (0..n_buyers).map(|i| format!("buyer-{i}")).collect();
        if dup && n_buyers > 1 {
            buyers[n_buyers - 1] = buyers[0].clone();
        }
        let buyer_refs: Vec<&str> = buyers.iter().map(String::as_str).collect();

        let mut registry = FingerprintRegistry::new(spec);
        let deltas =
            registry.mark_deltas(&rel, &buyer_refs, "visit_nbr", "item_nbr").unwrap();
        prop_assert_eq!(deltas.len(), buyer_refs.len());
        for (buyer, (delta, report)) in buyer_refs.iter().zip(&deltas) {
            // Independent reference: embed the buyer's derived mark
            // on a full clone, bypassing the delta machinery.
            let reference_session = MarkSession::builder(registry.spec_for(buyer))
                .key_column("visit_nbr")
                .target_column("item_nbr")
                .bind(&rel)
                .unwrap();
            let mut reference = rel.clone();
            let reference_report =
                reference_session.embed(&mut reference, &registry.mark_for(buyer)).unwrap();
            prop_assert_eq!(report, &reference_report);
            let rebuilt = rel.apply_delta(delta).unwrap();
            prop_assert_eq!(rebuilt.len(), reference.len());
            prop_assert!(rebuilt.iter().zip(reference.iter()).all(|(a, b)| a == b));
            prop_assert_eq!(rebuilt.column(1), reference.column(1));
            // And the wire encoding is lossless.
            prop_assert_eq!(&MarkDelta::decode(&delta.encode()).unwrap(), delta);
        }
    }

    /// Delta extraction on text targets: domain values foreign to the
    /// base dictionary travel in the delta's extension section, and
    /// the rebuilt dictionary matches the embed path's exactly —
    /// including interned-but-unwritten entries.
    #[test]
    fn text_deltas_carry_foreign_dictionary_entries(
        present in 2usize..=9,
        wm_len in 1usize..=8,
        master in any::<u64>(),
    ) {
        use catmark::core::fingerprint::FingerprintRegistry;
        let schema = Schema::builder()
            .key_attr("visit_nbr", AttrType::Integer)
            .categorical_attr("item", AttrType::Text)
            .build()
            .unwrap();
        let names: Vec<String> = (0..10).map(|i| format!("sku-{i:02}")).collect();
        let mut rel = Relation::new(schema);
        for i in 0..900usize {
            rel.push(vec![
                Value::Int(i as i64 * 11 + 5),
                Value::Text(names[i % present].clone()),
            ])
            .unwrap();
        }
        // The domain holds all ten names; the base dictionary only the
        // `present` ones that occur in the data.
        let domain =
            CategoricalDomain::new(names.iter().cloned().map(Value::Text).collect()).unwrap();
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(3)
            .wm_len(wm_len)
            .wm_data_len(32.max(wm_len))
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let mut registry = FingerprintRegistry::new(spec);
        let (delta, _) = registry.mark_delta(&rel, "leaker", "visit_nbr", "item").unwrap();
        prop_assert_eq!(delta.extension_len(), 10 - present,
            "every domain value outside the base dictionary travels in the extension");
        let reference_session = MarkSession::builder(registry.spec_for("leaker"))
            .key_column("visit_nbr")
            .target_column("item")
            .bind(&rel)
            .unwrap();
        let mut reference = rel.clone();
        reference_session.embed(&mut reference, &registry.mark_for("leaker")).unwrap();
        let rebuilt = rel.apply_delta(&delta).unwrap();
        // Column views compare codes *and* dictionaries, so this is
        // the byte-level claim, not just value equality.
        prop_assert_eq!(rebuilt.column(1), reference.column(1));
    }

    /// Segmented delta extraction (out-of-core, per-segment patch
    /// lists) agrees with monolithic extraction for any segment size
    /// and buyer batch shape.
    #[test]
    fn segmented_delta_extraction_matches_monolithic(
        segment_rows in 64usize..=512,
        n_buyers in 1usize..=5,
        master in any::<u64>(),
    ) {
        use catmark::core::fingerprint::FingerprintRegistry;
        use catmark::relation::SegmentedRelation;
        let (rel, domain) = relation_for(0x5E6, 2_000);
        let spec = WatermarkSpec::builder(domain)
            .master_key(SecretKey::from_u64(master))
            .e(4)
            .wm_len(8)
            .wm_data_len(64)
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        let buyers: Vec<String> = (0..n_buyers).map(|i| format!("buyer-{i}")).collect();
        let buyer_refs: Vec<&str> = buyers.iter().map(String::as_str).collect();
        let mut registry = FingerprintRegistry::new(spec);
        let monolithic =
            registry.mark_deltas(&rel, &buyer_refs, "visit_nbr", "item_nbr").unwrap();
        let mut seg = SegmentedRelation::builder(rel.schema().clone())
            .segment_rows(segment_rows)
            .from_relation(&rel)
            .unwrap();
        let segmented = registry
            .mark_deltas_segmented(&mut seg, &buyer_refs, "visit_nbr", "item_nbr")
            .unwrap();
        for ((delta, report), (seg_deltas, seg_report)) in monolithic.iter().zip(&segmented) {
            prop_assert_eq!(report, seg_report);
            // Per-segment patches rebuild the same copy the
            // monolithic delta rebuilds.
            let expected = rel.apply_delta(delta).unwrap();
            let mut rows = Vec::new();
            for (i, d) in seg_deltas.iter().enumerate() {
                let rebuilt = seg.with_segment(i, |segment| segment.apply_delta(d)).unwrap().unwrap();
                rows.extend(rebuilt.iter().map(|t| t.values().to_vec()));
            }
            prop_assert_eq!(rows.len(), expected.len());
            for (row, tuple) in rows.iter().zip(expected.iter()) {
                prop_assert_eq!(row.as_slice(), tuple.values());
            }
        }
    }

    /// The frequency histogram always sums to 1 on non-empty columns
    /// and L1 distance is bounded by 2.
    #[test]
    fn histogram_axioms(seed in any::<u64>()) {
        let (rel, domain) = relation_for(seed, 500);
        let h = FrequencyHistogram::from_relation(&rel, 1, &domain).unwrap();
        let total: f64 = h.frequencies().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let (other_rel, _) = relation_for(seed.wrapping_add(1), 500);
        let g = FrequencyHistogram::from_relation(&other_rel, 1, &domain).unwrap();
        let d = h.l1_distance(&g);
        prop_assert!((0.0..=2.0 + 1e-9).contains(&d));
    }
}
