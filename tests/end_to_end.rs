//! Cross-crate integration tests: the full embed → attack → blind
//! decode → detect pipeline, exercised through the public facade's
//! `MarkSession` API.

use catmark::prelude::*;
use std::io::BufReader;

fn marked_fixture(tuples: usize, e: u64) -> (Relation, MarkSession, Watermark) {
    let gen = SalesGenerator::new(ItemScanConfig { tuples, ..Default::default() });
    let mut rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("end-to-end")
        .e(e)
        .wm_len(10)
        .expected_tuples(tuples)
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    let wm = Watermark::from_u64(0b1001110101, 10);
    session.embed(&mut rel, &wm).unwrap();
    (rel, session, wm)
}

fn significant_after(
    attack: &Attack,
    rel: &Relation,
    session: &MarkSession,
    wm: &Watermark,
) -> bool {
    let suspect = attack.apply(rel).unwrap();
    session.detect(&suspect, wm).unwrap().is_significant(1e-2)
}

#[test]
fn resilience_matrix_single_attacks() {
    let (rel, session, wm) = marked_fixture(6_000, 20);
    let attacks = [
        Attack::HorizontalLoss { keep: 0.5, seed: 1 },
        Attack::SubsetAddition { fraction: 0.3, seed: 2 },
        Attack::RandomAlteration { attr: "item_nbr".into(), fraction: 0.2, seed: 3 },
        Attack::Shuffle { seed: 4 },
        Attack::SortBy { attr: "item_nbr".into(), ascending: false },
    ];
    for attack in &attacks {
        assert!(
            significant_after(attack, &rel, &session, &wm),
            "ownership lost under {}",
            attack.label()
        );
    }
}

#[test]
fn resilience_under_composite_attack() {
    let (rel, session, wm) = marked_fixture(10_000, 20);
    let steps = catmark::attacks::composite::determined_adversary("item_nbr", 77);
    let suspect = catmark::attacks::composite::pipeline(&rel, &steps).unwrap();
    let verdict = session.detect(&suspect, &wm).unwrap();
    assert!(verdict.is_significant(1e-2), "composite attack defeated the mark: {verdict}");
}

#[test]
fn watermark_survives_csv_round_trip() {
    let (rel, session, wm) = marked_fixture(3_000, 20);
    let mut buf = Vec::new();
    catmark::relation::csv::write_csv(&rel, &mut buf).unwrap();
    let parsed =
        catmark::relation::csv::read_csv(rel.schema().clone(), &mut BufReader::new(buf.as_slice()))
            .unwrap();
    let decoded = session.decode(&parsed).unwrap();
    assert_eq!(decoded.watermark, wm);
}

#[test]
fn incremental_updates_extend_the_mark() {
    // Section 4.3: "as updates occur to the data, the resulting tuples
    // can be evaluated on the fly for fitness and watermarked
    // accordingly."
    let (mut rel, session, wm) = marked_fixture(4_000, 20);
    // A month of new sales arrives, marked on the fly through the
    // session's stream marker.
    let marker = session.stream(&wm).unwrap();
    let fresh =
        SalesGenerator::new(ItemScanConfig { tuples: 1_000, seed: 0xBEEF, ..Default::default() })
            .generate();
    let mut marked_on_ingest = 0usize;
    for t in fresh.iter() {
        let mut values = t.values().to_vec();
        // Shift keys into a fresh range to avoid collisions.
        if let Value::Int(k) = values[0] {
            values[0] = Value::Int(k + 50_000_000);
        }
        if marker.ingest(&mut rel, values).unwrap().marked {
            marked_on_ingest += 1;
        }
    }
    assert!(marked_on_ingest > 0, "new fit tuples should be marked");
    // A batch re-pass finds nothing left to do (stream == batch).
    let report = session.embed(&mut rel, &wm).unwrap();
    assert_eq!(report.altered, 0, "stream marking must leave nothing for the batch pass");
    let decoded = session.decode(&rel).unwrap();
    assert_eq!(decoded.watermark, wm);
    // And the updated relation carries more witnesses than before.
    assert!(decoded.fit_tuples > 150, "fit tuples: {}", decoded.fit_tuples);
}

#[test]
fn frequency_channel_survives_extreme_partition_after_association_channel_dies() {
    use catmark::core::freq::FreqCodec;
    let gen =
        SalesGenerator::new(ItemScanConfig { tuples: 12_000, items: 300, ..Default::default() });
    let mut rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("combined-channels")
        .e(30)
        .wm_len(10)
        .expected_tuples(rel.len())
        .build()
        .unwrap();
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    let wm = Watermark::from_u64(0b0101010101, 10);
    session.embed(&mut rel, &wm).unwrap();
    let codec =
        FreqCodec::new(HashAlgorithm::Sha256, SecretKey::from_bytes(b"freq-key".to_vec()), 50, 10)
            .unwrap();
    codec.embed(&mut rel, "item_nbr", &gen.item_domain(), &wm).unwrap();

    // Both channels decode on intact data.
    assert!(session.detect(&rel, &wm).unwrap().is_significant(1e-2));
    assert_eq!(codec.decode(&rel, "item_nbr", &gen.item_domain()).unwrap(), wm);

    // Extreme A5: only item_nbr survives. The association channel is
    // structurally dead (no key attribute) — the session reports the
    // missing binding with the surviving attributes listed — while the
    // frequency channel still testifies.
    let alone = catmark::attacks::vertical::keep_attributes(&rel, &["item_nbr"]).unwrap();
    let err = session.decode(&alone).unwrap_err();
    assert!(err.to_string().contains("visit_nbr"), "unactionable error: {err}");
    assert_eq!(codec.decode(&alone, "item_nbr", &gen.item_domain()).unwrap(), wm);
}

#[test]
fn remap_attack_and_recovery_end_to_end() {
    let gen = SalesGenerator::new(ItemScanConfig {
        tuples: 20_000,
        items: 80,
        zipf_exponent: 1.2,
        ..Default::default()
    });
    let mut rel = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("remap-e2e")
        .e(15)
        .wm_len(10)
        .expected_tuples(rel.len())
        .build()
        .unwrap();
    let session = MarkSession::builder(spec)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&rel)
        .unwrap();
    let wm = Watermark::from_u64(0b1100110011, 10);
    session.embed(&mut rel, &wm).unwrap();
    let reference = FrequencyHistogram::from_relation(&rel, 1, &gen.item_domain()).unwrap();

    let suspect = Attack::BijectiveRemap { attr: "item_nbr".into(), seed: 5 }.apply(&rel).unwrap();
    let recovery = catmark::core::remap::recover_mapping(&reference, &suspect, "item_nbr").unwrap();
    let restored = catmark::core::remap::apply_inverse(&suspect, "item_nbr", &recovery).unwrap();
    assert!(session.detect(&restored, &wm).unwrap().is_significant(1e-3));
}

#[test]
fn two_owners_marks_do_not_collide() {
    // Two different rights holders mark *different copies* of the same
    // data; each detects their own mark and not the other's.
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let bind = |master: &str, rel: &Relation| {
        let spec = WatermarkSpec::builder(gen.item_domain())
            .master_key(master)
            .e(20)
            .wm_len(10)
            .expected_tuples(6_000)
            .erasure(catmark::core::decode::ErasurePolicy::Abstain)
            .build()
            .unwrap();
        MarkSession::builder(spec)
            .key_column("visit_nbr")
            .target_column("item_nbr")
            .bind(rel)
            .unwrap()
    };
    let wm_a = Watermark::from_u64(0b1111100000, 10);
    let wm_b = Watermark::from_u64(0b0000011111, 10);

    let mut copy_a = gen.generate();
    let session_a = bind("owner-a", &copy_a);
    session_a.embed(&mut copy_a, &wm_a).unwrap();
    let mut copy_b = gen.generate();
    let session_b = bind("owner-b", &copy_b);
    session_b.embed(&mut copy_b, &wm_b).unwrap();

    // Own key on own copy: exact.
    assert_eq!(session_a.decode(&copy_a).unwrap().watermark, wm_a);
    // Other key on the copy: chance-level.
    assert!(
        !session_b.detect(&copy_a, &wm_b).unwrap().is_significant(1e-3),
        "owner B must not find their mark in A's copy"
    );
}

#[test]
fn survives_value_biased_bestseller_partition() {
    // "Keep only the bestsellers": erases whole domain values, a
    // harsher partition than uniform loss. With Zipf skew the top-200
    // of 1000 items still covers most rows.
    let (rel, session, wm) = marked_fixture(12_000, 15);
    let kept = catmark::attacks::horizontal::value_biased_selection(&rel, "item_nbr", 200).unwrap();
    assert!(kept.len() > rel.len() / 2, "top-200 should keep most rows, kept {}", kept.len());
    let verdict = session.detect(&kept, &wm).unwrap();
    assert!(verdict.is_significant(1e-2), "bestseller partition defeated the mark: {verdict}");
}

#[test]
fn deletions_behave_like_data_loss() {
    // §4.3's update model includes deletes: removing tuples through
    // the relation API must leave surviving votes untouched.
    let (mut rel, session, wm) = marked_fixture(6_000, 15);
    let keys: Vec<Value> = rel.column_iter(0).collect();
    for key in keys.iter().step_by(3) {
        rel.delete_by_key(key).unwrap();
    }
    assert!(rel.len() < 4_100);
    let decoded = session.decode(&rel).unwrap();
    assert_eq!(decoded.watermark, wm, "1/3 deletion must not corrupt the mark");
}

#[test]
fn power_score_summarizes_a_full_run() {
    use catmark::core::power::score_run;
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let original = gen.generate();
    let spec = WatermarkSpec::builder(gen.item_domain())
        .master_key("power-e2e")
        .e(20)
        .wm_len(10)
        .expected_tuples(original.len())
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let session = MarkSession::builder(spec.clone())
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&original)
        .unwrap();
    let wm = Watermark::from_u64(0b1011100011, 10);
    let mut marked = original.clone();
    session.embed(&mut marked, &wm).unwrap();
    let suspect = Attack::HorizontalLoss { keep: 0.6, seed: 3 }.apply(&marked).unwrap();
    let score =
        score_run(&original, &marked, &suspect, &spec, &wm, "visit_nbr", "item_nbr").unwrap();
    assert!(score.distortion_rate < 0.06, "{score:?}");
    assert!(score.resilience > 0.8, "{score:?}");
    assert!(score.composite() > 0.7, "{score:?}");
}

#[test]
fn decoder_is_total_on_junk_data() {
    // Blind detection must never panic or error on arbitrary suspect
    // data: wrong schema shapes aside, any relation with the named
    // attributes decodes to *something*, at chance level.
    let (_, session, wm) = marked_fixture(100, 20);
    // Junk 1: completely unrelated synthetic data, different seed and
    // larger size.
    let junk = SalesGenerator::new(ItemScanConfig {
        tuples: 5_000,
        items: 17,
        seed: 0x1234,
        ..Default::default()
    })
    .generate();
    assert!(
        !session.detect(&junk, &wm).unwrap().is_significant(1e-3),
        "junk data must not prove ownership"
    );
    // Junk 2: empty relation.
    let empty = Relation::new(junk.schema().clone());
    let report = session.decode(&empty).unwrap();
    assert_eq!(report.fit_tuples, 0);
    // Junk 3: all values outside the domain.
    let mut foreign = Relation::new(junk.schema().clone());
    for i in 0..500 {
        foreign.push(vec![Value::Int(i), Value::Int(-1_000_000 - i)]).unwrap();
    }
    let report = session.decode(&foreign).unwrap();
    assert_eq!(report.votes_cast, 0);
}

#[test]
fn fingerprint_tracing_across_crates() {
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 6_000, ..Default::default() });
    let master = gen.generate();
    let base = WatermarkSpec::builder(gen.item_domain())
        .master_key("e2e-fingerprints")
        .e(15)
        .wm_len(10)
        .expected_tuples(master.len())
        .erasure(catmark::core::decode::ErasurePolicy::Abstain)
        .build()
        .unwrap();
    let session = MarkSession::builder(base)
        .key_column("visit_nbr")
        .target_column("item_nbr")
        .bind(&master)
        .unwrap();
    let mut registry = session.fingerprint();
    let (copy, _) = registry.mark_copy(&master, "buyer-7").unwrap();
    for other in ["buyer-1", "buyer-2", "buyer-3"] {
        registry.register(other);
    }
    // The leak passes through a composite attack before tracing.
    let steps = catmark::attacks::composite::determined_adversary("item_nbr", 55);
    let leaked = catmark::attacks::composite::pipeline(&copy, &steps).unwrap();
    assert_eq!(registry.accuse(&leaked, 1e-2).unwrap(), Some("buyer-7".to_owned()));
}

#[test]
fn detection_confidence_degrades_gracefully_not_cliff() {
    // Sweep alteration intensity; matched bits should fall gradually
    // (the paper's "graceful degradation"), never jump from 10 to 0.
    let (rel, session, wm) = marked_fixture(6_000, 20);
    let mut previous = 10usize;
    for pct in [0u64, 20, 40, 60, 80] {
        let attack = Attack::RandomAlteration {
            attr: "item_nbr".into(),
            fraction: pct as f64 / 100.0,
            seed: 1_000 + pct,
        };
        let suspect = attack.apply(&rel).unwrap();
        let matched = session.detect(&suspect, &wm).unwrap().detection.matched_bits;
        assert!(
            matched + 4 >= previous.saturating_sub(4),
            "cliff between steps: {previous} -> {matched} at {pct}%"
        );
        previous = matched;
    }
}

#[test]
fn one_session_serves_the_whole_court_run_with_one_plan() {
    // The headline property of the session API: embed → attack (target
    // column only) → decode → detect on one handle builds exactly one
    // plan, because the key column never changed.
    let (rel, session, wm) = marked_fixture(6_000, 20);
    assert_eq!(session.cache().len(), 1, "embed should have planned exactly once");
    let altered = Attack::RandomAlteration { attr: "item_nbr".into(), fraction: 0.2, seed: 9 }
        .apply(&rel)
        .unwrap();
    let verdict = session.detect(&altered, &wm).unwrap();
    assert!(verdict.is_significant(1e-2));
    assert_eq!(
        session.cache().len(),
        1,
        "a target-column attack must not force a replan (key column unchanged)"
    );
    // A key-set-changing attack (loss) legitimately replans.
    let lossy = Attack::HorizontalLoss { keep: 0.5, seed: 10 }.apply(&rel).unwrap();
    session.detect(&lossy, &wm).unwrap();
    assert_eq!(session.cache().len(), 2);
}
