//! Smoke test for `catmark serve`: spawns the real binary, speaks the
//! framed JSON protocol over stdio and over a Unix socket, round-trips
//! embed → decode → fingerprint → trace for two isolated tenants, and
//! shuts the daemon down cleanly.
//!
//! The CI workflow runs the whole test suite twice — once with the
//! runtime-selected SHA-256 backend and once with
//! `CATMARK_SHA_BACKEND=soft` — and the spawned daemon inherits the
//! environment, so this smoke test covers both backends for free.

use std::process::{Child, Command, Stdio};

use catmark::core::keyfile::TenantKeyRegistry;
use catmark::prelude::*;
use catmark::service::json::{self, Json};
use catmark::service::{read_frame, write_frame};

fn sample() -> (Relation, CategoricalDomain) {
    let gen = SalesGenerator::new(ItemScanConfig { tuples: 800, items: 100, ..Default::default() });
    (gen.generate(), gen.item_domain())
}

fn spec_for(master: &str, domain: CategoricalDomain) -> WatermarkSpec {
    WatermarkSpec::builder(domain)
        .master_key(master)
        .e(4)
        .wm_len(8)
        .wm_data_len(64)
        .erasure(ErasurePolicy::Abstain)
        .build()
        .unwrap()
}

/// Write one-key registries for tenants `acme` and `globex`, return
/// their paths.
fn write_registries(dir: &std::path::Path, domain: &CategoricalDomain) -> (String, String) {
    let mut acme = TenantKeyRegistry::new("acme").unwrap();
    acme.insert("production", spec_for("acme-secret", domain.clone())).unwrap();
    let mut globex = TenantKeyRegistry::new("globex").unwrap();
    globex.insert("production", spec_for("globex-secret", domain.clone())).unwrap();
    let acme_path = dir.join("acme.reg");
    let globex_path = dir.join("globex.reg");
    std::fs::write(&acme_path, acme.to_registry_file()).unwrap();
    std::fs::write(&globex_path, globex.to_registry_file()).unwrap();
    (acme_path.to_str().unwrap().to_owned(), globex_path.to_str().unwrap().to_owned())
}

fn csv_of(rel: &Relation) -> String {
    let mut buf = Vec::new();
    catmark::relation::csv::write_csv(rel, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// A stdio client around a spawned `catmark serve` daemon.
struct Daemon {
    child: Child,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_catmark"))
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn catmark serve");
        Daemon { child }
    }

    fn request(&mut self, text: &str) -> Json {
        let stdin = self.child.stdin.as_mut().expect("daemon stdin");
        write_frame(stdin, text.as_bytes()).unwrap();
        let stdout = self.child.stdout.as_mut().expect("daemon stdout");
        let frame = read_frame(stdout).unwrap().expect("daemon closed mid-conversation");
        json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
    }

    fn shutdown(mut self) {
        let resp = self.request(r#"{"op":"shutdown"}"#);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
        let status = self.child.wait().unwrap();
        assert!(status.success(), "daemon exit: {status:?}");
    }
}

fn assert_ok(resp: &Json) {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
}

fn field<'a>(resp: &'a Json, name: &str) -> &'a str {
    resp.get(name).and_then(Json::as_str).unwrap_or_else(|| panic!("no {name:?} in {resp:?}"))
}

#[test]
fn stdio_daemon_round_trips_two_isolated_tenants() {
    let dir = std::env::temp_dir().join(format!("catmark-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (rel, domain) = sample();
    let (acme_reg, globex_reg) = write_registries(&dir, &domain);
    let data = csv_of(&rel);

    let mut daemon = Daemon::spawn(&["--registries", &format!("{acme_reg},{globex_reg}")]);

    // Bind tenant acme; its key inventory comes back.
    let resp = daemon.request(r#"{"op":"hello","tenant":"acme"}"#);
    assert_ok(&resp);
    let keys: Vec<&str> =
        resp.get("keys").unwrap().as_array().unwrap().iter().filter_map(Json::as_str).collect();
    assert_eq!(keys, ["production"]);

    // Embed a mark, decode it back out of the returned CSV.
    let embed = Json::obj(vec![
        ("op", Json::Str("embed".into())),
        ("key", Json::Str("production".into())),
        ("key_attr", Json::Str("visit_nbr".into())),
        ("attr", Json::Str("item_nbr".into())),
        ("mark", Json::Str("10110011".into())),
        ("csv", Json::Str(data.clone())),
    ]);
    let resp = daemon.request(&embed.to_text());
    assert_ok(&resp);
    assert!(resp.get("fit").and_then(Json::as_u64).unwrap() > 0, "{resp:?}");
    let marked = field(&resp, "csv").to_owned();

    let decode = Json::obj(vec![
        ("op", Json::Str("decode".into())),
        ("key", Json::Str("production".into())),
        ("key_attr", Json::Str("visit_nbr".into())),
        ("attr", Json::Str("item_nbr".into())),
        ("claim", Json::Str("10110011".into())),
        ("csv", Json::Str(marked)),
    ]);
    let resp = daemon.request(&decode.to_text());
    assert_ok(&resp);
    assert_eq!(field(&resp, "mark"), "10110011");
    assert_eq!(resp.get("matched_bits").and_then(Json::as_u64), Some(8));

    // Fingerprint a copy for a buyer, then trace the "leak" back.
    let copy = Json::obj(vec![
        ("op", Json::Str("mark_copy".into())),
        ("key", Json::Str("production".into())),
        ("key_attr", Json::Str("visit_nbr".into())),
        ("attr", Json::Str("item_nbr".into())),
        ("buyer", Json::Str("leaker".into())),
        ("csv", Json::Str(data.clone())),
    ]);
    let resp = daemon.request(&copy.to_text());
    assert_ok(&resp);
    let leaked = field(&resp, "csv").to_owned();

    let trace = Json::obj(vec![
        ("op", Json::Str("trace".into())),
        ("key", Json::Str("production".into())),
        ("key_attr", Json::Str("visit_nbr".into())),
        ("attr", Json::Str("item_nbr".into())),
        (
            "buyers",
            Json::Arr(vec![
                Json::Str("honest-a".into()),
                Json::Str("leaker".into()),
                Json::Str("honest-b".into()),
            ]),
        ),
        ("csv", Json::Str(leaked)),
    ]);
    let resp = daemon.request(&trace.to_text());
    assert_ok(&resp);
    let results = resp.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].get("buyer").and_then(Json::as_str), Some("leaker"), "{resp:?}");

    // Cross-tenant: bound as acme, naming globex's registry is
    // refused by the registry itself.
    let cross = Json::obj(vec![
        ("op", Json::Str("embed".into())),
        ("tenant", Json::Str("globex".into())),
        ("key", Json::Str("production".into())),
        ("key_attr", Json::Str("visit_nbr".into())),
        ("attr", Json::Str("item_nbr".into())),
        ("mark", Json::Str("10110011".into())),
        ("csv", Json::Str(data.clone())),
    ]);
    let resp = daemon.request(&cross.to_text());
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{resp:?}");
    assert!(field(&resp, "error").contains("tenant isolation"), "{resp:?}");

    // The other tenant works on its own connection — and its key
    // material decodes nothing from acme's marked data (different
    // derived keys), which is the point of per-tenant keys.
    daemon.shutdown();
    let mut globex = Daemon::spawn(&["--registries", &format!("{acme_reg},{globex_reg}")]);
    let resp = globex.request(r#"{"op":"hello","tenant":"globex"}"#);
    assert_ok(&resp);
    globex.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn unix_socket_daemon_serves_and_cleans_up() {
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("catmark-serve-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (rel, domain) = sample();
    let (acme_reg, globex_reg) = write_registries(&dir, &domain);
    let sock = dir.join("catmark.sock");
    let sock_str = sock.to_str().unwrap().to_owned();

    let mut child = Command::new(env!("CARGO_BIN_EXE_catmark"))
        .args([
            "serve",
            "--registries",
            &format!("{acme_reg},{globex_reg}"),
            "--socket",
            &sock_str,
            // Force the segmented out-of-core path under a small
            // pager budget: 800 rows over 256-row segments.
            "--segment-rows",
            "256",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();

    // Wait for the socket to appear.
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(sock.exists(), "daemon never bound {sock_str}");

    let mut stream = UnixStream::connect(&sock).unwrap();
    let mut request = |text: String| -> Json {
        write_frame(&mut stream, text.as_bytes()).unwrap();
        let frame = read_frame(&mut stream).unwrap().expect("daemon reply");
        json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
    };

    let resp = request(r#"{"op":"hello","tenant":"globex"}"#.to_owned());
    assert_ok(&resp);

    let embed = Json::obj(vec![
        ("op", Json::Str("embed".into())),
        ("key", Json::Str("production".into())),
        ("key_attr", Json::Str("visit_nbr".into())),
        ("attr", Json::Str("item_nbr".into())),
        ("mark", Json::Str("11010010".into())),
        ("csv", Json::Str(csv_of(&rel))),
    ]);
    let resp = request(embed.to_text());
    assert_ok(&resp);
    assert_eq!(
        resp.get("segmented").and_then(Json::as_bool),
        Some(true),
        "800 rows over a 256-row threshold must stream segmented: {resp:?}"
    );
    let marked = field(&resp, "csv").to_owned();

    let decode = Json::obj(vec![
        ("op", Json::Str("decode".into())),
        ("key", Json::Str("production".into())),
        ("key_attr", Json::Str("visit_nbr".into())),
        ("attr", Json::Str("item_nbr".into())),
        ("csv", Json::Str(marked)),
    ]);
    let resp = request(decode.to_text());
    assert_ok(&resp);
    assert_eq!(field(&resp, "mark"), "11010010");

    let resp = request(r#"{"op":"shutdown"}"#.to_owned());
    assert_ok(&resp);
    drop(stream);

    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
    assert!(!sock.exists(), "socket file must be removed on clean shutdown");

    std::fs::remove_dir_all(&dir).ok();
}

/// Two tenants on two *simultaneously open* socket connections, frames
/// interleaved request-by-request — the worker pool must serve both
/// without one connection blocking the other's accept (a sequential
/// accept loop deadlocks here). Also exercises the delta-distribution
/// wire ops end to end: `mark_delta` on one connection, `apply_delta`
/// of its blob rebuilding the exact `mark_copy` bytes.
#[cfg(unix)]
#[test]
fn worker_pool_serves_two_concurrent_tenants_with_interleaved_frames() {
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("catmark-serve-pool-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (rel, domain) = sample();
    let (acme_reg, globex_reg) = write_registries(&dir, &domain);
    let data = csv_of(&rel);
    let sock = dir.join("catmark-pool.sock");
    let sock_str = sock.to_str().unwrap().to_owned();

    let mut child = Command::new(env!("CARGO_BIN_EXE_catmark"))
        .args([
            "serve",
            "--registries",
            &format!("{acme_reg},{globex_reg}"),
            "--socket",
            &sock_str,
            "--workers",
            "2",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();

    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(sock.exists(), "daemon never bound {sock_str}");

    // Both connections open before either says a word.
    let mut acme = UnixStream::connect(&sock).unwrap();
    let mut globex = UnixStream::connect(&sock).unwrap();
    fn ask(stream: &mut UnixStream, text: &str) -> Json {
        write_frame(stream, text.as_bytes()).unwrap();
        let frame = read_frame(stream).unwrap().expect("daemon reply");
        json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
    }

    // Interleave: hello on both, then alternate work.
    assert_ok(&ask(&mut acme, r#"{"op":"hello","tenant":"acme"}"#));
    assert_ok(&ask(&mut globex, r#"{"op":"hello","tenant":"globex"}"#));

    let op_str = |name: &str| ("op", Json::Str(name.into()));
    let coords = |extra: Vec<(&'static str, Json)>| {
        let mut fields = vec![
            ("key", Json::Str("production".into())),
            ("key_attr", Json::Str("visit_nbr".into())),
            ("attr", Json::Str("item_nbr".into())),
        ];
        fields.extend(extra);
        fields
    };

    // acme: the reference full copy for a buyer.
    let mut copy_fields = vec![op_str("mark_copy")];
    copy_fields.extend(coords(vec![
        ("buyer", Json::Str("leaker".into())),
        ("csv", Json::Str(data.clone())),
    ]));
    let copy = ask(&mut acme, &Json::obj(copy_fields).to_text());
    assert_ok(&copy);

    // globex: unrelated traffic between acme's requests.
    let mut embed_fields = vec![op_str("embed")];
    embed_fields.extend(coords(vec![
        ("mark", Json::Str("11010010".into())),
        ("csv", Json::Str(data.clone())),
    ]));
    assert_ok(&ask(&mut globex, &Json::obj(embed_fields).to_text()));

    // acme: the same buyer as a delta.
    let mut delta_fields = vec![op_str("mark_delta")];
    delta_fields.extend(coords(vec![
        ("buyer", Json::Str("leaker".into())),
        ("csv", Json::Str(data.clone())),
    ]));
    let delta = ask(&mut acme, &Json::obj(delta_fields).to_text());
    assert_ok(&delta);
    assert_eq!(delta.get("fit"), copy.get("fit"), "{delta:?}");
    let blob = field(&delta, "delta").to_owned();
    assert!(
        blob.len() / 2 < data.len(),
        "delta blob ({} bytes) must undercut the CSV ({} bytes)",
        blob.len() / 2,
        data.len()
    );

    // globex: isolation still enforced through the shared pool state.
    let mut cross_fields = vec![op_str("embed"), ("tenant", Json::Str("acme".into()))];
    cross_fields.extend(coords(vec![
        ("mark", Json::Str("11010010".into())),
        ("csv", Json::Str(data.clone())),
    ]));
    let resp = ask(&mut globex, &Json::obj(cross_fields).to_text());
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{resp:?}");
    assert!(field(&resp, "error").contains("tenant isolation"), "{resp:?}");

    // acme: applying the delta rebuilds the mark_copy bytes exactly.
    let apply = Json::obj(vec![
        op_str("apply_delta"),
        ("attr", Json::Str("item_nbr".into())),
        ("delta", Json::Str(blob)),
        ("csv", Json::Str(data.clone())),
    ]);
    let rebuilt = ask(&mut acme, &apply.to_text());
    assert_ok(&rebuilt);
    assert_eq!(field(&rebuilt, "csv"), field(&copy, "csv"), "delta must rebuild the copy");

    drop(globex);
    assert_ok(&ask(&mut acme, r#"{"op":"shutdown"}"#));
    drop(acme);

    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
    assert!(!sock.exists(), "socket file must be removed on clean shutdown");

    std::fs::remove_dir_all(&dir).ok();
}
